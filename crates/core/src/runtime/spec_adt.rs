//! The declarative ADT-definition surface: state a type's *serial
//! specification* once and get the full transactional machinery for free.
//!
//! The paper's thesis is that a data type's serial specification
//! determines its concurrency control. [`AdtDef`] is that thesis as an
//! API: the user supplies the type's **state**, its **operations and
//! responses**, an executable **apply/respond** semantics, a codec, and a
//! conflict source — either the dynamic serial specification itself (from
//! which `hcc-relations` derives the hybrid invalidated-by relation at
//! first construction, memoized per type) or an explicit class-level
//! conflict table in the paper's own language. Everything a hand-written
//! [`RuntimeAdt`] implementation wires manually is then generic:
//!
//! * [`SpecAdt`] adapts any [`AdtDef`] to [`RuntimeAdt`] — version =
//!   state, intent = the transaction's executed-operation list, candidate
//!   evaluation against the folded view, and self-logging `redo` /
//!   `decode_redo` through the codec;
//! * [`SpecLock`] adapts the type's conflict atoms to [`LockSpec`] by
//!   classifying both executed operations through the spec mapping and
//!   looking the pair up under its key condition (symmetric closure
//!   applied at lookup, as the paper constructs conflict relations from
//!   dependency relations);
//! * `hcc-adts::define::SpecObject` adds the durable half (snapshots,
//!   recovery replay), and `hcc-db` hands out typed handles for it, so a
//!   user-defined type is durable, recoverable, and 2PC-committable with
//!   **no** `RuntimeAdt`, `LockSpec`, `Snapshot`, or `DbObject` impl
//!   written by hand.
//!
//! The escape hatch stays open: a type that outgrows the generic
//! machinery implements [`RuntimeAdt`]/[`LockSpec`] directly (every
//! built-in ADT in `hcc-adts` still does, as the tuned twin the
//! differential tests compare against).

use super::adt::{LockSpec, RedoDecodeError, RuntimeAdt};
use hcc_relations::derive::{cached_conflict_atoms, DeriveSpec};
use hcc_relations::relation::{pair_cond, Atom, OpClass};
use hcc_spec::Operation;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::sync::Arc;

/// A declaratively defined transactional data type.
///
/// Implement this one trait (or let `hcc-adts`'s `define_adt!` macro
/// write the codec half for serde-able types) and the runtime supplies
/// locking, self-logging, recovery replay, snapshots, and typed `Db`
/// handles. Semantics are split appendix-style:
///
/// * [`AdtDef::respond`] evaluates an operation against a fully folded
///   view state, returning candidate responses in preference order
///   (several for nondeterministic operations; empty when the operation
///   is undefined in this view — the caller blocks, the paper's partial
///   operation);
/// * [`AdtDef::apply`] applies one *executed* operation's state effect —
///   used both to fold committed intents into the compacted version and
///   to materialize views, so executions the specification refused can
///   never corrupt state.
pub trait AdtDef: Default + Send + Sync + 'static {
    /// The committed state (the generic version; snapshots serialize it).
    type State: Clone + Send + Sync;
    /// Invocations.
    type Op: Clone + Debug + Send + Sync;
    /// Responses. Equality pins nondeterministic replay to the logged
    /// choice during recovery.
    type Res: Clone + PartialEq + Debug + Send + Sync;

    /// The type's name — diagnostics *and* the derivation cache key:
    /// every object of one type shares one derived conflict relation.
    fn type_name(&self) -> &'static str;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Candidate responses for `op` against the folded view `state`, in
    /// preference order. Empty = undefined here (partial operation; the
    /// runtime blocks the caller until the view changes).
    fn respond(&self, state: &Self::State, op: &Self::Op) -> Vec<Self::Res>;

    /// Apply the state effect of the executed operation `(op, res)`.
    /// Must be a no-op when [`AdtDef::is_read`] holds.
    fn apply(&self, state: &mut Self::State, op: &Self::Op, res: &Self::Res);

    /// Is this executed operation a pure read? Reads take locks but are
    /// neither logged nor folded — deliberately required, like
    /// [`RuntimeAdt::redo`]: every type must *state* what its reads are,
    /// or that it has none.
    fn is_read(&self, op: &Self::Op, res: &Self::Res) -> bool;

    /// Map an executed operation onto the dynamic specification
    /// operation — the hinge between the typed runtime and the formal
    /// layer: conflict lookup classifies through it, and history
    /// verification rebuilds formal events with it.
    fn spec_op(&self, op: &Self::Op, res: &Self::Res) -> Operation;

    /// Where this type's lock conflicts come from: derived from the
    /// serial specification, or stated as an explicit table.
    fn conflict_spec(&self) -> ConflictSpec;

    /// Serialize an executed operation as its redo payload (the WAL
    /// record; only called for non-reads).
    fn encode_op(&self, op: &Self::Op, res: &Self::Res) -> Vec<u8>;

    /// Decode a payload produced by [`AdtDef::encode_op`] — the recovery
    /// replay path.
    fn decode_op(&self, bytes: &[u8]) -> Result<(Self::Op, Self::Res), RedoDecodeError>;

    /// Serialize the committed state (the checkpoint image).
    fn encode_state(&self, state: &Self::State) -> Vec<u8>;

    /// Decode a payload produced by [`AdtDef::encode_state`].
    fn decode_state(&self, bytes: &[u8]) -> Result<Self::State, RedoDecodeError>;
}

/// How an [`AdtDef`]'s lock conflicts are determined.
pub enum ConflictSpec {
    /// Derive the hybrid invalidated-by relation from the serial
    /// specification by bounded search at first construction, memoized
    /// per [`AdtDef::type_name`]. The scheme the paper proves hybrid
    /// atomic (Theorem 10 + Theorem 16).
    Derived(DeriveSpec),
    /// An explicit class-level conflict table — for types whose table is
    /// known (or audited) but whose specification is impractical to
    /// search, and for running a type under a non-canonical relation.
    Table(ConflictTable),
}

/// An explicit conflict table in the paper's own language: operation
/// classes related under key conditions. The symmetric closure is
/// applied at lookup — state each dependency once, in either direction.
pub struct ConflictTable {
    /// Scheme name for experiment output.
    pub name: &'static str,
    /// Classify a (spec-mapped) operation into its class.
    pub classify: fn(&Operation) -> OpClass,
    /// The related class pairs.
    pub atoms: BTreeSet<Atom>,
}

impl ConflictTable {
    /// An empty table under `name` classifying with `classify`.
    pub fn new(name: &'static str, classify: fn(&Operation) -> OpClass) -> ConflictTable {
        ConflictTable { name, classify, atoms: BTreeSet::new() }
    }

    /// Relate `row` to `col` under `cond` (builder-style).
    pub fn rule(
        mut self,
        row: &str,
        col: &str,
        cond: hcc_relations::relation::Cond,
    ) -> ConflictTable {
        self.atoms.insert(Atom { row: OpClass::new(row), col: OpClass::new(col), cond });
        self
    }
}

/// The generic [`RuntimeAdt`] over an [`AdtDef`]: version = state,
/// intent = the transaction's executed operations (responses pinned),
/// views materialized by folding committed intents in timestamp order.
pub struct SpecAdt<D: AdtDef> {
    def: D,
}

impl<D: AdtDef> Default for SpecAdt<D> {
    fn default() -> Self {
        SpecAdt { def: D::default() }
    }
}

impl<D: AdtDef> SpecAdt<D> {
    /// The underlying definition.
    pub fn def(&self) -> &D {
        &self.def
    }
}

impl<D: AdtDef> RuntimeAdt for SpecAdt<D> {
    type Version = D::State;
    type Intent = Vec<(D::Op, D::Res)>;
    type Inv = D::Op;
    type Res = D::Res;

    fn initial(&self) -> D::State {
        self.def.initial()
    }

    fn candidates(
        &self,
        version: &D::State,
        committed: &[&Self::Intent],
        own: &Self::Intent,
        inv: &D::Op,
    ) -> Vec<(D::Res, Self::Intent)> {
        // Materialize the view: compacted state + committed intents in
        // timestamp order + the transaction's own effects. (Hand-written
        // RuntimeAdts often fold more cleverly — a balance, one
        // element's membership; that tuning is exactly what the escape
        // hatch is for.)
        let mut view = version.clone();
        for intent in committed {
            for (op, res) in intent.iter() {
                self.def.apply(&mut view, op, res);
            }
        }
        for (op, res) in own {
            self.def.apply(&mut view, op, res);
        }
        self.def
            .respond(&view, inv)
            .into_iter()
            .map(|res| {
                let mut next = own.clone();
                if !self.def.is_read(inv, &res) {
                    next.push((inv.clone(), res.clone()));
                }
                (res, next)
            })
            .collect()
    }

    fn apply(&self, version: &mut D::State, intent: &Self::Intent) {
        for (op, res) in intent {
            self.def.apply(version, op, res);
        }
    }

    fn redo(&self, inv: &D::Op, res: &D::Res) -> Option<Vec<u8>> {
        if self.def.is_read(inv, res) {
            None
        } else {
            Some(self.def.encode_op(inv, res))
        }
    }

    fn decode_redo(&self, bytes: &[u8]) -> Result<(D::Op, D::Res), RedoDecodeError> {
        self.def.decode_op(bytes)
    }

    fn type_name(&self) -> &'static str {
        self.def.type_name()
    }
}

/// The generic [`LockSpec`] over an [`AdtDef`]: map both executed
/// operations onto the formal layer, classify, bucket their key
/// condition, and look the atom up — symmetric closure applied here, so
/// atom sets state each dependency once.
pub struct SpecLock<D: AdtDef> {
    def: D,
    name: &'static str,
    classify: fn(&Operation) -> OpClass,
    atoms: Arc<BTreeSet<Atom>>,
}

impl<D: AdtDef> SpecLock<D> {
    /// The lock relation an [`AdtDef`]'s [`ConflictSpec`] asks for —
    /// deriving (memoized per type name) or adopting the stated table.
    pub fn from_def() -> Arc<SpecLock<D>> {
        let def = D::default();
        match def.conflict_spec() {
            ConflictSpec::Derived(spec) => {
                let atoms = cached_conflict_atoms(def.type_name(), &spec);
                Arc::new(SpecLock { def, name: "hybrid-derived", classify: spec.classify, atoms })
            }
            ConflictSpec::Table(table) => Arc::new(SpecLock {
                def,
                name: table.name,
                classify: table.classify,
                atoms: Arc::new(table.atoms),
            }),
        }
    }

    /// The class-level atoms this lock tests against.
    pub fn atoms(&self) -> &BTreeSet<Atom> {
        &self.atoms
    }

    /// The class the conflict lookup files a spec-level operation under —
    /// exposed so static analysis (`hcc-check`) classifies exactly as the
    /// live lock does.
    pub fn classify_op(&self, q: &Operation) -> OpClass {
        (self.classify)(q)
    }

    /// The one-directional dependency lookup: is `(class(q), class(p))`
    /// under their key condition an atom of the table? [`LockSpec::conflicts`]
    /// is the symmetric closure of this — public so tests can pin that
    /// the closure leaves no lookup-order disagreement behind.
    pub fn related(&self, q: &Operation, p: &Operation) -> bool {
        self.atoms.contains(&Atom {
            row: (self.classify)(q),
            col: (self.classify)(p),
            cond: pair_cond(q, p),
        })
    }
}

impl<D: AdtDef> LockSpec<SpecAdt<D>> for SpecLock<D> {
    fn conflicts(&self, a: &(D::Op, D::Res), b: &(D::Op, D::Res)) -> bool {
        let qa = self.def.spec_op(&a.0, &a.1);
        let qb = self.def.spec_op(&b.0, &b.1);
        self.related(&qa, &qb) || self.related(&qb, &qa)
    }

    /// Classify once at execution time: the runtime stores this token
    /// beside the executed op, so the per-op `spec_op` mapping and class
    /// lookup never re-run inside the conflict-test hot loop.
    fn prepare(&self, op: &(D::Op, D::Res)) -> Option<super::ClassifiedOp> {
        let q = self.def.spec_op(&op.0, &op.1);
        let class = (self.classify)(&q);
        Some(super::ClassifiedOp { op: q, class })
    }

    fn conflicts_prepared(
        &self,
        a: &(D::Op, D::Res),
        ap: Option<&super::ClassifiedOp>,
        b: &(D::Op, D::Res),
        bp: Option<&super::ClassifiedOp>,
    ) -> bool {
        match (ap, bp) {
            (Some(ta), Some(tb)) => {
                // Memoized path: both spec mappings and classes are in
                // hand; only the key-condition bucketing and the two
                // symmetric atom lookups remain.
                self.atoms.contains(&Atom {
                    row: ta.class.clone(),
                    col: tb.class.clone(),
                    cond: pair_cond(&ta.op, &tb.op),
                }) || self.atoms.contains(&Atom {
                    row: tb.class.clone(),
                    col: ta.class.clone(),
                    cond: pair_cond(&tb.op, &ta.op),
                })
            }
            // A token is missing (an op recorded before this scheme was
            // swapped in, or a caller on the raw path): fall back to the
            // unmemoized test.
            _ => self.conflicts(a, b),
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn class_of(&self, op: &(D::Op, D::Res)) -> Option<String> {
        // The same classification the conflict lookup uses, so the lock
        // metrics' grant/refusal keys are exactly the atoms' row/column
        // names (derived or stated).
        Some((self.classify)(&self.def.spec_op(&op.0, &op.1)).0.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{RuntimeOptions, TxObject, TxParticipant, TxnHandle};
    use hcc_relations::relation::Cond;
    use hcc_spec::{Inv, TxnId, Value};
    use std::time::Duration;

    /// A tiny max-register defined declaratively: `raise(n)` → did it
    /// raise the maximum; `peak()` reads it. Explicit-table path.
    #[derive(Default)]
    struct MaxReg;

    #[derive(Clone, Debug, PartialEq)]
    enum MaxOp {
        Raise(i64),
        Peak,
    }

    #[derive(Clone, Debug, PartialEq)]
    enum MaxRes {
        Raised(bool),
        Val(i64),
    }

    fn classify(op: &Operation) -> OpClass {
        OpClass::new(match (op.inv.op, &op.res) {
            ("raise", Value::Bool(true)) => "Raise-Hi",
            ("raise", _) => "Raise-Lo",
            _ => "Peak",
        })
    }

    impl AdtDef for MaxReg {
        type State = i64;
        type Op = MaxOp;
        type Res = MaxRes;

        fn type_name(&self) -> &'static str {
            "MaxReg"
        }

        fn initial(&self) -> i64 {
            0
        }

        fn respond(&self, state: &i64, op: &MaxOp) -> Vec<MaxRes> {
            match op {
                MaxOp::Raise(n) => vec![MaxRes::Raised(*n > *state)],
                MaxOp::Peak => vec![MaxRes::Val(*state)],
            }
        }

        fn apply(&self, state: &mut i64, op: &MaxOp, res: &MaxRes) {
            if let (MaxOp::Raise(n), MaxRes::Raised(true)) = (op, res) {
                *state = *n;
            }
        }

        fn is_read(&self, op: &MaxOp, _res: &MaxRes) -> bool {
            matches!(op, MaxOp::Peak)
        }

        fn spec_op(&self, op: &MaxOp, res: &MaxRes) -> Operation {
            match (op, res) {
                (MaxOp::Raise(n), MaxRes::Raised(hi)) => {
                    Operation::new(Inv::unary("raise", *n), *hi)
                }
                (MaxOp::Peak, MaxRes::Val(v)) => Operation::new(Inv::nullary("peak"), *v),
                other => unreachable!("ill-typed max-register op {other:?}"),
            }
        }

        fn conflict_spec(&self) -> ConflictSpec {
            // A winning raise invalidates differently-valued reads,
            // losing raises, and other winning raises.
            ConflictSpec::Table(
                ConflictTable::new("maxreg-table", classify)
                    .rule("Raise-Hi", "Raise-Hi", Cond::KeyNeq)
                    .rule("Raise-Lo", "Raise-Hi", Cond::KeyNeq)
                    .rule("Peak", "Raise-Hi", Cond::KeyNeq),
            )
        }

        fn encode_op(&self, op: &MaxOp, res: &MaxRes) -> Vec<u8> {
            match (op, res) {
                (MaxOp::Raise(n), MaxRes::Raised(hi)) => format!("{n}:{}", *hi as u8).into_bytes(),
                other => unreachable!("reads are not encoded: {other:?}"),
            }
        }

        fn decode_op(&self, bytes: &[u8]) -> Result<(MaxOp, MaxRes), RedoDecodeError> {
            let s = std::str::from_utf8(bytes).map_err(|e| RedoDecodeError::new(e.to_string()))?;
            let (n, hi) = s.split_once(':').ok_or_else(|| RedoDecodeError::new("no colon"))?;
            Ok((
                MaxOp::Raise(n.parse().map_err(|_| RedoDecodeError::new("bad int"))?),
                MaxRes::Raised(hi == "1"),
            ))
        }

        fn encode_state(&self, state: &i64) -> Vec<u8> {
            state.to_le_bytes().to_vec()
        }

        fn decode_state(&self, bytes: &[u8]) -> Result<i64, RedoDecodeError> {
            let arr: [u8; 8] =
                bytes.try_into().map_err(|_| RedoDecodeError::new("state is 8 bytes"))?;
            Ok(i64::from_le_bytes(arr))
        }
    }

    fn obj(timeout: Option<Duration>) -> Arc<TxObject<SpecAdt<MaxReg>>> {
        TxObject::new(
            "m",
            SpecAdt::default(),
            SpecLock::<MaxReg>::from_def(),
            RuntimeOptions::with_timeout(timeout),
        )
    }

    fn h(n: u64) -> Arc<TxnHandle> {
        TxnHandle::new(TxnId(n))
    }

    #[test]
    fn generic_runtime_executes_folds_and_reads_own_effects() {
        let o = obj(None);
        let t1 = h(1);
        assert_eq!(o.execute(&t1, MaxOp::Raise(5)).unwrap(), MaxRes::Raised(true));
        assert_eq!(o.execute(&t1, MaxOp::Raise(3)).unwrap(), MaxRes::Raised(false));
        assert_eq!(o.execute(&t1, MaxOp::Peak).unwrap(), MaxRes::Val(5));
        o.commit_at(t1.id(), 1);
        assert_eq!(o.committed_snapshot(), 5);
    }

    #[test]
    fn table_lock_blocks_only_related_classes() {
        let o = obj(Some(Duration::from_millis(20)));
        let t1 = h(1);
        assert_eq!(o.execute(&t1, MaxOp::Raise(5)).unwrap(), MaxRes::Raised(true));
        o.commit_at(t1.id(), 1);
        // Against the committed maximum 5: a losing raise and a read
        // coexist (neither holds a Raise-Hi lock)...
        let (t2, t3) = (h(2), h(3));
        assert_eq!(o.execute(&t2, MaxOp::Raise(5)).unwrap(), MaxRes::Raised(false));
        assert_eq!(o.execute(&t3, MaxOp::Peak).unwrap(), MaxRes::Val(5));
        // ...but a winning raise to a different value conflicts with
        // both outstanding operations (KeyNeq: 7 ≠ 5) and blocks.
        let t4 = h(4);
        assert_eq!(
            o.execute(&t4, MaxOp::Raise(7)),
            Err(crate::runtime::ExecError::Timeout),
            "winning raise conflicts with the outstanding read and losing raise"
        );
    }

    #[test]
    fn generic_redo_skips_reads_and_roundtrips() {
        let adt: SpecAdt<MaxReg> = SpecAdt::default();
        assert!(adt.redo(&MaxOp::Peak, &MaxRes::Val(3)).is_none(), "reads are not logged");
        let bytes = adt.redo(&MaxOp::Raise(9), &MaxRes::Raised(true)).unwrap();
        assert_eq!(adt.decode_redo(&bytes).unwrap(), (MaxOp::Raise(9), MaxRes::Raised(true)));
    }

    /// The memoized conflict path (`prepare` tokens +
    /// `conflicts_prepared`) must decide exactly as the unmemoized
    /// `conflicts` on every op pair — including mixed calls where only
    /// one side carries a token.
    #[test]
    fn prepared_conflicts_agree_with_unprepared() {
        let lock = SpecLock::<MaxReg>::from_def();
        let ops: Vec<(MaxOp, MaxRes)> = vec![
            (MaxOp::Raise(5), MaxRes::Raised(true)),
            (MaxOp::Raise(5), MaxRes::Raised(false)),
            (MaxOp::Raise(7), MaxRes::Raised(true)),
            (MaxOp::Peak, MaxRes::Val(5)),
            (MaxOp::Peak, MaxRes::Val(7)),
        ];
        for a in &ops {
            let ta = lock.prepare(a);
            assert!(ta.is_some(), "SpecLock always classifies");
            for b in &ops {
                let tb = lock.prepare(b);
                let plain = lock.conflicts(a, b);
                assert_eq!(
                    lock.conflicts_prepared(a, ta.as_ref(), b, tb.as_ref()),
                    plain,
                    "memoized path diverged on {a:?} vs {b:?}"
                );
                assert_eq!(
                    lock.conflicts_prepared(a, None, b, tb.as_ref()),
                    plain,
                    "mixed-token fallback diverged on {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn nondeterministic_defs_offer_multiple_candidates() {
        /// A chooser: `pick()` may answer any element ever offered.
        #[derive(Default)]
        struct Chooser;

        #[derive(Clone, Debug, PartialEq)]
        enum COp {
            Offer(i64),
            Pick,
        }

        impl AdtDef for Chooser {
            type State = Vec<i64>;
            type Op = COp;
            type Res = Option<i64>;

            fn type_name(&self) -> &'static str {
                "Chooser"
            }
            fn initial(&self) -> Vec<i64> {
                Vec::new()
            }
            fn respond(&self, state: &Vec<i64>, op: &COp) -> Vec<Option<i64>> {
                match op {
                    COp::Offer(_) => vec![None],
                    COp::Pick => state.iter().map(|&x| Some(x)).collect(), // empty = blocks
                }
            }
            fn apply(&self, state: &mut Vec<i64>, op: &COp, res: &Option<i64>) {
                match (op, res) {
                    (COp::Offer(x), _) => state.push(*x),
                    (COp::Pick, Some(x)) => state.retain(|y| y != x),
                    _ => {}
                }
            }
            fn is_read(&self, _op: &COp, _res: &Option<i64>) -> bool {
                false
            }
            fn spec_op(&self, op: &COp, res: &Option<i64>) -> Operation {
                match (op, res) {
                    (COp::Offer(x), _) => Operation::new(Inv::unary("offer", *x), Value::Unit),
                    (COp::Pick, Some(x)) => Operation::new(Inv::nullary("pick"), *x),
                    (COp::Pick, None) => unreachable!("pick answers an element"),
                }
            }
            fn conflict_spec(&self) -> ConflictSpec {
                ConflictSpec::Table(
                    ConflictTable::new("chooser", |op| {
                        OpClass::new(if op.inv.op == "offer" { "Offer" } else { "Pick" })
                    })
                    .rule("Pick", "Pick", Cond::KeyEq),
                )
            }
            fn encode_op(&self, op: &COp, res: &Option<i64>) -> Vec<u8> {
                format!("{op:?}/{res:?}").into_bytes()
            }
            fn decode_op(&self, _bytes: &[u8]) -> Result<(COp, Option<i64>), RedoDecodeError> {
                Err(RedoDecodeError::new("not needed in this test"))
            }
            fn encode_state(&self, _state: &Vec<i64>) -> Vec<u8> {
                Vec::new()
            }
            fn decode_state(&self, _bytes: &[u8]) -> Result<Vec<i64>, RedoDecodeError> {
                Err(RedoDecodeError::new("not needed in this test"))
            }
        }

        let o: Arc<TxObject<SpecAdt<Chooser>>> = TxObject::new(
            "c",
            SpecAdt::default(),
            SpecLock::<Chooser>::from_def(),
            RuntimeOptions::default(),
        );
        let t0 = h(1);
        o.execute(&t0, COp::Offer(1)).unwrap();
        o.execute(&t0, COp::Offer(2)).unwrap();
        o.commit_at(t0.id(), 1);
        // Two concurrent picks take *different* elements instead of
        // conflicting — the semiqueue's nondeterminism dividend,
        // reproduced by a fully generic definition.
        let (t1, t2) = (h(2), h(3));
        let a = o.execute(&t1, COp::Pick).unwrap();
        let b = o.execute(&t2, COp::Pick).unwrap();
        assert_ne!(a, b, "the second pick was granted the other element");
    }
}
