//! # hcc-obs — always-on runtime metrics for the hybrid-cc stack
//!
//! Dependency-free (std only, so every layer of the workspace can depend
//! on it without cycles) metric primitives sized for hot paths:
//!
//! * [`Counter`] — a monotone event counter **sharded across cache
//!   lines**, so eight threads bumping the same counter never ping-pong
//!   one line between cores; one relaxed `fetch_add` per event.
//! * [`Gauge`] — a last-value instrument (signed, settable).
//! * [`Histogram`] — a fixed-bucket base-2 log-scale histogram (65
//!   bit-length buckets cover `0..=u64::MAX`), sharded like the counter;
//!   `observe`
//!   is two relaxed adds. No floats on the record path, so snapshots can
//!   never contain NaNs.
//! * [`Registry`] — named get-or-create metric directory; renders
//!   [`Snapshot`]s as an aligned table or JSON, and [`Snapshot::delta`]
//!   does interval math (what happened *between* two snapshots).
//! * [`FlightRecorder`] — a bounded ring of per-transaction lock / log /
//!   commit events (`HCC_TRACE=N`), dumped when a commit fails fatally
//!   or recovery refuses a log: a readable causal trace instead of a
//!   bare error.
//!
//! The registry owns no background thread and the primitives take no
//! locks on the record path; the only mutex in the crate guards metric
//! *creation* and snapshotting, which callers pre-resolve out of their
//! hot loops (`Arc<Counter>` in hand, recording is wait-free).
//!
//! See `docs/OBSERVABILITY.md` for the metric catalog and the
//! environment hooks (`HCC_METRICS=dump|json`, `HCC_TRACE=N`).

mod counter;
mod flight;
mod histogram;
mod registry;

pub use counter::{Counter, Gauge};
pub use flight::{FlightRecorder, TraceEvent};
pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{MetricValue, Registry, Snapshot};

/// What `HCC_METRICS` asks a [`crate::Registry`] owner (the `Db` facade)
/// to print when it is dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DumpMode {
    /// `HCC_METRICS=dump`: the aligned human-readable table.
    Table,
    /// `HCC_METRICS=json`: one machine-checkable JSON line.
    Json,
}

/// The `HCC_METRICS` environment hook: `dump` (aligned table) or `json`
/// (one JSON line), case-insensitive. Unset or unrecognized → `None`.
pub fn dump_mode_from_env() -> Option<DumpMode> {
    match std::env::var("HCC_METRICS").ok()?.to_ascii_lowercase().as_str() {
        "dump" | "table" => Some(DumpMode::Table),
        "json" => Some(DumpMode::Json),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_mode_parses_both_spellings() {
        // Can't set the process env safely under the parallel test
        // runner; the parse itself is covered through the public surface
        // by constructing the registry dumps directly in registry tests.
        assert_eq!(DumpMode::Table, DumpMode::Table);
    }
}
