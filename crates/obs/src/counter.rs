//! Sharded lock-free counters and gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Shards per counter. A power of two so the thread-slot mask is one
/// `&`. Sixteen covers any plausible core count this workload runs on
/// while keeping a counter at 2 KiB.
const SHARDS: usize = 16;

/// One shard, padded to its own cache line pair so two shards can never
/// share a line (64-byte lines; 128 covers adjacent-line prefetchers).
#[repr(align(128))]
#[derive(Default)]
struct Shard(AtomicU64);

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread gets a stable slot at first use; slots stripe threads
    /// across shards round-robin, so the common fixed-pool case (N
    /// worker threads) spreads perfectly.
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

#[inline]
fn shard_index() -> usize {
    THREAD_SLOT.with(|s| *s) & (SHARDS - 1)
}

/// A monotone event counter, sharded to avoid cache-line ping-pong.
///
/// [`Counter::inc`]/[`Counter::add`] are one relaxed `fetch_add` on the
/// calling thread's shard; [`Counter::get`] sums the shards (reads are
/// rare, writes are hot — the asymmetry is the point). Increments are
/// never lost: every `add` lands in exactly one shard's atomic.
#[derive(Default)]
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Count one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The total across all shards. A racing snapshot may miss in-flight
    /// increments (it is not a barrier), but at quiesce the sum is exact.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A last-value instrument: settable, signed, not sharded (a gauge's
/// *latest* value is the signal, so all writers race to one cell).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjust the value by `delta`.
    pub fn adjust(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_sets_and_adjusts() {
        let g = Gauge::new();
        g.set(-7);
        g.adjust(10);
        assert_eq!(g.get(), 3);
    }

    /// The load-bearing property of sharding: a multi-thread hammer loses
    /// no increments (each lands in exactly one shard's atomic).
    #[test]
    fn hammered_counter_loses_nothing() {
        let c = Arc::new(Counter::new());
        let threads = 8;
        let per = 50_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads as u64 * per);
    }

    #[test]
    fn shards_are_line_padded() {
        assert!(std::mem::align_of::<Shard>() >= 128);
        assert_eq!(std::mem::size_of::<Counter>(), SHARDS * 128);
    }
}
