//! A fixed-bucket base-2 log-scale histogram, sharded like the counter.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Bucket count. Bucket `i` holds values whose bit length is `i`:
/// bucket 0 is exactly `{0}`, bucket `i ≥ 1` covers `[2^(i-1), 2^i)`,
/// and bucket 64 (bit length of `u64::MAX`) tops out the range — so 65
/// fixed buckets span all of `u64`: nanosecond latencies, batch sizes,
/// and byte counts all fit without configuration.
pub const BUCKETS: usize = 65;

/// Shards per histogram; fewer than the counter's because a histogram
/// shard is a whole bucket array (the padding already isolates shards).
const SHARDS: usize = 8;

#[repr(align(128))]
struct Shard {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Shard {
    fn default() -> Shard {
        Shard { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }
}

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// The bucket a value lands in: its bit length.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// A log-scale histogram with lock-free, shard-local observation.
///
/// `observe` is two relaxed `fetch_add`s (bucket + sum) on the calling
/// thread's shard; all integer math, so a snapshot can never hold a NaN.
/// The bucket count always equals the observation count — each
/// observation lands in exactly one bucket of one shard.
#[derive(Default)]
pub struct Histogram {
    shards: [Shard; SHARDS],
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one value.
    #[inline]
    pub fn observe(&self, v: u64) {
        let shard = &self.shards[THREAD_SLOT.with(|s| *s) & (SHARDS - 1)];
        shard.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a `std::time::Duration` as nanoseconds (saturating).
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.snapshot().count
    }

    /// A consistent-enough point-in-time copy (relaxed reads; exact at
    /// quiesce).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; BUCKETS];
        let mut sum = 0u64;
        for shard in &self.shards {
            for (b, cell) in buckets.iter_mut().zip(shard.buckets.iter()) {
                *b += cell.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
        }
        let count = buckets.iter().sum();
        HistogramSnapshot { count, sum, buckets }
    }
}

/// A merged copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations (always equals the bucket sum).
    pub count: u64,
    /// Sum of observed values (wrapping; meaningful until ~2^64).
    pub sum: u64,
    /// Dense bucket counts; index = value bit length (see [`BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot { count: 0, sum: 0, buckets: vec![0; BUCKETS] }
    }

    /// Mean observed value (0 when empty). The one floating-point
    /// convenience; derived at read time, never stored.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding quantile `q` (0 when empty):
    /// the log-scale estimate, exact to within one power of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Everything recorded since `earlier` (saturating per bucket, so a
    /// mismatched pair degrades to zeros instead of wrapping).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter())
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum: self.sum.wrapping_sub(earlier.sum),
            buckets,
        }
    }
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`; bucket 0 holds `{0}`).
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn buckets_are_bit_lengths() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Bucket count covers the largest index.
        assert_eq!(BUCKETS, bucket_of(u64::MAX) + 1);
        assert_eq!(bucket_of(u64::MAX - 1), 64);
    }

    #[test]
    fn bucket_counts_sum_to_observation_count() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 5, 120, 4096, u64::MAX] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        let expected =
            [0u64, 1, 1, 5, 120, 4096, u64::MAX].iter().fold(0u64, |acc, v| acc.wrapping_add(*v));
        assert_eq!(s.sum, expected);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!((511..=1023).contains(&p50), "p50 within one power of two: {p50}");
        assert!(p99 >= p50);
        assert!((s.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn delta_subtracts() {
        let h = Histogram::new();
        h.observe(10);
        let before = h.snapshot();
        h.observe(10);
        h.observe(100);
        let d = h.snapshot().delta(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 110);
        assert_eq!(d.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn hammered_histogram_loses_nothing() {
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per = 20_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..per {
                        h.observe(t * 1000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, threads * per);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn bucket_upper_bounds() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }
}
