//! The per-transaction flight recorder: a bounded ring of recent events.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One recorded event: who did what to which object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (causal order across transactions).
    pub seq: u64,
    /// Transaction id, when the event belongs to one (0 = system).
    pub txn: u64,
    /// Object name, when the event targets one (empty = manager-level).
    pub object: String,
    /// Short machine-stable kind: `grant`, `refuse`, `wait`, `log.begin`,
    /// `log.op`, `log.commit`, `log.abort`, `commit`, `abort`, …
    pub kind: &'static str,
    /// Free-form detail (conflict-class pair, error text, byte counts).
    pub detail: String,
}

/// A bounded ring buffer of [`TraceEvent`]s (`HCC_TRACE=N`).
///
/// Always cheap to carry around (an `Option<Arc<FlightRecorder>>` that is
/// `None` when tracing is off costs one branch); when on, each record is
/// one mutex lock on a small deque — tracing is a debugging tool, not a
/// production counter, so contention here is acceptable. The ring keeps
/// the *last* `cap` events: when a commit fails fatally or recovery
/// refuses a log, [`FlightRecorder::dump_to_stderr`] prints a readable
/// causal trace of what led up to it.
pub struct FlightRecorder {
    cap: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<TraceEvent>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `cap` events (min 1).
    pub fn with_capacity(cap: usize) -> FlightRecorder {
        let cap = cap.max(1);
        FlightRecorder {
            cap,
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(cap)),
        }
    }

    /// The `HCC_TRACE` environment hook: `HCC_TRACE=N` (a positive event
    /// count) enables a recorder; unset, zero, or unparsable → `None`.
    pub fn from_env() -> Option<FlightRecorder> {
        let n: usize = std::env::var("HCC_TRACE").ok()?.trim().parse().ok()?;
        if n == 0 {
            return None;
        }
        Some(FlightRecorder::with_capacity(n))
    }

    /// Record one event, evicting the oldest when full.
    pub fn record(&self, txn: u64, object: &str, kind: &'static str, detail: String) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = TraceEvent { seq, txn, object: object.to_string(), kind, detail };
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Render the retained events as a readable trace, oldest first,
    /// with a `reason` headline.
    pub fn render(&self, reason: &str) -> String {
        let events = self.events();
        let mut out = format!("=== hcc flight recorder: {reason} ({} events) ===\n", events.len());
        for ev in &events {
            let obj = if ev.object.is_empty() { "-" } else { &ev.object };
            out.push_str(&format!(
                "#{:<6} txn={:<6} {:<12} {:<12} {}\n",
                ev.seq, ev.txn, ev.kind, obj, ev.detail
            ));
        }
        out.push_str("=== end flight recorder ===\n");
        out
    }

    /// Dump the trace to stderr (the crash-path sink: commit failed
    /// fatally, or recovery refused the log).
    pub fn dump_to_stderr(&self, reason: &str) {
        eprintln!("{}", self.render(reason));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_the_last_cap_events() {
        let fr = FlightRecorder::with_capacity(3);
        for i in 0..10u64 {
            fr.record(i, "obj", "grant", format!("ev{i}"));
        }
        let events = fr.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].detail, "ev7");
        assert_eq!(events[2].detail, "ev9");
        // Sequence numbers stay global even after eviction.
        assert_eq!(events[2].seq, 9);
    }

    #[test]
    fn render_includes_reason_and_events() {
        let fr = FlightRecorder::with_capacity(8);
        fr.record(1, "acct", "refuse", "Debit-Ok|Debit-Ok".to_string());
        fr.record(1, "", "commit", "ts=4".to_string());
        let text = fr.render("commit failed");
        assert!(text.contains("commit failed"));
        assert!(text.contains("Debit-Ok|Debit-Ok"));
        assert!(text.contains("txn=1"));
        // Manager-level events render a placeholder object.
        assert!(text.lines().any(|l| l.contains("commit") && l.contains(" - ")));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let fr = FlightRecorder::with_capacity(0);
        fr.record(1, "o", "wait", String::new());
        fr.record(2, "o", "wait", String::new());
        assert_eq!(fr.events().len(), 1);
    }
}
