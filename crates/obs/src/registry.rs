//! The named metric directory and its snapshots.

use crate::counter::{Counter, Gauge};
use crate::histogram::{bucket_upper_bound, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named get-or-create directory of metrics.
///
/// One registry per system (the `Db` facade and its `TxnManager` and
/// `DurableStore` share one); hot paths resolve their `Arc<Counter>` /
/// `Arc<Histogram>` once and record lock-free afterwards. The mutex here
/// guards only creation and snapshotting.
///
/// Names are dot-separated, coarse-to-fine (`lock.refusals.Account.…`),
/// so prefix sums ([`Snapshot::sum_prefix`]) aggregate families.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    ///
    /// # Panics
    /// If `name` already names a gauge or histogram — one name, one kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().unwrap();
        match m.entry(name.to_string()).or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} exists with a different kind"),
        }
    }

    /// The gauge named `name`, created at zero on first use.
    ///
    /// # Panics
    /// If `name` already names a counter or histogram.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().unwrap();
        match m.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} exists with a different kind"),
        }
    }

    /// The histogram named `name`, created empty on first use.
    ///
    /// # Panics
    /// If `name` already names a counter or gauge.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} exists with a different kind"),
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics.lock().unwrap();
        let values = m
            .iter()
            .map(|(name, metric)| {
                let v = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), v)
            })
            .collect();
        Snapshot { values }
    }
}

/// One metric's value inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge's last value.
    Gauge(i64),
    /// A histogram's merged state.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of a [`Registry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Metric values by name (sorted — `BTreeMap` keeps renders stable).
    pub values: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// The counter named `name` (0 when absent or another kind).
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The gauge named `name` (0 when absent or another kind).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.values.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// The histogram named `name`, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.values.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Sum of every *counter* whose name starts with `prefix` — family
    /// aggregation (`sum_prefix("lock.refusals.")` = all refusals).
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.values
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// What happened between `earlier` and `self`: counters and
    /// histograms subtract (saturating); gauges keep the later value
    /// (a gauge is a level, not a flow). Metrics absent from `earlier`
    /// appear whole.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let values = self
            .values
            .iter()
            .map(|(name, now)| {
                let v = match (now, earlier.values.get(name)) {
                    (MetricValue::Counter(n), Some(MetricValue::Counter(e))) => {
                        MetricValue::Counter(n.saturating_sub(*e))
                    }
                    (MetricValue::Histogram(n), Some(MetricValue::Histogram(e))) => {
                        MetricValue::Histogram(n.delta(e))
                    }
                    (now, _) => now.clone(),
                };
                (name.clone(), v)
            })
            .collect();
        Snapshot { values }
    }

    /// The aligned human-readable table (`HCC_METRICS=dump`).
    pub fn render_table(&self) -> String {
        let width = self.values.keys().map(String::len).max().unwrap_or(0).max(6);
        let mut out = String::new();
        out.push_str(&format!("{:<width$}  {:>12}  {}\n", "metric", "value", "detail"));
        for (name, v) in &self.values {
            match v {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("{name:<width$}  {c:>12}\n"));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!("{name:<width$}  {g:>12}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{name:<width$}  {:>12}  mean={:.0} p50≤{} p99≤{} max≤{}\n",
                        h.count,
                        h.mean(),
                        h.quantile(0.5),
                        h.quantile(0.99),
                        h.quantile(1.0),
                    ));
                }
            }
        }
        out
    }

    /// One machine-checkable JSON line (`HCC_METRICS=json`): an object
    /// `{"hcc_metrics": {name: value-or-histogram-object, …}}`. All
    /// values are integers (histogram quantiles included), so the dump
    /// can never contain a NaN.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"hcc_metrics\":{");
        let mut first = true;
        for (name, v) in &self.values {
            if !first {
                out.push(',');
            }
            first = false;
            json_string(&mut out, name);
            out.push(':');
            match v {
                MetricValue::Counter(c) => out.push_str(&c.to_string()),
                MetricValue::Gauge(g) => out.push_str(&g.to_string()),
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
                        h.count,
                        h.sum,
                        h.quantile(0.5),
                        h.quantile(0.99),
                    ));
                    let mut first_b = true;
                    for (i, b) in h.buckets.iter().enumerate() {
                        if *b == 0 {
                            continue;
                        }
                        if !first_b {
                            out.push(',');
                        }
                        first_b = false;
                        out.push_str(&format!("[{},{}]", bucket_upper_bound(i), b));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("}}");
        out
    }
}

/// Append `s` as a JSON string literal (quotes + control escapes).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_metric() {
        let r = Registry::new();
        r.counter("a.b").inc();
        r.counter("a.b").inc();
        assert_eq!(r.snapshot().counter("a.b"), 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_collisions_panic() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_delta_round_trips() {
        let r = Registry::new();
        r.counter("c").add(10);
        r.gauge("g").set(5);
        r.histogram("h").observe(100);
        let t0 = r.snapshot();
        // No activity: the delta against itself is all zeros…
        let zero = t0.delta(&t0);
        assert_eq!(zero.counter("c"), 0);
        assert_eq!(zero.histogram("h").unwrap().count, 0);
        // …and gauges carry the level through.
        assert_eq!(zero.gauge("g"), 5);

        r.counter("c").add(7);
        r.histogram("h").observe(200);
        let d = r.snapshot().delta(&t0);
        assert_eq!(d.counter("c"), 7);
        assert_eq!(d.histogram("h").unwrap().count, 1);
        // Adding the delta back to the base reproduces the new totals.
        assert_eq!(t0.counter("c") + d.counter("c"), r.snapshot().counter("c"));
    }

    #[test]
    fn prefix_sums_aggregate_families() {
        let r = Registry::new();
        r.counter("lock.refusals.Account.a").add(2);
        r.counter("lock.refusals.Account.b").add(3);
        r.counter("lock.refusals.Queue.c").add(5);
        r.counter("lock.grants.Account.x").add(100);
        let s = r.snapshot();
        assert_eq!(s.sum_prefix("lock.refusals."), 10);
        assert_eq!(s.sum_prefix("lock.refusals.Account."), 5);
        assert_eq!(s.sum_prefix("lock."), 110);
        assert_eq!(s.sum_prefix("nope."), 0);
    }

    #[test]
    fn json_render_is_parseable_shape() {
        let r = Registry::new();
        r.counter("a").add(1);
        r.gauge("g\"q").set(-2);
        r.histogram("h").observe(3);
        let json = r.snapshot().render_json();
        assert!(json.starts_with("{\"hcc_metrics\":{"));
        assert!(json.ends_with("}}"));
        assert!(json.contains("\"a\":1"));
        assert!(json.contains("\\\"q\""), "quotes escaped: {json}");
        assert!(json.contains("\"count\":1"));
        assert!(!json.contains("NaN"));
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser in a dependency-free crate.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            assert_eq!(opens, closes, "{open}{close} balanced");
        }
    }

    #[test]
    fn table_render_lists_every_metric() {
        let r = Registry::new();
        r.counter("a.count").add(4);
        r.histogram("lat").observe(1000);
        let t = r.snapshot().render_table();
        assert!(t.contains("a.count"));
        assert!(t.contains("lat"));
        assert!(t.contains("p99"));
    }
}
