//! A Counter — blind `inc`/`dec` updates commute-free under hybrid locking,
//! while `read` takes a value-sensitive lock (extension type).

use hcc_core::runtime::{
    ExecError, LockSpec, RedoDecodeError, RuntimeAdt, RuntimeOptions, TxObject, TxnHandle,
};
use hcc_spec::adt::SharedAdt;
use hcc_spec::specs::CounterSpec;
use hcc_spec::{Operation, Value};
use serde_json::json;
use std::sync::Arc;

/// Counter invocations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CounterInv {
    /// Add `n`.
    Inc(i64),
    /// Subtract `n`.
    Dec(i64),
    /// Read the current value.
    Read,
}

/// Counter responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CounterRes {
    /// Update acknowledgement.
    Ok,
    /// The value read.
    Val(i64),
}

/// The Counter runtime type; an intent is a net delta.
pub struct CounterAdt;

impl RuntimeAdt for CounterAdt {
    type Version = i64;
    type Intent = i64;
    type Inv = CounterInv;
    type Res = CounterRes;

    fn initial(&self) -> i64 {
        0
    }

    fn candidates(
        &self,
        version: &i64,
        committed: &[&i64],
        own: &i64,
        inv: &CounterInv,
    ) -> Vec<(CounterRes, i64)> {
        match inv {
            CounterInv::Inc(n) => vec![(CounterRes::Ok, own + n)],
            CounterInv::Dec(n) => vec![(CounterRes::Ok, own - n)],
            CounterInv::Read => {
                let total: i64 = version + committed.iter().copied().sum::<i64>() + own;
                vec![(CounterRes::Val(total), *own)]
            }
        }
    }

    fn apply(&self, version: &mut i64, intent: &i64) {
        *version += intent;
    }

    fn redo(&self, inv: &CounterInv, _res: &CounterRes) -> Option<Vec<u8>> {
        let v = match inv {
            CounterInv::Inc(n) => json!({"op": "inc", "v": (*n)}),
            CounterInv::Dec(n) => json!({"op": "dec", "v": (*n)}),
            CounterInv::Read => return None, // pure read: nothing to redo
        };
        Some(serde_json::to_vec(&v).expect("JSON values serialize"))
    }

    fn decode_redo(&self, bytes: &[u8]) -> Result<(CounterInv, CounterRes), RedoDecodeError> {
        let (op, v) = crate::decode_op(bytes)?;
        let n: i64 = crate::decode_field(&v, "v")?;
        match op.as_str() {
            "inc" => Ok((CounterInv::Inc(n), CounterRes::Ok)),
            "dec" => Ok((CounterInv::Dec(n), CounterRes::Ok)),
            other => Err(RedoDecodeError::new(format!("unknown counter op {other:?}"))),
        }
    }

    fn type_name(&self) -> &'static str {
        "Counter"
    }
}

/// Hybrid conflicts: a read is invalidated by any non-zero update; updates
/// never conflict with each other.
pub struct CounterHybrid;

impl LockSpec<CounterAdt> for CounterHybrid {
    fn conflicts(&self, a: &(CounterInv, CounterRes), b: &(CounterInv, CounterRes)) -> bool {
        let nonzero_update = |o: &(CounterInv, CounterRes)| match o.0 {
            CounterInv::Inc(n) | CounterInv::Dec(n) => n != 0,
            CounterInv::Read => false,
        };
        let is_read = |o: &(CounterInv, CounterRes)| matches!(o.0, CounterInv::Read);
        (is_read(a) && nonzero_update(b)) || (is_read(b) && nonzero_update(a))
    }
    fn name(&self) -> &'static str {
        "hybrid"
    }
}

/// A counter object with ergonomic methods.
pub struct CounterObject {
    obj: Arc<TxObject<CounterAdt>>,
}

impl CounterObject {
    /// A counter under the hybrid scheme.
    pub fn hybrid(name: impl Into<String>) -> CounterObject {
        Self::with(name, Arc::new(CounterHybrid), RuntimeOptions::default())
    }

    /// A counter under an arbitrary scheme and options.
    pub fn with(
        name: impl Into<String>,
        locks: Arc<dyn LockSpec<CounterAdt>>,
        opts: RuntimeOptions,
    ) -> CounterObject {
        CounterObject { obj: TxObject::new(name, CounterAdt, locks, opts) }
    }

    /// The underlying runtime object.
    pub fn inner(&self) -> &Arc<TxObject<CounterAdt>> {
        &self.obj
    }

    /// Add `n`.
    pub fn inc(&self, txn: &Arc<TxnHandle>, n: i64) -> Result<(), ExecError> {
        self.obj.execute(txn, CounterInv::Inc(n)).map(|_| ())
    }

    /// Subtract `n`.
    pub fn dec(&self, txn: &Arc<TxnHandle>, n: i64) -> Result<(), ExecError> {
        self.obj.execute(txn, CounterInv::Dec(n)).map(|_| ())
    }

    /// Read the counter.
    pub fn read(&self, txn: &Arc<TxnHandle>) -> Result<i64, ExecError> {
        match self.obj.execute(txn, CounterInv::Read)? {
            CounterRes::Val(v) => Ok(v),
            CounterRes::Ok => unreachable!("read returns a value"),
        }
    }

    /// The committed value (diagnostics).
    pub fn committed_value(&self) -> i64 {
        self.obj.committed_snapshot()
    }

    /// The value as of commit timestamp `watermark` — the wait-free
    /// snapshot-read accessor: no lock acquisition, no conflict with
    /// writers. Refused when compaction has folded past `watermark`.
    pub fn value_at(&self, watermark: u64) -> Result<i64, hcc_core::runtime::SnapshotStale> {
        self.obj.snapshot_read(watermark)
    }
}

/// The Counter restated through the declarative [`AdtDef`] surface — the
/// **ported twin** of [`CounterAdt`] + [`CounterHybrid`]: one definition
/// from which the runtime adapter, the lock relation (derived from
/// [`CounterSpec`] at first construction, cached per type), the snapshot
/// codec, and the `Db` handle are all generic. The wire format reuses
/// [`CounterAdt`]'s encoders, so `SpecObject<CounterDef>` writes
/// byte-identical WAL traces and checkpoint images — proven by the
/// differential test in `tests/defined_adts.rs`.
#[derive(Default)]
pub struct CounterDef;

impl crate::define::AdtDef for CounterDef {
    type State = i64;
    type Op = CounterInv;
    type Res = CounterRes;

    fn type_name(&self) -> &'static str {
        "Counter"
    }

    fn initial(&self) -> i64 {
        0
    }

    fn respond(&self, state: &i64, op: &CounterInv) -> Vec<CounterRes> {
        match op {
            CounterInv::Inc(_) | CounterInv::Dec(_) => vec![CounterRes::Ok],
            CounterInv::Read => vec![CounterRes::Val(*state)],
        }
    }

    fn apply(&self, state: &mut i64, op: &CounterInv, _res: &CounterRes) {
        match op {
            CounterInv::Inc(n) => *state += n,
            CounterInv::Dec(n) => *state -= n,
            CounterInv::Read => {}
        }
    }

    fn is_read(&self, op: &CounterInv, _res: &CounterRes) -> bool {
        matches!(op, CounterInv::Read)
    }

    fn spec_op(&self, op: &CounterInv, res: &CounterRes) -> Operation {
        to_spec_op(op, res)
    }

    fn conflict_spec(&self) -> crate::define::ConflictSpec {
        crate::define::ConflictSpec::Derived(crate::define::AdtConfig::counter().into())
    }

    fn encode_op(&self, op: &CounterInv, res: &CounterRes) -> Vec<u8> {
        CounterAdt.redo(op, res).expect("counter updates have redo payloads")
    }

    fn decode_op(&self, bytes: &[u8]) -> Result<(CounterInv, CounterRes), RedoDecodeError> {
        CounterAdt.decode_redo(bytes)
    }

    fn encode_state(&self, state: &i64) -> Vec<u8> {
        serde_json::to_vec(state).expect("i64 serializes")
    }

    fn decode_state(&self, bytes: &[u8]) -> Result<i64, RedoDecodeError> {
        serde_json::from_slice(bytes).map_err(|e| RedoDecodeError::new(e.to_string()))
    }
}

/// Map a runtime operation onto the dynamic specification operation.
pub fn to_spec_op(inv: &CounterInv, res: &CounterRes) -> Operation {
    match (inv, res) {
        (CounterInv::Inc(n), _) => Operation::new(CounterSpec::inc(*n), Value::Unit),
        (CounterInv::Dec(n), _) => Operation::new(CounterSpec::dec(*n), Value::Unit),
        (CounterInv::Read, CounterRes::Val(v)) => Operation::new(CounterSpec::read(), *v),
        (CounterInv::Read, CounterRes::Ok) => unreachable!("read returns a value"),
    }
}

/// The dynamic serial specification matching [`CounterAdt`].
pub fn spec() -> SharedAdt {
    Arc::new(CounterSpec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::runtime::TxParticipant;
    use hcc_spec::TxnId;
    use std::time::Duration;

    fn h(n: u64) -> Arc<TxnHandle> {
        TxnHandle::new(TxnId(n))
    }

    #[test]
    fn concurrent_updates_never_block() {
        let c = CounterObject::hybrid("c");
        let handles: Vec<_> = (1..=8).map(h).collect();
        for (i, t) in handles.iter().enumerate() {
            if i % 2 == 0 {
                c.inc(t, 5).unwrap();
            } else {
                c.dec(t, 2).unwrap();
            }
        }
        for (i, t) in handles.iter().enumerate() {
            c.inner().commit_at(t.id(), (i + 1) as u64);
        }
        assert_eq!(c.committed_value(), 4 * 5 - 4 * 2);
        assert_eq!(c.inner().stats().conflicts, 0);
    }

    #[test]
    fn read_blocks_on_uncommitted_update() {
        let c = CounterObject::with(
            "c",
            Arc::new(CounterHybrid),
            RuntimeOptions::with_timeout(Some(Duration::from_millis(30))),
        );
        let (t1, t2) = (h(1), h(2));
        c.inc(&t1, 1).unwrap();
        assert_eq!(c.read(&t2), Err(ExecError::Timeout));
    }

    #[test]
    fn zero_update_is_invisible_to_readers() {
        let c = CounterObject::hybrid("c");
        let (t1, t2) = (h(1), h(2));
        c.inc(&t1, 0).unwrap();
        assert_eq!(c.read(&t2).unwrap(), 0);
    }

    #[test]
    fn own_updates_visible() {
        let c = CounterObject::hybrid("c");
        let t1 = h(1);
        c.inc(&t1, 3).unwrap();
        c.dec(&t1, 1).unwrap();
        assert_eq!(c.read(&t1).unwrap(), 2);
    }

    #[test]
    fn deltas_fold_into_version() {
        let c = CounterObject::hybrid("c");
        for i in 1..=10u64 {
            let t = h(i);
            c.inc(&t, 1).unwrap();
            c.inner().commit_at(t.id(), i);
        }
        assert_eq!(c.committed_value(), 10);
        assert!(c.inner().retained_committed() <= 1);
    }
}
