//! A Directory (key → value map) with per-key, response-dependent
//! conflicts (extension type; the paper's introduction motivates
//! directories as typed objects).

use hcc_core::runtime::{
    ExecError, LockSpec, RedoDecodeError, RuntimeAdt, RuntimeOptions, TxObject, TxnHandle,
};
use hcc_spec::adt::SharedAdt;
use hcc_spec::specs::DirectorySpec;
use hcc_spec::{Operation, Value};
use serde::{Deserialize, Serialize};
use serde_json::json;
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::sync::Arc;

/// Bound alias for keys. Serde bounds make the type self-logging (redo
/// payloads) and checkpointable (snapshots).
pub trait Key: Clone + Ord + Debug + Send + Sync + Serialize + Deserialize + 'static {}
impl<T: Clone + Ord + Debug + Send + Sync + Serialize + Deserialize + 'static> Key for T {}

/// Bound alias for values. Serde bounds make the type self-logging (redo
/// payloads) and checkpointable (snapshots).
pub trait Val: Clone + Eq + Debug + Send + Sync + Serialize + Deserialize + 'static {}
impl<T: Clone + Eq + Debug + Send + Sync + Serialize + Deserialize + 'static> Val for T {}

/// Directory invocations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirInv<K, V> {
    /// Bind `k` to `v` if unbound.
    Insert(K, V),
    /// Unbind `k`.
    Remove(K),
    /// Look up `k`.
    Lookup(K),
}

/// Directory responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirRes<V> {
    /// Insert succeeded.
    Inserted,
    /// Insert refused: key already bound.
    Duplicate,
    /// The previously bound value (remove/lookup hit).
    Val(V),
    /// No binding (remove/lookup miss).
    Missing,
}

/// Intent steps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirOp<K, V> {
    /// Bind `k` to `v`.
    Insert(K, V),
    /// Unbind `k`.
    Remove(K),
}

/// The Directory runtime type.
pub struct DirectoryAdt<K, V>(PhantomData<fn() -> (K, V)>);

impl<K, V> Default for DirectoryAdt<K, V> {
    fn default() -> Self {
        DirectoryAdt(PhantomData)
    }
}

impl<K: Key, V: Val> RuntimeAdt for DirectoryAdt<K, V> {
    type Version = BTreeMap<K, V>;
    type Intent = Vec<DirOp<K, V>>;
    type Inv = DirInv<K, V>;
    type Res = DirRes<V>;

    fn initial(&self) -> BTreeMap<K, V> {
        BTreeMap::new()
    }

    fn candidates(
        &self,
        version: &BTreeMap<K, V>,
        committed: &[&Vec<DirOp<K, V>>],
        own: &Vec<DirOp<K, V>>,
        inv: &DirInv<K, V>,
    ) -> Vec<(DirRes<V>, Vec<DirOp<K, V>>)> {
        let key = match inv {
            DirInv::Insert(k, _) | DirInv::Remove(k) | DirInv::Lookup(k) => k,
        };
        // Fold the binding of this key over the view.
        let mut binding: Option<V> = version.get(key).cloned();
        for intent in committed.iter().copied().chain(std::iter::once(own)) {
            for op in intent.iter() {
                match op {
                    DirOp::Insert(k, v) if k == key => binding = Some(v.clone()),
                    DirOp::Remove(k) if k == key => binding = None,
                    _ => {}
                }
            }
        }
        match inv {
            DirInv::Insert(k, v) => match binding {
                Some(_) => vec![(DirRes::Duplicate, own.clone())],
                None => {
                    let mut next = own.clone();
                    next.push(DirOp::Insert(k.clone(), v.clone()));
                    vec![(DirRes::Inserted, next)]
                }
            },
            DirInv::Remove(k) => match binding {
                Some(v) => {
                    let mut next = own.clone();
                    next.push(DirOp::Remove(k.clone()));
                    vec![(DirRes::Val(v), next)]
                }
                None => vec![(DirRes::Missing, own.clone())],
            },
            DirInv::Lookup(_) => match binding {
                Some(v) => vec![(DirRes::Val(v), own.clone())],
                None => vec![(DirRes::Missing, own.clone())],
            },
        }
    }

    fn apply(&self, version: &mut BTreeMap<K, V>, intent: &Vec<DirOp<K, V>>) {
        for op in intent {
            match op {
                DirOp::Insert(k, v) => {
                    version.insert(k.clone(), v.clone());
                }
                DirOp::Remove(k) => {
                    version.remove(k);
                }
            }
        }
    }

    fn redo(&self, inv: &DirInv<K, V>, res: &DirRes<V>) -> Option<Vec<u8>> {
        let v = match (inv, res) {
            (DirInv::Insert(k, v), DirRes::Inserted) => {
                json!({"op": "insert", "k": (k), "v": (v), "ok": true})
            }
            // Duplicate inserts change nothing, but the refusal is a
            // response the verifier checks — logged like refused debits.
            (DirInv::Insert(k, v), DirRes::Duplicate) => {
                json!({"op": "insert", "k": (k), "v": (v), "ok": false})
            }
            (DirInv::Remove(k), DirRes::Val(prev)) => {
                json!({"op": "remove", "k": (k), "prev": (prev)})
            }
            (DirInv::Remove(k), DirRes::Missing) => json!({"op": "remove", "k": (k)}),
            (DirInv::Lookup(_), _) => return None, // pure read
            (inv, res) => unreachable!("directory op {inv:?} cannot respond {res:?}"),
        };
        Some(serde_json::to_vec(&v).expect("JSON values serialize"))
    }

    fn decode_redo(&self, bytes: &[u8]) -> Result<(DirInv<K, V>, DirRes<V>), RedoDecodeError> {
        let (op, v) = crate::decode_op(bytes)?;
        let key: K = crate::decode_field(&v, "k")?;
        match op.as_str() {
            "insert" => {
                let val: V = crate::decode_field(&v, "v")?;
                let ok: bool = crate::decode_field(&v, "ok")?;
                let res = if ok { DirRes::Inserted } else { DirRes::Duplicate };
                Ok((DirInv::Insert(key, val), res))
            }
            "remove" => {
                let prev: Option<V> = crate::decode_field(&v, "prev")?;
                let res = match prev {
                    Some(p) => DirRes::Val(p),
                    None => DirRes::Missing,
                };
                Ok((DirInv::Remove(key), res))
            }
            other => Err(RedoDecodeError::new(format!("unknown directory op {other:?}"))),
        }
    }

    fn type_name(&self) -> &'static str {
        "Directory"
    }
}

/// Hybrid conflicts: per key, mutating inserts conflict with operations
/// they could invalidate (inserts→Inserted, remove/lookup misses) and
/// mutating removes with the operations *they* could invalidate (duplicate
/// inserts, remove/lookup hits).
pub struct DirectoryHybrid;

impl<K: Key, V: Val> LockSpec<DirectoryAdt<K, V>> for DirectoryHybrid {
    fn conflicts(&self, a: &(DirInv<K, V>, DirRes<V>), b: &(DirInv<K, V>, DirRes<V>)) -> bool {
        let key = |o: &(DirInv<K, V>, DirRes<V>)| match &o.0 {
            DirInv::Insert(k, _) | DirInv::Remove(k) | DirInv::Lookup(k) => k.clone(),
        };
        if key(a) != key(b) {
            return false;
        }
        let dep = |q: &(DirInv<K, V>, DirRes<V>), p: &(DirInv<K, V>, DirRes<V>)| -> bool {
            let p_binds = matches!((&p.0, &p.1), (DirInv::Insert(..), DirRes::Inserted));
            let p_unbinds = matches!((&p.0, &p.1), (DirInv::Remove(_), DirRes::Val(_)));
            match (&q.0, &q.1) {
                // Invalidated by a binding insert:
                (DirInv::Insert(..), DirRes::Inserted) => p_binds,
                (DirInv::Remove(_), DirRes::Missing) => p_binds,
                (DirInv::Lookup(_), DirRes::Missing) => p_binds,
                // Invalidated by an unbinding remove:
                (DirInv::Insert(..), DirRes::Duplicate) => p_unbinds,
                (DirInv::Remove(_), DirRes::Val(_)) => p_unbinds,
                (DirInv::Lookup(_), DirRes::Val(_)) => p_unbinds,
                _ => false,
            }
        };
        dep(a, b) || dep(b, a)
    }
    fn name(&self) -> &'static str {
        "hybrid"
    }
}

/// A directory object with ergonomic methods.
pub struct DirectoryObject<K: Key, V: Val> {
    obj: Arc<TxObject<DirectoryAdt<K, V>>>,
}

impl<K: Key, V: Val> DirectoryObject<K, V> {
    /// A directory under the hybrid scheme.
    pub fn hybrid(name: impl Into<String>) -> DirectoryObject<K, V> {
        Self::with(name, Arc::new(DirectoryHybrid), RuntimeOptions::default())
    }

    /// A directory under an arbitrary scheme and options.
    pub fn with(
        name: impl Into<String>,
        locks: Arc<dyn LockSpec<DirectoryAdt<K, V>>>,
        opts: RuntimeOptions,
    ) -> DirectoryObject<K, V> {
        DirectoryObject { obj: TxObject::new(name, DirectoryAdt::default(), locks, opts) }
    }

    /// The underlying runtime object.
    pub fn inner(&self) -> &Arc<TxObject<DirectoryAdt<K, V>>> {
        &self.obj
    }

    /// Bind `k` to `v`; `Ok(true)` iff newly bound.
    pub fn insert(&self, txn: &Arc<TxnHandle>, k: K, v: V) -> Result<bool, ExecError> {
        Ok(self.obj.execute(txn, DirInv::Insert(k, v))? == DirRes::Inserted)
    }

    /// Unbind `k`, returning the old value if any.
    pub fn remove(&self, txn: &Arc<TxnHandle>, k: K) -> Result<Option<V>, ExecError> {
        match self.obj.execute(txn, DirInv::Remove(k))? {
            DirRes::Val(v) => Ok(Some(v)),
            DirRes::Missing => Ok(None),
            _ => unreachable!("remove returns a value or missing"),
        }
    }

    /// Look up `k`.
    pub fn lookup(&self, txn: &Arc<TxnHandle>, k: K) -> Result<Option<V>, ExecError> {
        match self.obj.execute(txn, DirInv::Lookup(k))? {
            DirRes::Val(v) => Ok(Some(v)),
            DirRes::Missing => Ok(None),
            _ => unreachable!("lookup returns a value or missing"),
        }
    }

    /// Committed binding count (diagnostics).
    pub fn committed_len(&self) -> usize {
        self.obj.committed_snapshot().len()
    }

    /// The bindings as of commit timestamp `watermark` — the wait-free
    /// snapshot-read accessor: no lock acquisition, no conflict with
    /// writers. Refused when compaction has folded past `watermark`.
    pub fn entries_at(
        &self,
        watermark: u64,
    ) -> Result<BTreeMap<K, V>, hcc_core::runtime::SnapshotStale> {
        self.obj.snapshot_read(watermark)
    }
}

/// Map a runtime operation onto the dynamic specification operation.
pub fn to_spec_op<K, V>(inv: &DirInv<K, V>, res: &DirRes<V>) -> Operation
where
    K: Key + Into<Value>,
    V: Val + Into<Value>,
{
    match (inv, res) {
        (DirInv::Insert(k, v), DirRes::Inserted) => {
            Operation::new(DirectorySpec::insert(k.clone(), v.clone()), true)
        }
        (DirInv::Insert(k, v), DirRes::Duplicate) => {
            Operation::new(DirectorySpec::insert(k.clone(), v.clone()), false)
        }
        (DirInv::Remove(k), DirRes::Val(v)) => {
            Operation::new(DirectorySpec::remove(k.clone()), v.clone())
        }
        (DirInv::Remove(k), DirRes::Missing) => {
            Operation::new(DirectorySpec::remove(k.clone()), Value::Null)
        }
        (DirInv::Lookup(k), DirRes::Val(v)) => {
            Operation::new(DirectorySpec::lookup(k.clone()), v.clone())
        }
        (DirInv::Lookup(k), DirRes::Missing) => {
            Operation::new(DirectorySpec::lookup(k.clone()), Value::Null)
        }
        _ => unreachable!("invalid (inv, res) combination"),
    }
}

/// The dynamic serial specification matching [`DirectoryAdt`].
pub fn spec() -> SharedAdt {
    Arc::new(DirectorySpec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::runtime::TxParticipant;
    use hcc_spec::TxnId;
    use std::time::Duration;

    fn h(n: u64) -> Arc<TxnHandle> {
        TxnHandle::new(TxnId(n))
    }
    fn short() -> DirectoryObject<String, i64> {
        DirectoryObject::with(
            "d",
            Arc::new(DirectoryHybrid),
            RuntimeOptions::with_timeout(Some(Duration::from_millis(30))),
        )
    }

    #[test]
    fn distinct_keys_never_conflict() {
        let d: DirectoryObject<String, i64> = DirectoryObject::hybrid("d");
        let (t1, t2) = (h(1), h(2));
        assert!(d.insert(&t1, "a".into(), 1).unwrap());
        assert!(d.insert(&t2, "b".into(), 2).unwrap());
        assert_eq!(d.lookup(&t2, "b".into()).unwrap(), Some(2));
        assert_eq!(d.inner().stats().conflicts, 0);
    }

    #[test]
    fn same_key_inserts_conflict() {
        let d = short();
        let (t1, t2) = (h(1), h(2));
        assert!(d.insert(&t1, "k".into(), 1).unwrap());
        assert_eq!(d.insert(&t2, "k".into(), 2), Err(ExecError::Timeout));
    }

    #[test]
    fn lookup_miss_conflicts_with_pending_insert() {
        let d = short();
        let (t1, t2) = (h(1), h(2));
        assert!(d.insert(&t1, "k".into(), 1).unwrap());
        assert_eq!(d.lookup(&t2, "k".into()), Err(ExecError::Timeout));
    }

    #[test]
    fn lookup_hit_coexists_with_duplicate_insert() {
        let d: DirectoryObject<String, i64> = DirectoryObject::hybrid("d");
        let t0 = h(1);
        assert!(d.insert(&t0, "k".into(), 1).unwrap());
        d.inner().commit_at(t0.id(), 1);
        let (t1, t2) = (h(2), h(3));
        assert!(!d.insert(&t1, "k".into(), 9).unwrap(), "duplicate");
        assert_eq!(d.lookup(&t2, "k".into()).unwrap(), Some(1));
    }

    #[test]
    fn remove_returns_binding_and_conflicts_with_hits() {
        let d = short();
        let t0 = h(1);
        assert!(d.insert(&t0, "k".into(), 7).unwrap());
        d.inner().commit_at(t0.id(), 1);
        let (t1, t2) = (h(2), h(3));
        assert_eq!(d.remove(&t1, "k".into()).unwrap(), Some(7));
        assert_eq!(d.lookup(&t2, "k".into()), Err(ExecError::Timeout));
    }

    #[test]
    fn own_bindings_visible_and_foldable() {
        let d: DirectoryObject<String, i64> = DirectoryObject::hybrid("d");
        let t1 = h(1);
        assert!(d.insert(&t1, "k".into(), 1).unwrap());
        assert_eq!(d.lookup(&t1, "k".into()).unwrap(), Some(1));
        assert_eq!(d.remove(&t1, "k".into()).unwrap(), Some(1));
        assert!(d.insert(&t1, "k".into(), 2).unwrap());
        d.inner().commit_at(t1.id(), 1);
        assert_eq!(d.committed_len(), 1);
        let t2 = h(2);
        assert_eq!(d.lookup(&t2, "k".into()).unwrap(), Some(2));
    }

    #[test]
    fn abort_rolls_back_bindings() {
        let d: DirectoryObject<String, i64> = DirectoryObject::hybrid("d");
        let t1 = h(1);
        assert!(d.insert(&t1, "k".into(), 1).unwrap());
        d.inner().abort_txn(t1.id());
        let t2 = h(2);
        assert_eq!(d.lookup(&t2, "k".into()).unwrap(), None);
    }
}
