//! The File / register type (Table I — the generalized Thomas Write Rule).
//!
//! Blind writes never conflict: when two transactions write concurrently,
//! later readers see the value written by the transaction with the later
//! commit timestamp. A read conflicts with an uncommitted write only when
//! the written value differs from the value read.

use hcc_core::runtime::{
    ExecError, LockSpec, RedoDecodeError, RuntimeAdt, RuntimeOptions, TxObject, TxnHandle,
};
use hcc_spec::adt::SharedAdt;
use hcc_spec::specs::FileSpec;
use hcc_spec::{Operation, Value};
use serde::{Deserialize, Serialize};
use serde_json::json;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::sync::Arc;

/// Bound alias for file contents. Serde bounds make the type self-logging
/// (redo payloads) and checkpointable (snapshots).
pub trait Content:
    Clone + Eq + Debug + Default + Send + Sync + Serialize + Deserialize + 'static
{
}
impl<T: Clone + Eq + Debug + Default + Send + Sync + Serialize + Deserialize + 'static> Content
    for T
{
}

/// File invocations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FileInv<T> {
    /// Read the current value.
    Read,
    /// Overwrite the value.
    Write(T),
}

/// File responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FileRes<T> {
    /// Write acknowledgement.
    Ok,
    /// The value read.
    Val(T),
}

/// The File runtime type. The intent is the last value written (if any).
pub struct FileAdt<T>(PhantomData<fn() -> T>);

impl<T> Default for FileAdt<T> {
    fn default() -> Self {
        FileAdt(PhantomData)
    }
}

impl<T: Content> RuntimeAdt for FileAdt<T> {
    type Version = T;
    type Intent = Option<T>;
    type Inv = FileInv<T>;
    type Res = FileRes<T>;

    fn initial(&self) -> T {
        T::default()
    }

    fn candidates(
        &self,
        version: &T,
        committed: &[&Option<T>],
        own: &Option<T>,
        inv: &FileInv<T>,
    ) -> Vec<(FileRes<T>, Option<T>)> {
        match inv {
            FileInv::Write(v) => vec![(FileRes::Ok, Some(v.clone()))],
            FileInv::Read => {
                let mut cur = version.clone();
                for v in committed.iter().copied().flatten() {
                    cur = v.clone();
                }
                if let Some(v) = own {
                    cur = v.clone();
                }
                vec![(FileRes::Val(cur), own.clone())]
            }
        }
    }

    fn apply(&self, version: &mut T, intent: &Option<T>) {
        if let Some(v) = intent {
            *version = v.clone();
        }
    }

    fn redo(&self, inv: &FileInv<T>, _res: &FileRes<T>) -> Option<Vec<u8>> {
        match inv {
            FileInv::Write(x) => Some(
                serde_json::to_vec(&json!({"op": "write", "v": (x)}))
                    .expect("JSON values serialize"),
            ),
            FileInv::Read => None, // pure read: nothing to redo
        }
    }

    fn decode_redo(&self, bytes: &[u8]) -> Result<(FileInv<T>, FileRes<T>), RedoDecodeError> {
        let (op, v) = crate::decode_op(bytes)?;
        match op.as_str() {
            "write" => Ok((FileInv::Write(crate::decode_field(&v, "v")?), FileRes::Ok)),
            other => Err(RedoDecodeError::new(format!("unknown file op {other:?}"))),
        }
    }

    fn type_name(&self) -> &'static str {
        "File"
    }
}

/// Table I conflicts: `Read→v` ↔ `Write(v′)` when `v ≠ v′`; nothing else.
pub struct FileHybrid;

impl<T: Content> LockSpec<FileAdt<T>> for FileHybrid {
    fn conflicts(&self, a: &(FileInv<T>, FileRes<T>), b: &(FileInv<T>, FileRes<T>)) -> bool {
        match (a, b) {
            ((FileInv::Read, FileRes::Val(v)), (FileInv::Write(w), _))
            | ((FileInv::Write(w), _), (FileInv::Read, FileRes::Val(v))) => v != w,
            _ => false,
        }
    }
    fn name(&self) -> &'static str {
        "hybrid"
    }
}

/// A file object with ergonomic methods.
pub struct FileObject<T: Content> {
    obj: Arc<TxObject<FileAdt<T>>>,
}

impl<T: Content> FileObject<T> {
    /// A file under the Table-I hybrid scheme.
    pub fn hybrid(name: impl Into<String>) -> FileObject<T> {
        Self::with(name, Arc::new(FileHybrid), RuntimeOptions::default())
    }

    /// A file under an arbitrary scheme and options.
    pub fn with(
        name: impl Into<String>,
        locks: Arc<dyn LockSpec<FileAdt<T>>>,
        opts: RuntimeOptions,
    ) -> FileObject<T> {
        FileObject { obj: TxObject::new(name, FileAdt::default(), locks, opts) }
    }

    /// The underlying runtime object.
    pub fn inner(&self) -> &Arc<TxObject<FileAdt<T>>> {
        &self.obj
    }

    /// Read the current value.
    pub fn read(&self, txn: &Arc<TxnHandle>) -> Result<T, ExecError> {
        match self.obj.execute(txn, FileInv::Read)? {
            FileRes::Val(v) => Ok(v),
            FileRes::Ok => unreachable!("read returns a value"),
        }
    }

    /// Overwrite the value.
    pub fn write(&self, txn: &Arc<TxnHandle>, value: T) -> Result<(), ExecError> {
        self.obj.execute(txn, FileInv::Write(value)).map(|_| ())
    }

    /// The committed value (diagnostics).
    pub fn committed_value(&self) -> T {
        self.obj.committed_snapshot()
    }

    /// The value as of commit timestamp `watermark` — the wait-free
    /// snapshot-read accessor: no lock acquisition, no conflict with
    /// writers. Refused when compaction has folded past `watermark`.
    pub fn value_at(&self, watermark: u64) -> Result<T, hcc_core::runtime::SnapshotStale> {
        self.obj.snapshot_read(watermark)
    }
}

/// Map a runtime operation onto the dynamic specification operation.
pub fn to_spec_op<T: Content + Into<Value>>(inv: &FileInv<T>, res: &FileRes<T>) -> Operation {
    match (inv, res) {
        (FileInv::Write(v), _) => Operation::new(FileSpec::write(v.clone()), Value::Unit),
        (FileInv::Read, FileRes::Val(v)) => Operation::new(FileSpec::read(), v.clone()),
        (FileInv::Read, FileRes::Ok) => unreachable!("read returns a value"),
    }
}

/// The dynamic serial specification matching [`FileAdt<i64>`] (initial 0).
pub fn spec() -> SharedAdt {
    Arc::new(FileSpec::new(Value::Int(0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::runtime::TxParticipant;
    use hcc_spec::TxnId;
    use std::time::Duration;

    fn h(n: u64) -> Arc<TxnHandle> {
        TxnHandle::new(TxnId(n))
    }
    fn short() -> RuntimeOptions {
        RuntimeOptions::with_timeout(Some(Duration::from_millis(30)))
    }

    #[test]
    fn thomas_write_rule_last_timestamp_wins() {
        let f: FileObject<i64> = FileObject::hybrid("f");
        let (t1, t2, t3) = (h(1), h(2), h(3));
        f.write(&t1, 10).unwrap();
        f.write(&t2, 20).unwrap();
        f.write(&t3, 30).unwrap(); // three concurrent blind writes
        f.inner().commit_at(t3.id(), 1);
        f.inner().commit_at(t1.id(), 3);
        f.inner().commit_at(t2.id(), 2);
        assert_eq!(f.committed_value(), 10, "t1 has the latest timestamp");
    }

    #[test]
    fn read_conflicts_with_differing_write() {
        let f: FileObject<i64> = FileObject::with("f", Arc::new(FileHybrid), short());
        let (t1, t2) = (h(1), h(2));
        f.write(&t1, 7).unwrap();
        assert_eq!(f.read(&t2), Err(ExecError::Timeout));
    }

    #[test]
    fn read_coexists_with_equal_valued_write() {
        let f: FileObject<i64> = FileObject::hybrid("f");
        let (t1, t2) = (h(1), h(2));
        f.write(&t1, 0).unwrap(); // writes the (default) current value
        assert_eq!(f.read(&t2).unwrap(), 0);
    }

    #[test]
    fn writer_blocks_on_reader_of_other_value() {
        let f: FileObject<i64> = FileObject::with("f", Arc::new(FileHybrid), short());
        let (t1, t2) = (h(1), h(2));
        assert_eq!(f.read(&t1).unwrap(), 0);
        assert_eq!(f.write(&t2, 5), Err(ExecError::Timeout));
    }

    #[test]
    fn own_write_read_back() {
        let f: FileObject<String> = FileObject::hybrid("f");
        let t1 = h(1);
        f.write(&t1, "x".into()).unwrap();
        assert_eq!(f.read(&t1).unwrap(), "x");
    }

    #[test]
    fn abort_discards_write() {
        let f: FileObject<i64> = FileObject::hybrid("f");
        let t1 = h(1);
        f.write(&t1, 9).unwrap();
        f.inner().abort_txn(t1.id());
        assert_eq!(f.committed_value(), 0);
    }
}
