//! The FIFO queue (Tables II and III).
//!
//! The queue is the paper's headline example: enqueues do not commute, yet
//! under hybrid concurrency control concurrent transactions may enqueue
//! concurrently — the dequeue order of concurrently-enqueued items is
//! decided by their commit timestamps.
//!
//! Both minimal conflict relations are provided:
//!
//! * [`QueueTableII`] — `Deq` conflicts with `Enq` of a different item and
//!   with `Deq` of the same item; enqueues never conflict.
//! * [`QueueTableIII`] — `Enq` conflicts with `Enq` of a different item;
//!   `Deq` conflicts with `Deq` of the same item; `Enq` and `Deq` never
//!   conflict (a dequeuer may run concurrently with enqueuers as long as it
//!   consumes committed items).

use hcc_core::runtime::{
    ExecError, LockSpec, RedoDecodeError, RuntimeAdt, RuntimeOptions, TxObject, TxnHandle,
};
use hcc_spec::adt::SharedAdt;
use hcc_spec::specs::QueueSpec;
use hcc_spec::{Operation, Value};
use serde::{Deserialize, Serialize};
use serde_json::json;
use std::collections::VecDeque;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::sync::Arc;

/// Bound alias for queue items. Serde bounds make the type self-logging
/// (redo payloads) and checkpointable (snapshots).
pub trait Item: Clone + Eq + Debug + Send + Sync + Serialize + Deserialize + 'static {}
impl<T: Clone + Eq + Debug + Send + Sync + Serialize + Deserialize + 'static> Item for T {}

/// Queue invocations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueueInv<T> {
    /// Append an item at the tail.
    Enq(T),
    /// Remove and return the head item (partial: blocks when empty).
    Deq,
}

/// Queue responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueueRes<T> {
    /// Enqueue acknowledgement.
    Ok,
    /// The dequeued item.
    Item(T),
}

/// One step of a transaction's intent (replayed onto the version at
/// commit-fold time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueueOp<T> {
    /// Enqueue `T`.
    Enq(T),
    /// Dequeue (the head at replay time; response recorded separately).
    Deq,
}

/// The FIFO queue runtime type.
pub struct QueueAdt<T>(PhantomData<fn() -> T>);

impl<T> Default for QueueAdt<T> {
    fn default() -> Self {
        QueueAdt(PhantomData)
    }
}

impl<T: Item> RuntimeAdt for QueueAdt<T> {
    type Version = VecDeque<T>;
    type Intent = Vec<QueueOp<T>>;
    type Inv = QueueInv<T>;
    type Res = QueueRes<T>;

    fn initial(&self) -> VecDeque<T> {
        VecDeque::new()
    }

    fn candidates(
        &self,
        version: &VecDeque<T>,
        committed: &[&Vec<QueueOp<T>>],
        own: &Vec<QueueOp<T>>,
        inv: &QueueInv<T>,
    ) -> Vec<(QueueRes<T>, Vec<QueueOp<T>>)> {
        match inv {
            QueueInv::Enq(x) => {
                let mut next = own.clone();
                next.push(QueueOp::Enq(x.clone()));
                vec![(QueueRes::Ok, next)]
            }
            QueueInv::Deq => {
                // Materialize the view and peek its head.
                let mut view = version.clone();
                for intent in committed {
                    replay(&mut view, intent);
                }
                replay(&mut view, own);
                match view.front() {
                    None => vec![],
                    Some(head) => {
                        let mut next = own.clone();
                        next.push(QueueOp::Deq);
                        vec![(QueueRes::Item(head.clone()), next)]
                    }
                }
            }
        }
    }

    fn apply(&self, version: &mut VecDeque<T>, intent: &Vec<QueueOp<T>>) {
        replay(version, intent);
    }

    fn redo(&self, inv: &QueueInv<T>, res: &QueueRes<T>) -> Option<Vec<u8>> {
        let v = match (inv, res) {
            (QueueInv::Enq(x), _) => json!({"op": "enq", "v": (x)}),
            // The dequeued item rides along so replay can pin (and verify)
            // the response.
            (QueueInv::Deq, QueueRes::Item(x)) => json!({"op": "deq", "v": (x)}),
            (QueueInv::Deq, QueueRes::Ok) => unreachable!("deq returns an item"),
        };
        Some(serde_json::to_vec(&v).expect("JSON values serialize"))
    }

    fn decode_redo(&self, bytes: &[u8]) -> Result<(QueueInv<T>, QueueRes<T>), RedoDecodeError> {
        let (op, v) = crate::decode_op(bytes)?;
        let item: T = crate::decode_field(&v, "v")?;
        match op.as_str() {
            "enq" => Ok((QueueInv::Enq(item), QueueRes::Ok)),
            "deq" => Ok((QueueInv::Deq, QueueRes::Item(item))),
            other => Err(RedoDecodeError::new(format!("unknown queue op {other:?}"))),
        }
    }

    fn type_name(&self) -> &'static str {
        "FIFO-Queue"
    }
}

fn replay<T: Clone>(q: &mut VecDeque<T>, ops: &[QueueOp<T>]) {
    for op in ops {
        match op {
            QueueOp::Enq(x) => q.push_back(x.clone()),
            QueueOp::Deq => {
                let _ = q.pop_front();
            }
        }
    }
}

/// Table II conflicts: `Deq→v` ↔ `Enq(v′)` when `v ≠ v′`; `Deq→v` ↔
/// `Deq→v` — enqueues never conflict.
pub struct QueueTableII;

impl<T: Item> LockSpec<QueueAdt<T>> for QueueTableII {
    fn conflicts(&self, a: &(QueueInv<T>, QueueRes<T>), b: &(QueueInv<T>, QueueRes<T>)) -> bool {
        match (a, b) {
            ((QueueInv::Deq, QueueRes::Item(v)), (QueueInv::Enq(w), _))
            | ((QueueInv::Enq(w), _), (QueueInv::Deq, QueueRes::Item(v))) => v != w,
            ((QueueInv::Deq, QueueRes::Item(v)), (QueueInv::Deq, QueueRes::Item(w))) => v == w,
            _ => false,
        }
    }
    fn name(&self) -> &'static str {
        "hybrid-table-ii"
    }
    fn class_of(&self, op: &(QueueInv<T>, QueueRes<T>)) -> Option<String> {
        Some(queue_class(op))
    }
}

/// Table II/III's class names for queue operations.
fn queue_class<T: Item>(op: &(QueueInv<T>, QueueRes<T>)) -> String {
    match op.0 {
        QueueInv::Enq(_) => "Enq",
        QueueInv::Deq => "Deq-Ok",
    }
    .to_string()
}

/// Table III conflicts: `Enq(v)` ↔ `Enq(v′)` when `v ≠ v′`; `Deq→v` ↔
/// `Deq→v` — enqueues and dequeues never conflict with each other. This is
/// the relation commutativity-based locking also induces.
pub struct QueueTableIII;

impl<T: Item> LockSpec<QueueAdt<T>> for QueueTableIII {
    fn conflicts(&self, a: &(QueueInv<T>, QueueRes<T>), b: &(QueueInv<T>, QueueRes<T>)) -> bool {
        match (a, b) {
            ((QueueInv::Enq(v), _), (QueueInv::Enq(w), _)) => v != w,
            ((QueueInv::Deq, QueueRes::Item(v)), (QueueInv::Deq, QueueRes::Item(w))) => v == w,
            _ => false,
        }
    }
    fn name(&self) -> &'static str {
        "hybrid-table-iii"
    }
    fn class_of(&self, op: &(QueueInv<T>, QueueRes<T>)) -> Option<String> {
        Some(queue_class(op))
    }
}

/// A FIFO queue object with ergonomic methods.
pub struct QueueObject<T: Item> {
    obj: Arc<TxObject<QueueAdt<T>>>,
}

impl<T: Item> QueueObject<T> {
    /// A queue under the Table-II hybrid scheme (concurrent enqueues).
    pub fn hybrid(name: impl Into<String>) -> QueueObject<T> {
        Self::with(name, Arc::new(QueueTableII), RuntimeOptions::default())
    }

    /// A queue under an arbitrary scheme and options.
    pub fn with(
        name: impl Into<String>,
        locks: Arc<dyn LockSpec<QueueAdt<T>>>,
        opts: RuntimeOptions,
    ) -> QueueObject<T> {
        QueueObject { obj: TxObject::new(name, QueueAdt::default(), locks, opts) }
    }

    /// The underlying runtime object.
    pub fn inner(&self) -> &Arc<TxObject<QueueAdt<T>>> {
        &self.obj
    }

    /// Enqueue an item.
    pub fn enq(&self, txn: &Arc<TxnHandle>, item: T) -> Result<(), ExecError> {
        self.obj.execute(txn, QueueInv::Enq(item)).map(|_| ())
    }

    /// Dequeue the head item (blocks while the queue is empty).
    pub fn deq(&self, txn: &Arc<TxnHandle>) -> Result<T, ExecError> {
        match self.obj.execute(txn, QueueInv::Deq)? {
            QueueRes::Item(x) => Ok(x),
            QueueRes::Ok => unreachable!("deq returns an item"),
        }
    }

    /// Number of committed items (diagnostics).
    pub fn committed_len(&self) -> usize {
        self.obj.committed_snapshot().len()
    }

    /// The queue contents as of commit timestamp `watermark` — the
    /// wait-free snapshot-read accessor: no lock acquisition, no
    /// conflict with writers. Refused when compaction has folded past
    /// `watermark`.
    pub fn items_at(
        &self,
        watermark: u64,
    ) -> Result<VecDeque<T>, hcc_core::runtime::SnapshotStale> {
        self.obj.snapshot_read(watermark)
    }
}

/// Map a runtime operation onto the dynamic specification operation.
pub fn to_spec_op<T: Item + Into<Value>>(inv: &QueueInv<T>, res: &QueueRes<T>) -> Operation {
    match (inv, res) {
        (QueueInv::Enq(x), _) => Operation::new(QueueSpec::enq(x.clone()), Value::Unit),
        (QueueInv::Deq, QueueRes::Item(x)) => Operation::new(QueueSpec::deq(), x.clone()),
        (QueueInv::Deq, QueueRes::Ok) => unreachable!("deq returns an item"),
    }
}

/// The dynamic serial specification matching [`QueueAdt`].
pub fn spec() -> SharedAdt {
    Arc::new(QueueSpec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::runtime::TxParticipant;
    use hcc_spec::TxnId;
    use std::time::Duration;

    fn h(n: u64) -> Arc<TxnHandle> {
        TxnHandle::new(TxnId(n))
    }
    fn short() -> RuntimeOptions {
        RuntimeOptions::with_timeout(Some(Duration::from_millis(30)))
    }

    #[test]
    fn concurrent_enqueues_dequeue_in_timestamp_order() {
        let q: QueueObject<i64> = QueueObject::hybrid("q");
        let (t1, t2) = (h(1), h(2));
        q.enq(&t1, 10).unwrap();
        q.enq(&t2, 20).unwrap(); // concurrent — the headline behaviour
        q.inner().commit_at(t2.id(), 1);
        q.inner().commit_at(t1.id(), 2);
        let t3 = h(3);
        assert_eq!(q.deq(&t3).unwrap(), 20, "earlier timestamp first");
        assert_eq!(q.deq(&t3).unwrap(), 10);
    }

    #[test]
    fn table_ii_deq_blocks_on_uncommitted_enq_of_other_item() {
        let q: QueueObject<i64> = QueueObject::with("q", Arc::new(QueueTableII), short());
        let t0 = h(1);
        q.enq(&t0, 1).unwrap();
        q.inner().commit_at(t0.id(), 1);
        let (t1, t2) = (h(2), h(3));
        q.enq(&t1, 2).unwrap();
        assert_eq!(q.deq(&t2), Err(ExecError::Timeout));
    }

    #[test]
    fn table_iii_deq_runs_concurrently_with_enq() {
        let q: QueueObject<i64> = QueueObject::with("q", Arc::new(QueueTableIII), short());
        let t0 = h(1);
        q.enq(&t0, 1).unwrap();
        q.inner().commit_at(t0.id(), 1);
        let (t1, t2) = (h(2), h(3));
        q.enq(&t1, 2).unwrap(); // uncommitted enqueue
        assert_eq!(q.deq(&t2).unwrap(), 1, "committed head is consumable");
        // But concurrent enqueues of different items now conflict.
        let t3 = h(4);
        assert_eq!(q.enq(&t3, 3), Err(ExecError::Timeout));
    }

    #[test]
    fn own_enqueues_are_dequeueable() {
        let q: QueueObject<i64> = QueueObject::hybrid("q");
        let t1 = h(1);
        q.enq(&t1, 5).unwrap();
        assert_eq!(q.deq(&t1).unwrap(), 5);
    }

    #[test]
    fn deq_blocks_until_an_item_commits() {
        let q: QueueObject<i64> = QueueObject::hybrid("q");
        let t1 = h(1);
        let qi = q.inner().clone();
        let t1c = t1.clone();
        let consumer = std::thread::spawn(move || match qi.execute(&t1c, QueueInv::Deq).unwrap() {
            QueueRes::Item(x) => x,
            _ => unreachable!(),
        });
        std::thread::sleep(Duration::from_millis(10));
        let t2 = h(2);
        q.enq(&t2, 99).unwrap();
        q.inner().commit_at(t2.id(), 1);
        assert_eq!(consumer.join().unwrap(), 99);
    }

    #[test]
    fn aborted_enqueue_leaves_no_item() {
        let q: QueueObject<i64> = QueueObject::with("q", Arc::new(QueueTableII), short());
        let t1 = h(1);
        q.enq(&t1, 7).unwrap();
        q.inner().abort_txn(t1.id());
        assert_eq!(q.committed_len(), 0);
        let t2 = h(2);
        assert_eq!(q.deq(&t2), Err(ExecError::Timeout));
    }

    #[test]
    fn fifo_order_within_one_transaction() {
        let q: QueueObject<i64> = QueueObject::hybrid("q");
        let t1 = h(1);
        for i in 1..=4 {
            q.enq(&t1, i).unwrap();
        }
        q.inner().commit_at(t1.id(), 1);
        let t2 = h(2);
        for i in 1..=4 {
            assert_eq!(q.deq(&t2).unwrap(), i);
        }
    }

    #[test]
    fn string_items_work() {
        let q: QueueObject<String> = QueueObject::hybrid("q");
        let t1 = h(1);
        q.enq(&t1, "hello".to_string()).unwrap();
        q.inner().commit_at(t1.id(), 1);
        let t2 = h(2);
        assert_eq!(q.deq(&t2).unwrap(), "hello");
    }

    #[test]
    fn spec_op_mapping() {
        let op = to_spec_op(&QueueInv::Enq(3i64), &QueueRes::Ok);
        assert_eq!(format!("{op:?}"), "[enq(3), Ok]");
        let op = to_spec_op(&QueueInv::Deq, &QueueRes::Item(3i64));
        assert_eq!(format!("{op:?}"), "[deq(), 3]");
    }
}
