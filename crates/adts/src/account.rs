//! The Account type (paper appendix, Tables V and VI).
//!
//! A transaction's intent is the affine transformation `b ↦ mul·b + add`
//! summarizing its credits, interest postings and debits — exactly the
//! appendix's `struct intent { float mul; float add; }`, but over exact
//! rationals. The hybrid conflict relation is the symmetric closure of
//! Table V:
//!
//! ```text
//! locks.define(CREDIT_LOCK,    OVERDRAFT_LOCK);
//! locks.define(POST_LOCK,      OVERDRAFT_LOCK);
//! locks.define(DEBIT_LOCK,     DEBIT_LOCK);
//! ```

use hcc_core::runtime::{
    ExecError, LockSpec, RedoDecodeError, RuntimeAdt, RuntimeOptions, TxObject, TxnHandle,
};
use hcc_spec::adt::SharedAdt;
use hcc_spec::specs::AccountSpec;
use hcc_spec::{Operation, Rational, Value};
use serde_json::json;
use std::sync::Arc;

/// Account invocations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccountInv {
    /// Increase the balance.
    Credit(Rational),
    /// Post interest: multiply the balance by `1 + pct/100`.
    Post(Rational),
    /// Attempt to decrease the balance.
    Debit(Rational),
}

/// Account responses. Debits are response-classified: a successful debit
/// takes a `DEBIT_LOCK`, an overdraft takes an `OVERDRAFT_LOCK`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccountRes {
    /// Credit/Post acknowledgement.
    Ok,
    /// Debit succeeded.
    Debited,
    /// Debit refused: insufficient funds; balance unchanged.
    Overdraft,
}

/// A transaction's intention: the affine map `b ↦ mul·b + add`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Affine {
    /// Multiplicative component.
    pub mul: Rational,
    /// Additive component.
    pub add: Rational,
}

impl Default for Affine {
    fn default() -> Self {
        Affine { mul: Rational::ONE, add: Rational::ZERO }
    }
}

impl Affine {
    /// Apply the transformation to a balance.
    pub fn apply(&self, b: Rational) -> Rational {
        b * self.mul + self.add
    }

    fn then_credit(&self, amt: Rational) -> Affine {
        Affine { mul: self.mul, add: self.add + amt }
    }

    fn then_debit(&self, amt: Rational) -> Affine {
        Affine { mul: self.mul, add: self.add - amt }
    }

    fn then_post(&self, pct: Rational) -> Affine {
        let m = Rational::percent_multiplier(pct);
        Affine { mul: self.mul * m, add: self.add * m }
    }
}

/// The Account runtime type.
pub struct AccountAdt;

impl RuntimeAdt for AccountAdt {
    type Version = Rational;
    type Intent = Affine;
    type Inv = AccountInv;
    type Res = AccountRes;

    fn initial(&self) -> Rational {
        Rational::ZERO
    }

    fn candidates(
        &self,
        version: &Rational,
        committed: &[&Affine],
        own: &Affine,
        inv: &AccountInv,
    ) -> Vec<(AccountRes, Affine)> {
        match inv {
            AccountInv::Credit(a) => vec![(AccountRes::Ok, own.then_credit(*a))],
            AccountInv::Post(p) => vec![(AccountRes::Ok, own.then_post(*p))],
            AccountInv::Debit(a) => {
                // The appendix's `sufficient()`: fold the view to a balance.
                let mut bal = *version;
                for i in committed {
                    bal = i.apply(bal);
                }
                bal = own.apply(bal);
                if bal >= *a {
                    vec![(AccountRes::Debited, own.then_debit(*a))]
                } else {
                    vec![(AccountRes::Overdraft, own.clone())]
                }
            }
        }
    }

    fn apply(&self, version: &mut Rational, intent: &Affine) {
        *version = intent.apply(*version);
    }

    fn redo(&self, inv: &AccountInv, res: &AccountRes) -> Option<Vec<u8>> {
        let v = match (inv, res) {
            (AccountInv::Credit(a), _) => json!({"op": "credit", "v": (*a)}),
            (AccountInv::Post(p), _) => json!({"op": "post", "v": (*p)}),
            // Overdrafts change no state, but the refusal is part of the
            // history the verifier checks — they replay as refusals.
            (AccountInv::Debit(a), AccountRes::Debited) => {
                json!({"op": "debit", "v": (*a), "ok": true})
            }
            (AccountInv::Debit(a), AccountRes::Overdraft) => {
                json!({"op": "debit", "v": (*a), "ok": false})
            }
            (AccountInv::Debit(_), AccountRes::Ok) => {
                unreachable!("debits respond Debited or Overdraft")
            }
        };
        Some(serde_json::to_vec(&v).expect("JSON values serialize"))
    }

    fn decode_redo(&self, bytes: &[u8]) -> Result<(AccountInv, AccountRes), RedoDecodeError> {
        let (op, v) = crate::decode_op(bytes)?;
        let amt: Rational = crate::decode_field(&v, "v")?;
        match op.as_str() {
            "credit" => Ok((AccountInv::Credit(amt), AccountRes::Ok)),
            "post" => Ok((AccountInv::Post(amt), AccountRes::Ok)),
            "debit" => {
                let ok: bool = crate::decode_field(&v, "ok")?;
                let res = if ok { AccountRes::Debited } else { AccountRes::Overdraft };
                Ok((AccountInv::Debit(amt), res))
            }
            other => Err(RedoDecodeError::new(format!("unknown account op {other:?}"))),
        }
    }

    fn type_name(&self) -> &'static str {
        "Account"
    }
}

/// The hybrid (Table V) conflict relation for accounts.
pub struct AccountHybrid;

impl LockSpec<AccountAdt> for AccountHybrid {
    fn conflicts(&self, a: &(AccountInv, AccountRes), b: &(AccountInv, AccountRes)) -> bool {
        use AccountRes::{Debited, Overdraft};
        let is_overdraft = |o: &(AccountInv, AccountRes)| o.1 == Overdraft;
        let is_debit_ok = |o: &(AccountInv, AccountRes)| o.1 == Debited;
        let is_growth = |o: &(AccountInv, AccountRes)| {
            matches!(o.0, AccountInv::Credit(_) | AccountInv::Post(_))
        };
        (is_overdraft(a) && is_growth(b))
            || (is_overdraft(b) && is_growth(a))
            || (is_debit_ok(a) && is_debit_ok(b))
    }
    fn name(&self) -> &'static str {
        "hybrid"
    }
    fn class_of(&self, op: &(AccountInv, AccountRes)) -> Option<String> {
        // Table V's own row/column names, so the live lock metrics read
        // like the paper.
        Some(
            match (&op.0, &op.1) {
                (AccountInv::Credit(_), _) => "Credit",
                (AccountInv::Post(_), _) => "Post",
                (AccountInv::Debit(_), AccountRes::Debited) => "Debit-Ok",
                (AccountInv::Debit(_), _) => "Debit-Over",
            }
            .to_string(),
        )
    }
}

/// A bank account: `TxObject<AccountAdt>` with ergonomic methods.
pub struct AccountObject {
    obj: Arc<TxObject<AccountAdt>>,
}

impl AccountObject {
    /// An account under the hybrid (Table V) scheme with default options.
    pub fn hybrid(name: impl Into<String>) -> AccountObject {
        Self::with(name, Arc::new(AccountHybrid), RuntimeOptions::default())
    }

    /// An account under an arbitrary scheme and options.
    pub fn with(
        name: impl Into<String>,
        locks: Arc<dyn LockSpec<AccountAdt>>,
        opts: RuntimeOptions,
    ) -> AccountObject {
        AccountObject { obj: TxObject::new(name, AccountAdt, locks, opts) }
    }

    /// The underlying runtime object.
    pub fn inner(&self) -> &Arc<TxObject<AccountAdt>> {
        &self.obj
    }

    /// Credit the account.
    pub fn credit(&self, txn: &Arc<TxnHandle>, amount: Rational) -> Result<(), ExecError> {
        self.obj.execute(txn, AccountInv::Credit(amount)).map(|_| ())
    }

    /// Post interest at `pct` percent.
    pub fn post(&self, txn: &Arc<TxnHandle>, pct: Rational) -> Result<(), ExecError> {
        self.obj.execute(txn, AccountInv::Post(pct)).map(|_| ())
    }

    /// Debit the account; `Ok(true)` on success, `Ok(false)` on overdraft.
    pub fn debit(&self, txn: &Arc<TxnHandle>, amount: Rational) -> Result<bool, ExecError> {
        self.obj.execute(txn, AccountInv::Debit(amount)).map(|r| r == AccountRes::Debited)
    }

    /// The committed balance (no isolation — diagnostics only).
    pub fn committed_balance(&self) -> Rational {
        self.obj.committed_snapshot()
    }

    /// The balance as of commit timestamp `watermark` — the wait-free
    /// snapshot-read accessor (`TxObject::snapshot_read`): no lock
    /// acquisition, no conflict with writers. Refused when compaction
    /// has already folded past `watermark`.
    pub fn balance_at(&self, watermark: u64) -> Result<Rational, hcc_core::runtime::SnapshotStale> {
        self.obj.snapshot_read(watermark)
    }
}

/// Map a runtime operation to the dynamic specification operation, for
/// history verification.
pub fn to_spec_op(inv: &AccountInv, res: &AccountRes) -> Operation {
    match (inv, res) {
        (AccountInv::Credit(a), _) => Operation::new(AccountSpec::credit(*a), Value::Unit),
        (AccountInv::Post(p), _) => Operation::new(AccountSpec::post(*p), Value::Unit),
        (AccountInv::Debit(a), AccountRes::Debited) => {
            Operation::new(AccountSpec::debit(*a), AccountSpec::OK)
        }
        (AccountInv::Debit(a), AccountRes::Overdraft) => {
            Operation::new(AccountSpec::debit(*a), AccountSpec::OVERDRAFT)
        }
        (AccountInv::Debit(_), AccountRes::Ok) => {
            unreachable!("debits respond Debited or Overdraft")
        }
    }
}

/// The dynamic serial specification matching [`AccountAdt`].
pub fn spec() -> SharedAdt {
    Arc::new(AccountSpec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::runtime::TxParticipant;
    use hcc_spec::TxnId;
    use std::time::Duration;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }
    fn h(n: u64) -> Arc<TxnHandle> {
        TxnHandle::new(TxnId(n))
    }

    fn short_timeout() -> RuntimeOptions {
        RuntimeOptions::with_timeout(Some(Duration::from_millis(30)))
    }

    #[test]
    fn debit_respects_balance() {
        let a = AccountObject::hybrid("acct");
        let t1 = h(1);
        a.credit(&t1, r(10)).unwrap();
        assert!(a.debit(&t1, r(7)).unwrap());
        assert!(!a.debit(&t1, r(7)).unwrap(), "only 3 left");
        a.inner().commit_at(t1.id(), 1);
        assert_eq!(a.committed_balance(), r(3));
    }

    #[test]
    fn credits_run_concurrently() {
        let a = AccountObject::hybrid("acct");
        let (t1, t2) = (h(1), h(2));
        a.credit(&t1, r(5)).unwrap();
        a.credit(&t2, r(7)).unwrap(); // no conflict
        a.inner().commit_at(t1.id(), 1);
        a.inner().commit_at(t2.id(), 2);
        assert_eq!(a.committed_balance(), r(12));
    }

    #[test]
    fn credit_concurrent_with_successful_debit() {
        // Table V: Credit does not conflict with Debit-Ok.
        let a = AccountObject::hybrid("acct");
        let t0 = h(1);
        a.credit(&t0, r(10)).unwrap();
        a.inner().commit_at(t0.id(), 1);
        let (t1, t2) = (h(2), h(3));
        assert!(a.debit(&t1, r(4)).unwrap());
        a.credit(&t2, r(100)).unwrap(); // concurrent with the debit
        a.inner().commit_at(t1.id(), 2);
        a.inner().commit_at(t2.id(), 3);
        assert_eq!(a.committed_balance(), r(106));
    }

    #[test]
    fn credit_blocks_on_overdraft() {
        // Table V: Credit conflicts with Debit-Overdraft — a credit could
        // invalidate the overdraft response.
        let a = AccountObject::with("acct", Arc::new(AccountHybrid), short_timeout());
        let (t1, t2) = (h(1), h(2));
        assert!(!a.debit(&t1, r(5)).unwrap(), "overdraft on empty account");
        assert_eq!(a.credit(&t2, r(10)), Err(ExecError::Timeout));
    }

    #[test]
    fn concurrent_debits_conflict() {
        let a = AccountObject::with("acct", Arc::new(AccountHybrid), short_timeout());
        let t0 = h(1);
        a.credit(&t0, r(10)).unwrap();
        a.inner().commit_at(t0.id(), 1);
        let (t1, t2) = (h(2), h(3));
        assert!(a.debit(&t1, r(4)).unwrap());
        assert_eq!(a.debit(&t2, r(4)), Err(ExecError::Timeout));
    }

    #[test]
    fn post_concurrent_with_debit_ok() {
        // Table V admits Post ∥ Debit-Ok — commutativity (Table VI) would
        // refuse it.
        let a = AccountObject::hybrid("acct");
        let t0 = h(1);
        a.credit(&t0, r(100)).unwrap();
        a.inner().commit_at(t0.id(), 1);
        let (t1, t2) = (h(2), h(3));
        assert!(a.debit(&t1, r(10)).unwrap());
        a.post(&t2, r(5)).unwrap();
        // Debit serialized first (ts 2), then post: (100-10)*1.05 = 94.5.
        a.inner().commit_at(t1.id(), 2);
        a.inner().commit_at(t2.id(), 3);
        assert_eq!(a.committed_balance(), Rational::new(189, 2));
    }

    #[test]
    fn intents_fold_in_timestamp_order() {
        let a = AccountObject::hybrid("acct");
        let (t1, t2) = (h(1), h(2));
        a.credit(&t1, r(100)).unwrap();
        a.post(&t2, r(5)).unwrap();
        // Post committed *before* credit: (0 * 1.05) + 100 = 100.
        a.inner().commit_at(t2.id(), 1);
        a.inner().commit_at(t1.id(), 2);
        assert_eq!(a.committed_balance(), r(100));

        let b = AccountObject::hybrid("acct2");
        let (t3, t4) = (h(3), h(4));
        b.credit(&t3, r(100)).unwrap();
        b.post(&t4, r(5)).unwrap();
        // Credit first: 100 * 1.05 = 105.
        b.inner().commit_at(t3.id(), 1);
        b.inner().commit_at(t4.id(), 2);
        assert_eq!(b.committed_balance(), r(105));
    }

    #[test]
    fn affine_composition_matches_replay() {
        let t1 = h(1);
        let a = AccountObject::hybrid("acct");
        a.credit(&t1, r(100)).unwrap();
        a.post(&t1, r(5)).unwrap();
        assert!(a.debit(&t1, r(30)).unwrap());
        a.credit(&t1, r(10)).unwrap();
        a.inner().commit_at(t1.id(), 1);
        // ((0 + 100) * 1.05 - 30) + 10 = 85.
        assert_eq!(a.committed_balance(), r(85));
    }

    #[test]
    fn spec_op_mapping() {
        let op = to_spec_op(&AccountInv::Debit(r(3)), &AccountRes::Overdraft);
        assert_eq!(op.res, AccountSpec::OVERDRAFT);
        let op = to_spec_op(&AccountInv::Credit(r(3)), &AccountRes::Ok);
        assert_eq!(op.res, Value::Unit);
    }
}
