//! A Set — operations report whether they changed anything, giving
//! response-dependent, per-element conflicts (extension type).
//!
//! The hybrid conflict relation is the symmetric closure of the derived
//! invalidated-by relation (verified against the derivation engine in the
//! integration tests): all conflicts are per-element, and "no-op" outcomes
//! conflict only with the operations that could invalidate them.

use hcc_core::runtime::{
    ExecError, LockSpec, RedoDecodeError, RuntimeAdt, RuntimeOptions, TxObject, TxnHandle,
};
use hcc_spec::adt::SharedAdt;
use hcc_spec::specs::SetSpec;
use hcc_spec::{Operation, Value};
use serde::{Deserialize, Serialize};
use serde_json::json;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::sync::Arc;

/// Bound alias for set elements. Serde bounds make the type self-logging
/// (redo payloads) and checkpointable (snapshots).
pub trait Elem: Clone + Ord + Debug + Send + Sync + Serialize + Deserialize + 'static {}
impl<T: Clone + Ord + Debug + Send + Sync + Serialize + Deserialize + 'static> Elem for T {}

/// Set invocations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetInv<T> {
    /// Insert; responds whether the element was new.
    Add(T),
    /// Delete; responds whether the element was present.
    Remove(T),
    /// Membership test.
    Contains(T),
}

/// Intent steps (replayed at fold time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetOp<T> {
    /// Insert `T`.
    Add(T),
    /// Delete `T`.
    Remove(T),
}

/// The Set runtime type.
pub struct SetAdt<T>(PhantomData<fn() -> T>);

impl<T> Default for SetAdt<T> {
    fn default() -> Self {
        SetAdt(PhantomData)
    }
}

impl<T: Elem> RuntimeAdt for SetAdt<T> {
    type Version = BTreeSet<T>;
    type Intent = Vec<SetOp<T>>;
    type Inv = SetInv<T>;
    type Res = bool;

    fn initial(&self) -> BTreeSet<T> {
        BTreeSet::new()
    }

    fn candidates(
        &self,
        version: &BTreeSet<T>,
        committed: &[&Vec<SetOp<T>>],
        own: &Vec<SetOp<T>>,
        inv: &SetInv<T>,
    ) -> Vec<(bool, Vec<SetOp<T>>)> {
        // Membership of the single element in question, folded over the
        // view (cheaper than materializing the whole set).
        let elem = match inv {
            SetInv::Add(x) | SetInv::Remove(x) | SetInv::Contains(x) => x,
        };
        let mut present = version.contains(elem);
        for intent in committed.iter().copied().chain(std::iter::once(own)) {
            for op in intent.iter() {
                match op {
                    SetOp::Add(y) if y == elem => present = true,
                    SetOp::Remove(y) if y == elem => present = false,
                    _ => {}
                }
            }
        }
        match inv {
            SetInv::Add(x) => {
                if present {
                    vec![(false, own.clone())]
                } else {
                    let mut next = own.clone();
                    next.push(SetOp::Add(x.clone()));
                    vec![(true, next)]
                }
            }
            SetInv::Remove(x) => {
                if present {
                    let mut next = own.clone();
                    next.push(SetOp::Remove(x.clone()));
                    vec![(true, next)]
                } else {
                    vec![(false, own.clone())]
                }
            }
            SetInv::Contains(_) => vec![(present, own.clone())],
        }
    }

    fn apply(&self, version: &mut BTreeSet<T>, intent: &Vec<SetOp<T>>) {
        for op in intent {
            match op {
                SetOp::Add(x) => {
                    version.insert(x.clone());
                }
                SetOp::Remove(x) => {
                    version.remove(x);
                }
            }
        }
    }

    fn redo(&self, inv: &SetInv<T>, res: &bool) -> Option<Vec<u8>> {
        let v = match inv {
            // No-op outcomes (`ok: false` adds of present elements, …)
            // change no state but carry a response the verifier checks, so
            // they are logged and replayed like refused debits.
            SetInv::Add(x) => json!({"op": "add", "v": (x), "ok": (*res)}),
            SetInv::Remove(x) => json!({"op": "rem", "v": (x), "ok": (*res)}),
            SetInv::Contains(_) => return None, // pure read
        };
        Some(serde_json::to_vec(&v).expect("JSON values serialize"))
    }

    fn decode_redo(&self, bytes: &[u8]) -> Result<(SetInv<T>, bool), RedoDecodeError> {
        let (op, v) = crate::decode_op(bytes)?;
        let elem: T = crate::decode_field(&v, "v")?;
        let ok: bool = crate::decode_field(&v, "ok")?;
        match op.as_str() {
            "add" => Ok((SetInv::Add(elem), ok)),
            "rem" => Ok((SetInv::Remove(elem), ok)),
            other => Err(RedoDecodeError::new(format!("unknown set op {other:?}"))),
        }
    }

    fn type_name(&self) -> &'static str {
        "Set"
    }
}

/// Hybrid conflicts (symmetric closure of the derived invalidated-by
/// relation): per element `x`,
///
/// * `Add(x)→true` ↔ `Add(x)→true`, `Remove(x)→false`, `Contains(x)→false`
/// * `Remove(x)→true` ↔ `Remove(x)→true`, `Add(x)→false`, `Contains(x)→true`
pub struct SetHybrid;

impl<T: Elem> LockSpec<SetAdt<T>> for SetHybrid {
    fn conflicts(&self, a: &(SetInv<T>, bool), b: &(SetInv<T>, bool)) -> bool {
        let elem = |o: &(SetInv<T>, bool)| match &o.0 {
            SetInv::Add(x) | SetInv::Remove(x) | SetInv::Contains(x) => x.clone(),
        };
        if elem(a) != elem(b) {
            return false;
        }
        let dep = |q: &(SetInv<T>, bool), p: &(SetInv<T>, bool)| -> bool {
            match (&q.0, q.1, &p.0, p.1) {
                // Mutating add invalidates: add→true, remove→false,
                // contains→false.
                (SetInv::Add(_), true, SetInv::Add(_), true) => true,
                (SetInv::Remove(_), false, SetInv::Add(_), true) => true,
                (SetInv::Contains(_), false, SetInv::Add(_), true) => true,
                // Mutating remove invalidates: add→false, remove→true,
                // contains→true.
                (SetInv::Add(_), false, SetInv::Remove(_), true) => true,
                (SetInv::Remove(_), true, SetInv::Remove(_), true) => true,
                (SetInv::Contains(_), true, SetInv::Remove(_), true) => true,
                _ => false,
            }
        };
        dep(a, b) || dep(b, a)
    }
    fn name(&self) -> &'static str {
        "hybrid"
    }
}

/// A set object with ergonomic methods.
pub struct SetObject<T: Elem> {
    obj: Arc<TxObject<SetAdt<T>>>,
}

impl<T: Elem> SetObject<T> {
    /// A set under the hybrid scheme.
    pub fn hybrid(name: impl Into<String>) -> SetObject<T> {
        Self::with(name, Arc::new(SetHybrid), RuntimeOptions::default())
    }

    /// A set under an arbitrary scheme and options.
    pub fn with(
        name: impl Into<String>,
        locks: Arc<dyn LockSpec<SetAdt<T>>>,
        opts: RuntimeOptions,
    ) -> SetObject<T> {
        SetObject { obj: TxObject::new(name, SetAdt::default(), locks, opts) }
    }

    /// The underlying runtime object.
    pub fn inner(&self) -> &Arc<TxObject<SetAdt<T>>> {
        &self.obj
    }

    /// Insert; `Ok(true)` iff the element was new.
    pub fn add(&self, txn: &Arc<TxnHandle>, x: T) -> Result<bool, ExecError> {
        self.obj.execute(txn, SetInv::Add(x))
    }

    /// Delete; `Ok(true)` iff the element was present.
    pub fn remove(&self, txn: &Arc<TxnHandle>, x: T) -> Result<bool, ExecError> {
        self.obj.execute(txn, SetInv::Remove(x))
    }

    /// Membership test.
    pub fn contains(&self, txn: &Arc<TxnHandle>, x: T) -> Result<bool, ExecError> {
        self.obj.execute(txn, SetInv::Contains(x))
    }

    /// Committed cardinality (diagnostics).
    pub fn committed_len(&self) -> usize {
        self.obj.committed_snapshot().len()
    }

    /// The members as of commit timestamp `watermark` — the wait-free
    /// snapshot-read accessor: no lock acquisition, no conflict with
    /// writers. Refused when compaction has folded past `watermark`.
    pub fn members_at(
        &self,
        watermark: u64,
    ) -> Result<BTreeSet<T>, hcc_core::runtime::SnapshotStale> {
        self.obj.snapshot_read(watermark)
    }
}

/// The Set restated through the declarative [`AdtDef`] surface — the
/// **ported twin** of [`SetAdt`] + [`SetHybrid`]: the per-element,
/// response-dependent conflict relation is *derived* from
/// [`SetSpec`](hcc_spec::specs::SetSpec) at first construction (cached
/// per type) instead of hand-encoded, and snapshots/replay/`Db` handles
/// are generic. The wire format reuses [`SetAdt`]'s encoders, so
/// `SpecObject<SetDef<T>>` writes byte-identical WAL traces and
/// checkpoint images — proven by the differential test in
/// `tests/defined_adts.rs`.
pub struct SetDef<T>(PhantomData<fn() -> T>);

impl<T> Default for SetDef<T> {
    fn default() -> Self {
        SetDef(PhantomData)
    }
}

impl<T: Elem + Into<Value>> crate::define::AdtDef for SetDef<T> {
    type State = BTreeSet<T>;
    type Op = SetInv<T>;
    type Res = bool;

    fn type_name(&self) -> &'static str {
        "Set"
    }

    fn initial(&self) -> BTreeSet<T> {
        BTreeSet::new()
    }

    fn respond(&self, state: &BTreeSet<T>, op: &SetInv<T>) -> Vec<bool> {
        let elem = match op {
            SetInv::Add(x) | SetInv::Remove(x) | SetInv::Contains(x) => x,
        };
        let present = state.contains(elem);
        match op {
            SetInv::Add(_) => vec![!present],
            SetInv::Remove(_) | SetInv::Contains(_) => vec![present],
        }
    }

    fn apply(&self, state: &mut BTreeSet<T>, op: &SetInv<T>, res: &bool) {
        match (op, res) {
            (SetInv::Add(x), true) => {
                state.insert(x.clone());
            }
            (SetInv::Remove(x), true) => {
                state.remove(x);
            }
            _ => {}
        }
    }

    fn is_read(&self, op: &SetInv<T>, _res: &bool) -> bool {
        // No-op adds/removes are *not* reads: their refusals carry
        // verifier-checked responses and are logged, exactly as the
        // hand-written twin logs them.
        matches!(op, SetInv::Contains(_))
    }

    fn spec_op(&self, op: &SetInv<T>, res: &bool) -> Operation {
        to_spec_op(op, res)
    }

    fn conflict_spec(&self) -> crate::define::ConflictSpec {
        crate::define::ConflictSpec::Derived(crate::define::AdtConfig::set().into())
    }

    fn encode_op(&self, op: &SetInv<T>, res: &bool) -> Vec<u8> {
        SetAdt::<T>::default().redo(op, res).expect("set updates have redo payloads")
    }

    fn decode_op(&self, bytes: &[u8]) -> Result<(SetInv<T>, bool), RedoDecodeError> {
        SetAdt::<T>::default().decode_redo(bytes)
    }

    fn encode_state(&self, state: &BTreeSet<T>) -> Vec<u8> {
        let items: Vec<T> = state.iter().cloned().collect();
        serde_json::to_vec(&items).expect("set elements serialize")
    }

    fn decode_state(&self, bytes: &[u8]) -> Result<BTreeSet<T>, RedoDecodeError> {
        let items: Vec<T> =
            serde_json::from_slice(bytes).map_err(|e| RedoDecodeError::new(e.to_string()))?;
        Ok(items.into_iter().collect())
    }
}

/// Map a runtime operation onto the dynamic specification operation.
pub fn to_spec_op<T: Elem + Into<Value>>(inv: &SetInv<T>, res: &bool) -> Operation {
    match inv {
        SetInv::Add(x) => Operation::new(SetSpec::add(x.clone()), *res),
        SetInv::Remove(x) => Operation::new(SetSpec::remove(x.clone()), *res),
        SetInv::Contains(x) => Operation::new(SetSpec::contains(x.clone()), *res),
    }
}

/// The dynamic serial specification matching [`SetAdt`].
pub fn spec() -> SharedAdt {
    Arc::new(SetSpec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::runtime::TxParticipant;
    use hcc_spec::TxnId;
    use std::time::Duration;

    fn h(n: u64) -> Arc<TxnHandle> {
        TxnHandle::new(TxnId(n))
    }
    fn short<T: Elem>() -> SetObject<T> {
        SetObject::with(
            "s",
            Arc::new(SetHybrid),
            RuntimeOptions::with_timeout(Some(Duration::from_millis(30))),
        )
    }

    #[test]
    fn operations_on_distinct_elements_never_conflict() {
        let s: SetObject<i64> = SetObject::hybrid("s");
        let (t1, t2, t3) = (h(1), h(2), h(3));
        assert!(s.add(&t1, 1).unwrap());
        assert!(s.add(&t2, 2).unwrap());
        assert!(!s.remove(&t3, 3).unwrap());
        assert_eq!(s.inner().stats().conflicts, 0);
    }

    #[test]
    fn concurrent_adds_of_same_element_conflict() {
        let s: SetObject<i64> = short();
        let (t1, t2) = (h(1), h(2));
        assert!(s.add(&t1, 5).unwrap());
        assert_eq!(s.add(&t2, 5), Err(ExecError::Timeout));
    }

    #[test]
    fn contains_false_conflicts_with_pending_add() {
        let s: SetObject<i64> = short();
        let (t1, t2) = (h(1), h(2));
        assert!(s.add(&t1, 5).unwrap());
        // t2's contains(5) would answer false (t1 uncommitted) but that
        // answer is invalidated by t1's add.
        assert_eq!(s.contains(&t2, 5), Err(ExecError::Timeout));
    }

    #[test]
    fn contains_true_coexists_with_pending_add_dup() {
        let s: SetObject<i64> = SetObject::hybrid("s");
        let t0 = h(1);
        assert!(s.add(&t0, 5).unwrap());
        s.inner().commit_at(t0.id(), 1);
        let (t1, t2) = (h(2), h(3));
        assert!(!s.add(&t1, 5).unwrap(), "duplicate add is a no-op");
        assert!(s.contains(&t2, 5).unwrap(), "no conflict with a no-op add");
    }

    #[test]
    fn remove_conflicts_with_contains_true() {
        let s: SetObject<i64> = short();
        let t0 = h(1);
        assert!(s.add(&t0, 5).unwrap());
        s.inner().commit_at(t0.id(), 1);
        let (t1, t2) = (h(2), h(3));
        assert!(s.remove(&t1, 5).unwrap());
        assert_eq!(s.contains(&t2, 5), Err(ExecError::Timeout));
    }

    #[test]
    fn own_ops_fold_correctly() {
        let s: SetObject<i64> = SetObject::hybrid("s");
        let t1 = h(1);
        assert!(s.add(&t1, 1).unwrap());
        assert!(s.remove(&t1, 1).unwrap());
        assert!(!s.contains(&t1, 1).unwrap());
        assert!(s.add(&t1, 1).unwrap());
        s.inner().commit_at(t1.id(), 1);
        assert_eq!(s.committed_len(), 1);
    }

    #[test]
    fn abort_rolls_back_membership() {
        let s: SetObject<i64> = SetObject::hybrid("s");
        let t1 = h(1);
        assert!(s.add(&t1, 9).unwrap());
        s.inner().abort_txn(t1.id());
        let t2 = h(2);
        assert!(!s.contains(&t2, 9).unwrap());
    }
}
