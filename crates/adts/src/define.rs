//! The durable half of the declarative ADT surface: [`SpecObject`] wraps
//! any [`AdtDef`] as a named transactional object with **generic**
//! snapshot, recovery-replay, and typed-handle support — plus the
//! [`define_adt!`](crate::define_adt) macro, which writes the serde
//! codec half of an [`AdtDef`] for serde-able state/op/response types.
//!
//! A user states the type once:
//!
//! ```
//! use hcc_adts::define::{AdtDef, ConflictSpec, DeriveSpec, OpClass, Operation, SpecObject};
//! use hcc_adts::define_adt;
//! use hcc_spec::adt::{Adt, SpecState};
//! use hcc_spec::{Inv, Value};
//! use serde::{Deserialize, Serialize};
//! use std::sync::Arc;
//!
//! // Serial specification (dynamic): a grow-only tally.
//! struct TallySpec;
//! impl Adt for TallySpec {
//!     fn initial(&self) -> SpecState { SpecState(Value::Int(0)) }
//!     fn step(&self, s: &SpecState, inv: &Inv) -> Vec<(Value, SpecState)> {
//!         let n = s.0.as_int();
//!         match inv.op {
//!             "bump" => vec![(Value::Unit, SpecState(Value::Int(n + 1)))],
//!             "total" => vec![(Value::Int(n), s.clone())],
//!             _ => vec![],
//!         }
//!     }
//!     fn type_name(&self) -> &'static str { "Tally" }
//! }
//!
//! #[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
//! pub enum TallyOp { Bump, Total }
//! #[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
//! pub enum TallyRes { Ok, Total(i64) }
//!
//! define_adt! {
//!     /// A grow-only tally: blind bumps commute, totals are reads.
//!     pub struct TallyDef {
//!         name: "Tally",
//!         state: i64,
//!         op: TallyOp,
//!         res: TallyRes,
//!         initial: || 0,
//!         respond: |s: &i64, op: &TallyOp| match op {
//!             TallyOp::Bump => vec![TallyRes::Ok],
//!             TallyOp::Total => vec![TallyRes::Total(*s)],
//!         },
//!         apply: |s: &mut i64, op: &TallyOp, _res: &TallyRes| {
//!             if matches!(op, TallyOp::Bump) { *s += 1; }
//!         },
//!         read: |op: &TallyOp, _res: &TallyRes| matches!(op, TallyOp::Total),
//!         spec_op: |op: &TallyOp, res: &TallyRes| match (op, res) {
//!             (TallyOp::Bump, _) => Operation::new(Inv::nullary("bump"), Value::Unit),
//!             (TallyOp::Total, TallyRes::Total(v)) => Operation::new(Inv::nullary("total"), *v),
//!             _ => unreachable!(),
//!         },
//!         conflicts: || ConflictSpec::Derived(DeriveSpec {
//!             adt: Arc::new(TallySpec),
//!             alphabet: {
//!                 let mut a = vec![Operation::new(Inv::nullary("bump"), Value::Unit)];
//!                 a.extend((0..3).map(|v| Operation::new(Inv::nullary("total"), v)));
//!                 a
//!             },
//!             classify: |op| OpClass::new(if op.inv.op == "bump" { "Bump" } else { "Total" }),
//!             bounds: Default::default(),
//!         }),
//!     }
//! }
//!
//! let tally = SpecObject::<TallyDef>::new("t");
//! let txn = hcc_core::runtime::TxnHandle::new(hcc_spec::TxnId(1));
//! assert_eq!(tally.execute(&txn, TallyOp::Bump).unwrap(), TallyRes::Ok);
//! ```
//!
//! and `db.object::<SpecObject<TallyDef>>("t")` then hands out a durable,
//! recovering, self-logging handle with no further impls.

use hcc_core::runtime::{ExecError, LockSpec, RuntimeOptions, TxObject, TxnHandle};
use hcc_storage::{DurableObject, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

pub use hcc_core::runtime::{
    AdtDef, ConflictSpec, ConflictTable, RedoDecodeError, SpecAdt, SpecLock,
};
pub use hcc_relations::derive::{
    check_bounds_invariance, derivations_performed, BoundsDrift, DeriveSpec,
};
pub use hcc_relations::invalidated_by::Bounds;
pub use hcc_relations::relation::{Cond, OpClass};
pub use hcc_relations::tables::AdtConfig;
pub use hcc_spec::Operation;

/// A named transactional object running a declaratively defined type:
/// the generic counterpart of the hand-written wrappers
/// (`AccountObject`, `SetObject`, ...), with [`Snapshot`] (fuzzy
/// checkpoints included) and [`DurableObject`] (recovery replay)
/// supplied once for every [`AdtDef`].
pub struct SpecObject<D: AdtDef> {
    obj: Arc<TxObject<SpecAdt<D>>>,
}

impl<D: AdtDef> SpecObject<D> {
    /// An object under the type's canonical conflict source
    /// ([`AdtDef::conflict_spec`]) and default runtime options.
    pub fn new(name: impl Into<String>) -> SpecObject<D> {
        Self::with_options(name, RuntimeOptions::default())
    }

    /// Canonical conflict source, caller-supplied runtime options (what
    /// `Db::object` constructs handles with).
    pub fn with_options(name: impl Into<String>, opts: RuntimeOptions) -> SpecObject<D> {
        Self::with(name, SpecLock::<D>::from_def(), opts)
    }

    /// The raw escape hatch: an arbitrary lock relation over the same
    /// definition — a baseline scheme, a hand-tuned `LockSpec`.
    pub fn with(
        name: impl Into<String>,
        locks: Arc<dyn LockSpec<SpecAdt<D>>>,
        opts: RuntimeOptions,
    ) -> SpecObject<D> {
        SpecObject { obj: TxObject::new(name, SpecAdt::default(), locks, opts) }
    }

    /// The underlying runtime object.
    pub fn inner(&self) -> &Arc<TxObject<SpecAdt<D>>> {
        &self.obj
    }

    /// The definition instance (codec + semantics).
    pub fn def(&self) -> &D {
        self.obj.adt().def()
    }

    /// Execute one operation with blocking, under `txn`.
    pub fn execute(&self, txn: &Arc<TxnHandle>, op: D::Op) -> Result<D::Res, ExecError> {
        self.obj.execute(txn, op)
    }

    /// The committed state (diagnostics; no isolation).
    pub fn committed_state(&self) -> D::State {
        self.obj.committed_snapshot()
    }

    /// The state as of commit timestamp `watermark` — the wait-free
    /// snapshot-read accessor: no lock acquisition, no conflict with
    /// writers. Refused when compaction has folded past `watermark`.
    pub fn state_at(&self, watermark: u64) -> Result<D::State, hcc_core::runtime::SnapshotStale> {
        self.obj.snapshot_read(watermark)
    }
}

impl<D: AdtDef> Snapshot for SpecObject<D> {
    fn snapshot(&self) -> Vec<u8> {
        self.snapshot_at(u64::MAX)
    }

    fn snapshot_at(&self, watermark: u64) -> Vec<u8> {
        self.def().encode_state(&self.obj.committed_snapshot_at(watermark))
    }

    fn pin_horizon(&self, watermark: u64) {
        self.obj.pin_horizon(watermark)
    }

    fn unpin_horizon(&self) {
        self.obj.unpin_horizon()
    }

    fn restore(&self, bytes: &[u8], ts: u64) -> Result<(), SnapshotError> {
        let state =
            self.def().decode_state(bytes).map_err(|e| SnapshotError::new(e.to_string()))?;
        // A non-fresh instance (a used object handed to `Db::attach`)
        // refuses as a failed materialization — the name gets poisoned
        // upstream — instead of crashing.
        self.obj.install_version(state, ts).map_err(|e| SnapshotError::new(e.to_string()))
    }
}

impl<D: AdtDef> DurableObject for SpecObject<D> {
    fn object_name(&self) -> &str {
        self.obj.name()
    }

    fn replay_op(
        &self,
        txn: &Arc<TxnHandle>,
        op: &[u8],
    ) -> Result<(), hcc_core::runtime::ReplayError> {
        self.obj.replay_redo(txn, op)
    }
}

// ---- serde-JSON codec helpers (the macro's generated bodies) -----------

/// Encode an executed operation as the compact JSON pair `[op, res]`.
pub fn encode_json_op<O: Serialize, R: Serialize>(op: &O, res: &R) -> Vec<u8> {
    serde_json::to_vec(&(op, res)).expect("serde-able ops serialize")
}

/// Decode a payload produced by [`encode_json_op`].
pub fn decode_json_op<O: Deserialize, R: Deserialize>(
    bytes: &[u8],
) -> Result<(O, R), RedoDecodeError> {
    serde_json::from_slice(bytes).map_err(|e| RedoDecodeError::new(e.to_string()))
}

/// Encode a state as compact JSON.
pub fn encode_json_state<S: Serialize>(state: &S) -> Vec<u8> {
    serde_json::to_vec(state).expect("serde-able states serialize")
}

/// Decode a payload produced by [`encode_json_state`].
pub fn decode_json_state<S: Deserialize>(bytes: &[u8]) -> Result<S, RedoDecodeError> {
    serde_json::from_slice(bytes).map_err(|e| RedoDecodeError::new(e.to_string()))
}

/// Implement [`AdtDef`] from a declarative block: the user states name,
/// types, and semantics; the macro writes the `Default` carrier type and
/// the serde-JSON codec (`[op, res]` pairs for the WAL, plain JSON for
/// checkpoint snapshots). Types needing a custom wire format — or whose
/// op/state types aren't serde-able — implement [`AdtDef`] by hand
/// instead; the ported built-ins (`CounterDef`, `SetDef`) do exactly
/// that to stay byte-compatible with their hand-written twins' logs.
///
/// See the [module docs](crate::define) for a complete example.
#[macro_export]
macro_rules! define_adt {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            name: $tn:literal,
            state: $state:ty,
            op: $op:ty,
            res: $res:ty,
            initial: $initial:expr,
            respond: $respond:expr,
            apply: $apply:expr,
            read: $read:expr,
            spec_op: $spec_op:expr,
            conflicts: $conflicts:expr $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Default)]
        $vis struct $name;

        impl $crate::define::AdtDef for $name {
            type State = $state;
            type Op = $op;
            type Res = $res;

            fn type_name(&self) -> &'static str {
                $tn
            }

            fn initial(&self) -> Self::State {
                ($initial)()
            }

            fn respond(&self, state: &Self::State, op: &Self::Op) -> ::std::vec::Vec<Self::Res> {
                ($respond)(state, op)
            }

            fn apply(&self, state: &mut Self::State, op: &Self::Op, res: &Self::Res) {
                ($apply)(state, op, res)
            }

            fn is_read(&self, op: &Self::Op, res: &Self::Res) -> bool {
                ($read)(op, res)
            }

            fn spec_op(&self, op: &Self::Op, res: &Self::Res) -> $crate::define::Operation {
                ($spec_op)(op, res)
            }

            fn conflict_spec(&self) -> $crate::define::ConflictSpec {
                ($conflicts)()
            }

            fn encode_op(&self, op: &Self::Op, res: &Self::Res) -> ::std::vec::Vec<u8> {
                $crate::define::encode_json_op(op, res)
            }

            fn decode_op(
                &self,
                bytes: &[u8],
            ) -> ::std::result::Result<(Self::Op, Self::Res), $crate::define::RedoDecodeError> {
                $crate::define::decode_json_op(bytes)
            }

            fn encode_state(&self, state: &Self::State) -> ::std::vec::Vec<u8> {
                $crate::define::encode_json_state(state)
            }

            fn decode_state(
                &self,
                bytes: &[u8],
            ) -> ::std::result::Result<Self::State, $crate::define::RedoDecodeError> {
                $crate::define::decode_json_state(bytes)
            }
        }
    };
}
