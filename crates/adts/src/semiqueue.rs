//! The Semiqueue (Table IV): a multiset with nondeterministic removal.
//!
//! `Rem` may return *any* present item, so the runtime offers every
//! distinct committed-or-own item as a candidate and grants the first whose
//! lock is free: two removers simply take different items instead of
//! conflicting. Only removers that would take the *same* item conflict —
//! strictly more concurrency than the FIFO queue, which is the paper's
//! point about nondeterminism.

use hcc_core::runtime::{
    ExecError, LockSpec, RedoDecodeError, RuntimeAdt, RuntimeOptions, TxObject, TxnHandle,
};
use hcc_spec::adt::SharedAdt;
use hcc_spec::specs::SemiqueueSpec;
use hcc_spec::{Operation, Value};
use serde::{Deserialize, Serialize};
use serde_json::json;
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::sync::Arc;

/// Bound alias for semiqueue items (ordered so candidate enumeration is
/// deterministic). Serde bounds make the type self-logging (redo
/// payloads) and checkpointable (snapshots).
pub trait Item: Clone + Ord + Debug + Send + Sync + Serialize + Deserialize + 'static {}
impl<T: Clone + Ord + Debug + Send + Sync + Serialize + Deserialize + 'static> Item for T {}

/// Semiqueue invocations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SqInv<T> {
    /// Insert an item.
    Ins(T),
    /// Remove some item (partial: blocks when empty).
    Rem,
}

/// Semiqueue responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SqRes<T> {
    /// Insert acknowledgement.
    Ok,
    /// The removed item.
    Item(T),
}

/// Intent steps, replayed at fold time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SqOp<T> {
    /// Insert `T`.
    Ins(T),
    /// Remove one copy of `T` (the concrete choice is recorded).
    Rem(T),
}

/// The Semiqueue runtime type. The version is a multiset.
pub struct SemiqueueAdt<T>(PhantomData<fn() -> T>);

impl<T> Default for SemiqueueAdt<T> {
    fn default() -> Self {
        SemiqueueAdt(PhantomData)
    }
}

/// The Semiqueue's committed version: item → multiplicity.
pub type Multiset<T> = BTreeMap<T, usize>;

fn ms_insert<T: Ord>(ms: &mut Multiset<T>, x: T) {
    *ms.entry(x).or_insert(0) += 1;
}

fn ms_remove<T: Ord>(ms: &mut Multiset<T>, x: &T) -> bool {
    match ms.get_mut(x) {
        Some(n) if *n > 1 => {
            *n -= 1;
            true
        }
        Some(_) => {
            ms.remove(x);
            true
        }
        None => false,
    }
}

impl<T: Item> RuntimeAdt for SemiqueueAdt<T> {
    type Version = Multiset<T>;
    type Intent = Vec<SqOp<T>>;
    type Inv = SqInv<T>;
    type Res = SqRes<T>;

    fn initial(&self) -> Multiset<T> {
        Multiset::new()
    }

    fn candidates(
        &self,
        version: &Multiset<T>,
        committed: &[&Vec<SqOp<T>>],
        own: &Vec<SqOp<T>>,
        inv: &SqInv<T>,
    ) -> Vec<(SqRes<T>, Vec<SqOp<T>>)> {
        match inv {
            SqInv::Ins(x) => {
                let mut next = own.clone();
                next.push(SqOp::Ins(x.clone()));
                vec![(SqRes::Ok, next)]
            }
            SqInv::Rem => {
                let mut view = version.clone();
                for intent in committed {
                    replay(&mut view, intent);
                }
                replay(&mut view, own);
                view.keys()
                    .cloned()
                    .map(|x| {
                        let mut next = own.clone();
                        next.push(SqOp::Rem(x.clone()));
                        (SqRes::Item(x), next)
                    })
                    .collect()
            }
        }
    }

    fn apply(&self, version: &mut Multiset<T>, intent: &Vec<SqOp<T>>) {
        replay(version, intent);
    }

    fn redo(&self, inv: &SqInv<T>, res: &SqRes<T>) -> Option<Vec<u8>> {
        let v = match (inv, res) {
            (SqInv::Ins(x), _) => json!({"op": "ins", "v": (x)}),
            // `rem` is nondeterministic; logging the removed item pins the
            // replay to the original choice.
            (SqInv::Rem, SqRes::Item(x)) => json!({"op": "rem", "v": (x)}),
            (SqInv::Rem, SqRes::Ok) => unreachable!("rem returns an item"),
        };
        Some(serde_json::to_vec(&v).expect("JSON values serialize"))
    }

    fn decode_redo(&self, bytes: &[u8]) -> Result<(SqInv<T>, SqRes<T>), RedoDecodeError> {
        let (op, v) = crate::decode_op(bytes)?;
        let item: T = crate::decode_field(&v, "v")?;
        match op.as_str() {
            "ins" => Ok((SqInv::Ins(item), SqRes::Ok)),
            "rem" => Ok((SqInv::Rem, SqRes::Item(item))),
            other => Err(RedoDecodeError::new(format!("unknown semiqueue op {other:?}"))),
        }
    }

    fn type_name(&self) -> &'static str {
        "Semiqueue"
    }
}

fn replay<T: Ord + Clone>(ms: &mut Multiset<T>, ops: &[SqOp<T>]) {
    for op in ops {
        match op {
            SqOp::Ins(x) => ms_insert(ms, x.clone()),
            SqOp::Rem(x) => {
                let removed = ms_remove(ms, x);
                debug_assert!(removed, "rem of an item the view did not contain");
            }
        }
    }
}

/// Table IV conflicts: `Rem→v` ↔ `Rem→v`; nothing else.
pub struct SemiqueueHybrid;

impl<T: Item> LockSpec<SemiqueueAdt<T>> for SemiqueueHybrid {
    fn conflicts(&self, a: &(SqInv<T>, SqRes<T>), b: &(SqInv<T>, SqRes<T>)) -> bool {
        matches!(
            (a, b),
            ((SqInv::Rem, SqRes::Item(v)), (SqInv::Rem, SqRes::Item(w))) if v == w
        )
    }
    fn name(&self) -> &'static str {
        "hybrid"
    }
    fn class_of(&self, op: &(SqInv<T>, SqRes<T>)) -> Option<String> {
        Some(
            match op.0 {
                SqInv::Ins(_) => "Ins",
                SqInv::Rem => "Rem-Ok",
            }
            .to_string(),
        )
    }
}

/// A semiqueue object with ergonomic methods.
pub struct SemiqueueObject<T: Item> {
    obj: Arc<TxObject<SemiqueueAdt<T>>>,
}

impl<T: Item> SemiqueueObject<T> {
    /// A semiqueue under the Table-IV hybrid scheme.
    pub fn hybrid(name: impl Into<String>) -> SemiqueueObject<T> {
        Self::with(name, Arc::new(SemiqueueHybrid), RuntimeOptions::default())
    }

    /// A semiqueue under an arbitrary scheme and options.
    pub fn with(
        name: impl Into<String>,
        locks: Arc<dyn LockSpec<SemiqueueAdt<T>>>,
        opts: RuntimeOptions,
    ) -> SemiqueueObject<T> {
        SemiqueueObject { obj: TxObject::new(name, SemiqueueAdt::default(), locks, opts) }
    }

    /// The underlying runtime object.
    pub fn inner(&self) -> &Arc<TxObject<SemiqueueAdt<T>>> {
        &self.obj
    }

    /// Insert an item.
    pub fn ins(&self, txn: &Arc<TxnHandle>, item: T) -> Result<(), ExecError> {
        self.obj.execute(txn, SqInv::Ins(item)).map(|_| ())
    }

    /// Remove some item (blocks while every candidate is locked or the
    /// semiqueue is empty).
    pub fn rem(&self, txn: &Arc<TxnHandle>) -> Result<T, ExecError> {
        match self.obj.execute(txn, SqInv::Rem)? {
            SqRes::Item(x) => Ok(x),
            SqRes::Ok => unreachable!("rem returns an item"),
        }
    }

    /// Total committed item count (diagnostics).
    pub fn committed_len(&self) -> usize {
        self.obj.committed_snapshot().values().sum()
    }

    /// The item multiset as of commit timestamp `watermark` — the
    /// wait-free snapshot-read accessor: no lock acquisition, no
    /// conflict with writers. Refused when compaction has folded past
    /// `watermark`.
    pub fn items_at(
        &self,
        watermark: u64,
    ) -> Result<Multiset<T>, hcc_core::runtime::SnapshotStale> {
        self.obj.snapshot_read(watermark)
    }
}

/// Map a runtime operation onto the dynamic specification operation.
pub fn to_spec_op<T: Item + Into<Value>>(inv: &SqInv<T>, res: &SqRes<T>) -> Operation {
    match (inv, res) {
        (SqInv::Ins(x), _) => Operation::new(SemiqueueSpec::ins(x.clone()), Value::Unit),
        (SqInv::Rem, SqRes::Item(x)) => Operation::new(SemiqueueSpec::rem(), x.clone()),
        (SqInv::Rem, SqRes::Ok) => unreachable!("rem returns an item"),
    }
}

/// The dynamic serial specification matching [`SemiqueueAdt`].
pub fn spec() -> SharedAdt {
    Arc::new(SemiqueueSpec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::runtime::TxParticipant;
    use hcc_spec::TxnId;
    use std::time::Duration;

    fn h(n: u64) -> Arc<TxnHandle> {
        TxnHandle::new(TxnId(n))
    }
    fn short() -> RuntimeOptions {
        RuntimeOptions::with_timeout(Some(Duration::from_millis(30)))
    }

    #[test]
    fn concurrent_removers_take_different_items() {
        let s: SemiqueueObject<i64> = SemiqueueObject::hybrid("s");
        let t0 = h(1);
        s.ins(&t0, 1).unwrap();
        s.ins(&t0, 2).unwrap();
        s.inner().commit_at(t0.id(), 1);
        let (t1, t2) = (h(2), h(3));
        let a = s.rem(&t1).unwrap();
        let b = s.rem(&t2).unwrap(); // no conflict: takes the other item
        assert_ne!(a, b);
    }

    #[test]
    fn removers_conflict_only_on_the_last_item() {
        let s: SemiqueueObject<i64> =
            SemiqueueObject::with("s", Arc::new(SemiqueueHybrid), short());
        let t0 = h(1);
        s.ins(&t0, 1).unwrap();
        s.inner().commit_at(t0.id(), 1);
        let (t1, t2) = (h(2), h(3));
        assert_eq!(s.rem(&t1).unwrap(), 1);
        assert_eq!(s.rem(&t2), Err(ExecError::Timeout));
    }

    #[test]
    fn inserts_run_concurrently_with_removes() {
        let s: SemiqueueObject<i64> = SemiqueueObject::hybrid("s");
        let t0 = h(1);
        s.ins(&t0, 1).unwrap();
        s.inner().commit_at(t0.id(), 1);
        let (t1, t2) = (h(2), h(3));
        s.ins(&t1, 2).unwrap(); // uncommitted insert
        assert_eq!(s.rem(&t2).unwrap(), 1, "committed item removable concurrently");
    }

    #[test]
    fn duplicate_items_allow_concurrent_removes_of_same_value() {
        // Two copies of 5: removers both get 5... but that is the same
        // item value, so they conflict under Table IV (v = v').
        let s: SemiqueueObject<i64> =
            SemiqueueObject::with("s", Arc::new(SemiqueueHybrid), short());
        let t0 = h(1);
        s.ins(&t0, 5).unwrap();
        s.ins(&t0, 5).unwrap();
        s.inner().commit_at(t0.id(), 1);
        let (t1, t2) = (h(2), h(3));
        assert_eq!(s.rem(&t1).unwrap(), 5);
        assert_eq!(s.rem(&t2), Err(ExecError::Timeout), "same value conflicts");
    }

    #[test]
    fn own_inserts_are_removable() {
        let s: SemiqueueObject<i64> = SemiqueueObject::hybrid("s");
        let t1 = h(1);
        s.ins(&t1, 9).unwrap();
        assert_eq!(s.rem(&t1).unwrap(), 9);
    }

    #[test]
    fn abort_restores_items() {
        let s: SemiqueueObject<i64> = SemiqueueObject::hybrid("s");
        let t0 = h(1);
        s.ins(&t0, 3).unwrap();
        s.inner().commit_at(t0.id(), 1);
        let t1 = h(2);
        assert_eq!(s.rem(&t1).unwrap(), 3);
        s.inner().abort_txn(t1.id());
        let t2 = h(3);
        assert_eq!(s.rem(&t2).unwrap(), 3, "aborted removal rolled back");
    }

    #[test]
    fn committed_len_counts_multiset() {
        let s: SemiqueueObject<i64> = SemiqueueObject::hybrid("s");
        let t0 = h(1);
        for x in [1, 1, 2] {
            s.ins(&t0, x).unwrap();
        }
        s.inner().commit_at(t0.id(), 1);
        assert_eq!(s.committed_len(), 3);
    }
}
