//! # hcc-adts — production data types for the hybrid runtime
//!
//! Each module implements one data type three ways at once:
//!
//! 1. a [`hcc_core::runtime::RuntimeAdt`] — compact version + intent
//!    summaries (the appendix pattern);
//! 2. a hybrid [`hcc_core::runtime::LockSpec`] encoding the paper's derived
//!    conflict relation (the symmetric closure of the type's minimal
//!    dependency relation), response-aware where the paper's is
//!    (Account, Set, Directory);
//! 3. an ergonomic object wrapper (`AccountObject`, `QueueObject`, ...)
//!    plus a mapping onto the dynamic `hcc-spec` operations, so integration
//!    tests can check runtime histories against the formal specification.
//!
//! The types: [`account`] (Table V), [`fifo_queue`] (Tables II and III —
//! both conflict relations are provided), [`semiqueue`] (Table IV),
//! [`file`] (Table I / generalized Thomas Write Rule), and the extension
//! types [`counter`], [`set`], [`directory`].
//!
//! Every type is **self-logging**: its `RuntimeAdt::redo` serializes each
//! mutating operation as a compact JSON payload
//! (`{"op":"credit","v":…}`), which the object runtime routes into the
//! owning transaction manager's durable store automatically when one is
//! attached. `decode_redo` is the exact inverse, used by recovery replay
//! ([`snapshot`] wires the wrappers into the recovery registry via
//! `hcc-storage`'s `DurableObject`).

use hcc_core::runtime::RedoDecodeError;
use serde::Deserialize;

/// Parse a redo payload into its `"op"` discriminator and the whole value.
pub(crate) fn decode_op(bytes: &[u8]) -> Result<(String, serde_json::Value), RedoDecodeError> {
    let v: serde_json::Value = serde_json::from_slice(bytes)
        .map_err(|e| RedoDecodeError::new(format!("redo payload is not JSON: {e}")))?;
    let op = v["op"]
        .as_str()
        .ok_or_else(|| RedoDecodeError::new("redo payload has no \"op\" field"))?
        .to_string();
    Ok((op, v))
}

/// Decode one typed field of a redo payload.
pub(crate) fn decode_field<T: Deserialize>(
    v: &serde_json::Value,
    key: &str,
) -> Result<T, RedoDecodeError> {
    serde_json::from_value(&v[key])
        .map_err(|e| RedoDecodeError::new(format!("redo field {key:?}: {e}")))
}

pub mod account;
pub mod counter;
pub mod define;
pub mod directory;
pub mod fifo_queue;
pub mod file;
pub mod semiqueue;
pub mod set;
pub mod snapshot;

pub use account::AccountObject;
pub use counter::CounterObject;
pub use define::SpecObject;
pub use directory::DirectoryObject;
pub use fifo_queue::QueueObject;
pub use file::FileObject;
pub use semiqueue::SemiqueueObject;
pub use set::SetObject;
