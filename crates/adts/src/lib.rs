//! # hcc-adts — production data types for the hybrid runtime
//!
//! Each module implements one data type three ways at once:
//!
//! 1. a [`hcc_core::runtime::RuntimeAdt`] — compact version + intent
//!    summaries (the appendix pattern);
//! 2. a hybrid [`hcc_core::runtime::LockSpec`] encoding the paper's derived
//!    conflict relation (the symmetric closure of the type's minimal
//!    dependency relation), response-aware where the paper's is
//!    (Account, Set, Directory);
//! 3. an ergonomic object wrapper (`AccountObject`, `QueueObject`, ...)
//!    plus a mapping onto the dynamic `hcc-spec` operations, so integration
//!    tests can check runtime histories against the formal specification.
//!
//! The types: [`account`] (Table V), [`fifo_queue`] (Tables II and III —
//! both conflict relations are provided), [`semiqueue`] (Table IV),
//! [`file`] (Table I / generalized Thomas Write Rule), and the extension
//! types [`counter`], [`set`], [`directory`].

pub mod account;
pub mod counter;
pub mod directory;
pub mod fifo_queue;
pub mod file;
pub mod semiqueue;
pub mod set;
pub mod snapshot;

pub use account::AccountObject;
pub use counter::CounterObject;
pub use directory::DirectoryObject;
pub use fifo_queue::QueueObject;
pub use file::FileObject;
pub use semiqueue::SemiqueueObject;
pub use set::SetObject;
