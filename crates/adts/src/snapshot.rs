//! [`Snapshot`] implementations for every ADT object wrapper: how each
//! type's committed frontier is serialized into a checkpoint and installed
//! back during recovery.
//!
//! Snapshots capture `TxObject::committed_snapshot()` — the version with
//! all committed intents applied, which by construction excludes active
//! transactions. `restore` installs the payload into a *fresh* object as a
//! single bootstrap transaction committed at the checkpoint's timestamp,
//! so the object's clock advances to the checkpoint frontier and tail
//! replay (at strictly greater timestamps) observes a well-formed history.
//!
//! Payloads are compact JSON: human-inspectable, schema-stable, and
//! type-agnostic — the same properties the WAL's op payloads have.

use crate::account::AccountObject;
use crate::counter::CounterObject;
use crate::directory::{DirectoryObject, Key, Val};
use crate::fifo_queue::{Item, QueueObject};
use crate::file::{Content, FileObject};
use crate::semiqueue::{self, SemiqueueObject};
use crate::set::{Elem, SetObject};
use hcc_core::runtime::{ReplayError, TxParticipant, TxnHandle};
use hcc_spec::{Rational, TxnId};
use hcc_storage::{DurableObject, Snapshot, SnapshotError};
use serde::Deserialize;
use std::sync::Arc;

/// The reserved transaction id snapshot restoration commits under. Real
/// transaction ids are allocated from 1 upward; this cannot collide.
pub const BOOTSTRAP_TXN: u64 = u64::MAX - 1;

fn bootstrap() -> Arc<TxnHandle> {
    // A *replay* handle: restoration re-installs durable history, so
    // self-logging objects must not log it again.
    TxnHandle::replay(TxnId(BOOTSTRAP_TXN))
}

fn de<T: Deserialize>(bytes: &[u8]) -> Result<T, SnapshotError> {
    serde_json::from_slice(bytes).map_err(|e| SnapshotError::new(e.to_string()))
}

fn exec_err(e: impl std::fmt::Display) -> SnapshotError {
    SnapshotError::new(format!("restore execution failed: {e}"))
}

/// The fuzzy-checkpoint hooks every wrapper forwards to its runtime
/// object: pin the fold horizon at the watermark, snapshot at it,
/// release.
macro_rules! fuzzy_hooks {
    () => {
        fn pin_horizon(&self, watermark: u64) {
            self.inner().pin_horizon(watermark)
        }

        fn unpin_horizon(&self) {
            self.inner().unpin_horizon()
        }
    };
}

impl Snapshot for AccountObject {
    fn snapshot(&self) -> Vec<u8> {
        self.snapshot_at(u64::MAX)
    }

    fn snapshot_at(&self, watermark: u64) -> Vec<u8> {
        serde_json::to_vec(&self.inner().committed_snapshot_at(watermark))
            .expect("rational serializes")
    }

    fuzzy_hooks!();

    fn restore(&self, bytes: &[u8], ts: u64) -> Result<(), SnapshotError> {
        let balance: Rational = de(bytes)?;
        let t = bootstrap();
        self.credit(&t, balance).map_err(exec_err)?;
        self.inner().commit_at(t.id(), ts);
        Ok(())
    }
}

impl Snapshot for CounterObject {
    fn snapshot(&self) -> Vec<u8> {
        self.snapshot_at(u64::MAX)
    }

    fn snapshot_at(&self, watermark: u64) -> Vec<u8> {
        serde_json::to_vec(&self.inner().committed_snapshot_at(watermark)).expect("i64 serializes")
    }

    fuzzy_hooks!();

    fn restore(&self, bytes: &[u8], ts: u64) -> Result<(), SnapshotError> {
        let value: i64 = de(bytes)?;
        let t = bootstrap();
        if value >= 0 {
            self.inc(&t, value).map_err(exec_err)?;
        } else {
            self.dec(&t, -value).map_err(exec_err)?;
        }
        self.inner().commit_at(t.id(), ts);
        Ok(())
    }
}

impl<T: Item> Snapshot for QueueObject<T> {
    fn snapshot(&self) -> Vec<u8> {
        self.snapshot_at(u64::MAX)
    }

    fn snapshot_at(&self, watermark: u64) -> Vec<u8> {
        let items: Vec<T> = self.inner().committed_snapshot_at(watermark).into_iter().collect();
        serde_json::to_vec(&items).expect("queue items serialize")
    }

    fuzzy_hooks!();

    fn restore(&self, bytes: &[u8], ts: u64) -> Result<(), SnapshotError> {
        let items: Vec<T> = de(bytes)?;
        let t = bootstrap();
        for item in items {
            self.enq(&t, item).map_err(exec_err)?;
        }
        self.inner().commit_at(t.id(), ts);
        Ok(())
    }
}

impl<T: semiqueue::Item> Snapshot for SemiqueueObject<T> {
    fn snapshot(&self) -> Vec<u8> {
        self.snapshot_at(u64::MAX)
    }

    fn snapshot_at(&self, watermark: u64) -> Vec<u8> {
        let items: Vec<(T, usize)> =
            self.inner().committed_snapshot_at(watermark).into_iter().collect();
        serde_json::to_vec(&items).expect("semiqueue items serialize")
    }

    fuzzy_hooks!();

    fn restore(&self, bytes: &[u8], ts: u64) -> Result<(), SnapshotError> {
        let items: Vec<(T, usize)> = de(bytes)?;
        let t = bootstrap();
        for (item, count) in items {
            for _ in 0..count {
                self.ins(&t, item.clone()).map_err(exec_err)?;
            }
        }
        self.inner().commit_at(t.id(), ts);
        Ok(())
    }
}

impl<T: Content> Snapshot for FileObject<T> {
    fn snapshot(&self) -> Vec<u8> {
        self.snapshot_at(u64::MAX)
    }

    fn snapshot_at(&self, watermark: u64) -> Vec<u8> {
        serde_json::to_vec(&self.inner().committed_snapshot_at(watermark))
            .expect("file content serializes")
    }

    fuzzy_hooks!();

    fn restore(&self, bytes: &[u8], ts: u64) -> Result<(), SnapshotError> {
        let value: T = de(bytes)?;
        let t = bootstrap();
        self.write(&t, value).map_err(exec_err)?;
        self.inner().commit_at(t.id(), ts);
        Ok(())
    }
}

impl<T: Elem> Snapshot for SetObject<T> {
    fn snapshot(&self) -> Vec<u8> {
        self.snapshot_at(u64::MAX)
    }

    fn snapshot_at(&self, watermark: u64) -> Vec<u8> {
        let items: Vec<T> = self.inner().committed_snapshot_at(watermark).into_iter().collect();
        serde_json::to_vec(&items).expect("set elements serialize")
    }

    fuzzy_hooks!();

    fn restore(&self, bytes: &[u8], ts: u64) -> Result<(), SnapshotError> {
        let items: Vec<T> = de(bytes)?;
        let t = bootstrap();
        for item in items {
            self.add(&t, item).map_err(exec_err)?;
        }
        self.inner().commit_at(t.id(), ts);
        Ok(())
    }
}

impl<K: Key, V: Val> Snapshot for DirectoryObject<K, V> {
    fn snapshot(&self) -> Vec<u8> {
        self.snapshot_at(u64::MAX)
    }

    fn snapshot_at(&self, watermark: u64) -> Vec<u8> {
        let entries: Vec<(K, V)> =
            self.inner().committed_snapshot_at(watermark).into_iter().collect();
        serde_json::to_vec(&entries).expect("directory entries serialize")
    }

    fuzzy_hooks!();

    fn restore(&self, bytes: &[u8], ts: u64) -> Result<(), SnapshotError> {
        let entries: Vec<(K, V)> = de(bytes)?;
        let t = bootstrap();
        for (k, v) in entries {
            self.insert(&t, k, v).map_err(exec_err)?;
        }
        self.inner().commit_at(t.id(), ts);
        Ok(())
    }
}

// ---- DurableObject: the recovery registry's view -----------------------
//
// Each wrapper exposes its name and replays its own redo payloads (the
// inverse of the self-logging write path). `hcc-txn`'s `Registry` collects
// these so recovery needs no caller-side dispatch.

macro_rules! durable_object {
    ($ty:ty $(, $bound:ident : $alias:path)*) => {
        impl<$($bound: $alias),*> DurableObject for $ty {
            fn object_name(&self) -> &str {
                self.inner().name()
            }

            fn replay_op(&self, txn: &Arc<TxnHandle>, op: &[u8]) -> Result<(), ReplayError> {
                self.inner().replay_redo(txn, op)
            }
        }
    };
}

durable_object!(AccountObject);
durable_object!(CounterObject);
durable_object!(QueueObject<T>, T: Item);
durable_object!(SemiqueueObject<T>, T: semiqueue::Item);
durable_object!(FileObject<T>, T: Content);
durable_object!(SetObject<T>, T: Elem);
durable_object!(DirectoryObject<K, V>, K: Key, V: Val);

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    fn t(n: u64) -> Arc<TxnHandle> {
        TxnHandle::new(TxnId(n))
    }

    /// Build state, snapshot, restore into a fresh object, compare.
    #[test]
    fn account_roundtrip() {
        let a = AccountObject::hybrid("a");
        let tx = t(1);
        a.credit(&tx, r(100)).unwrap();
        assert!(a.debit(&tx, r(30)).unwrap());
        a.inner().commit_at(tx.id(), 5);
        let snap = a.snapshot();
        let b = AccountObject::hybrid("b");
        b.restore(&snap, 5).unwrap();
        assert_eq!(b.committed_balance(), r(70));
    }

    #[test]
    fn snapshot_excludes_active_transactions() {
        let a = AccountObject::hybrid("a");
        let committed = t(1);
        a.credit(&committed, r(10)).unwrap();
        a.inner().commit_at(committed.id(), 1);
        let active = t(2);
        a.credit(&active, r(999)).unwrap(); // never committed
        let b = AccountObject::hybrid("b");
        b.restore(&a.snapshot(), 1).unwrap();
        assert_eq!(b.committed_balance(), r(10), "active credit must not leak");
    }

    #[test]
    fn queue_roundtrip_preserves_order() {
        let q: QueueObject<i64> = QueueObject::hybrid("q");
        let tx = t(1);
        for i in [3, 1, 4, 1, 5] {
            q.enq(&tx, i).unwrap();
        }
        q.inner().commit_at(tx.id(), 2);
        let p: QueueObject<i64> = QueueObject::hybrid("p");
        p.restore(&q.snapshot(), 2).unwrap();
        assert_eq!(p.committed_len(), 5);
        let rd = t(2);
        assert_eq!(p.deq(&rd).unwrap(), 3, "FIFO order survives the snapshot");
        assert_eq!(p.deq(&rd).unwrap(), 1);
    }

    #[test]
    fn semiqueue_roundtrip_preserves_multiplicity() {
        let q: SemiqueueObject<i64> = SemiqueueObject::hybrid("sq");
        let tx = t(1);
        for i in [7, 7, 9] {
            q.ins(&tx, i).unwrap();
        }
        q.inner().commit_at(tx.id(), 2);
        let p: SemiqueueObject<i64> = SemiqueueObject::hybrid("sp");
        p.restore(&q.snapshot(), 2).unwrap();
        assert_eq!(p.committed_len(), 3);
    }

    #[test]
    fn file_counter_set_directory_roundtrip() {
        let f: FileObject<i64> = FileObject::hybrid("f");
        let tx = t(1);
        f.write(&tx, 42).unwrap();
        f.inner().commit_at(tx.id(), 1);
        let g: FileObject<i64> = FileObject::hybrid("g");
        g.restore(&f.snapshot(), 1).unwrap();
        assert_eq!(g.committed_value(), 42);

        let c = CounterObject::hybrid("c");
        let tx = t(2);
        c.inc(&tx, 9).unwrap();
        c.dec(&tx, 4).unwrap();
        c.inner().commit_at(tx.id(), 1);
        let d = CounterObject::hybrid("d");
        d.restore(&c.snapshot(), 1).unwrap();
        assert_eq!(d.committed_value(), 5);

        let s: SetObject<i64> = SetObject::hybrid("s");
        let tx = t(3);
        s.add(&tx, 1).unwrap();
        s.add(&tx, 2).unwrap();
        s.inner().commit_at(tx.id(), 1);
        let z: SetObject<i64> = SetObject::hybrid("z");
        z.restore(&s.snapshot(), 1).unwrap();
        assert_eq!(z.committed_len(), 2);

        let dir: DirectoryObject<String, i64> = DirectoryObject::hybrid("dir");
        let tx = t(4);
        dir.insert(&tx, "a".into(), 1).unwrap();
        dir.insert(&tx, "b".into(), 2).unwrap();
        dir.inner().commit_at(tx.id(), 1);
        let dir2: DirectoryObject<String, i64> = DirectoryObject::hybrid("dir2");
        dir2.restore(&dir.snapshot(), 1).unwrap();
        assert_eq!(dir2.committed_len(), 2);
        let rd = t(5);
        assert_eq!(dir2.lookup(&rd, "b".into()).unwrap(), Some(2));
    }

    /// `decode_redo` is the exact inverse of `redo` for every type: the
    /// write path and the recovery path can never disagree on the payload
    /// format.
    #[test]
    fn redo_roundtrips_for_every_type() {
        use hcc_core::runtime::RuntimeAdt;

        fn roundtrip<A: RuntimeAdt>(adt: &A, inv: A::Inv, res: A::Res)
        where
            A::Inv: PartialEq + std::fmt::Debug,
        {
            let bytes = adt.redo(&inv, &res).expect("mutating op has a redo payload");
            let (inv2, res2) = adt.decode_redo(&bytes).expect("payload decodes");
            assert_eq!(inv2, inv, "invocation roundtrips");
            assert_eq!(res2, res, "response roundtrips");
        }

        use crate::account::{AccountAdt, AccountInv, AccountRes};
        roundtrip(&AccountAdt, AccountInv::Credit(Rational::new(5, 2)), AccountRes::Ok);
        roundtrip(&AccountAdt, AccountInv::Post(r(5)), AccountRes::Ok);
        roundtrip(&AccountAdt, AccountInv::Debit(r(3)), AccountRes::Debited);
        roundtrip(&AccountAdt, AccountInv::Debit(r(9)), AccountRes::Overdraft);

        use crate::counter::{CounterAdt, CounterInv, CounterRes};
        roundtrip(&CounterAdt, CounterInv::Inc(7), CounterRes::Ok);
        roundtrip(&CounterAdt, CounterInv::Dec(2), CounterRes::Ok);
        assert!(CounterAdt.redo(&CounterInv::Read, &CounterRes::Val(0)).is_none());

        use crate::fifo_queue::{QueueAdt, QueueInv, QueueRes};
        let q: QueueAdt<i64> = QueueAdt::default();
        roundtrip(&q, QueueInv::Enq(42), QueueRes::Ok);
        roundtrip(&q, QueueInv::Deq, QueueRes::Item(42));

        use crate::semiqueue::{SemiqueueAdt, SqInv, SqRes};
        let sq: SemiqueueAdt<String> = SemiqueueAdt::default();
        roundtrip(&sq, SqInv::Ins("x".into()), SqRes::Ok);
        roundtrip(&sq, SqInv::Rem, SqRes::Item("x".to_string()));

        use crate::file::{FileAdt, FileInv, FileRes};
        let f: FileAdt<i64> = FileAdt::default();
        roundtrip(&f, FileInv::Write(9), FileRes::Ok);
        assert!(f.redo(&FileInv::Read, &FileRes::Val(0)).is_none());

        use crate::set::{SetAdt, SetInv};
        let s: SetAdt<i64> = SetAdt::default();
        roundtrip(&s, SetInv::Add(1), true);
        roundtrip(&s, SetInv::Add(1), false);
        roundtrip(&s, SetInv::Remove(1), true);
        assert!(s.redo(&SetInv::Contains(1), &true).is_none());

        use crate::directory::{DirInv, DirRes, DirectoryAdt};
        let d: DirectoryAdt<String, i64> = DirectoryAdt::default();
        roundtrip(&d, DirInv::Insert("k".into(), 1), DirRes::Inserted);
        roundtrip(&d, DirInv::Insert("k".into(), 1), DirRes::Duplicate);
        roundtrip(&d, DirInv::Remove("k".into()), DirRes::Val(1));
        roundtrip(&d, DirInv::Remove("k".into()), DirRes::Missing);
        assert!(d.redo(&DirInv::Lookup("k".into()), &DirRes::Missing).is_none());
    }

    #[test]
    fn garbage_payload_is_rejected() {
        let a = AccountObject::hybrid("a");
        assert!(a.restore(b"not json", 1).is_err());
        let q: QueueObject<i64> = QueueObject::hybrid("q");
        assert!(q.restore(br#"{"wrong":"shape"}"#, 1).is_err());
    }
}
