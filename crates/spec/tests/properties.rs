//! Property-based tests for the model-of-computation layer: exact
//! arithmetic laws, history invariants, and the legality engine.

use hcc_spec::history::HistoryBuilder;
use hcc_spec::specs::QueueSpec;
use hcc_spec::{Frontier, ObjectId, Operation, Rational, TxnId, Value};
use proptest::prelude::*;

fn rat() -> impl Strategy<Value = Rational> {
    (-500i128..500, 1i128..40).prop_map(|(n, d)| Rational::new(n, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- Rational laws -------------------------------------------------

    #[test]
    fn rational_addition_commutes(a in rat(), b in rat()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn rational_multiplication_distributes(a in rat(), b in rat(), c in rat()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rational_addition_associates(a in rat(), b in rat(), c in rat()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn rational_subtraction_inverts_addition(a in rat(), b in rat()) {
        prop_assert_eq!(a + b - b, a);
    }

    #[test]
    fn rational_ordering_is_translation_invariant(a in rat(), b in rat(), c in rat()) {
        prop_assert_eq!(a < b, a + c < b + c);
    }

    #[test]
    fn rational_normalization_is_canonical(n in -500i128..500, d in 1i128..40, k in 1i128..10) {
        prop_assert_eq!(Rational::new(n, d), Rational::new(n * k, d * k));
    }

    // ---- Affine composition (the Account intent representation) --------

    #[test]
    fn affine_composition_is_exact(b in rat(), m1 in rat(), a1 in rat(), m2 in rat(), a2 in rat()) {
        let sequential = (b * m1 + a1) * m2 + a2;
        let composed = b * (m2 * m1) + (m2 * a1 + a2);
        prop_assert_eq!(sequential, composed);
    }

    // ---- History invariants --------------------------------------------

    /// Build a random *well-formed* single-object queue history and check
    /// the derived relations and restrictions.
    #[test]
    fn history_invariants(script in prop::collection::vec((0u64..4, 0u8..4, 1i64..4), 1..25)) {
        let mut b = HistoryBuilder::new();
        // Track per-transaction status to keep the build well formed.
        let mut committed = std::collections::HashSet::new();
        let mut aborted = std::collections::HashSet::new();
        let mut depth: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::new();
        let mut next_ts = 1u64;
        let mut any_committed_ts = 0u64;
        for (t, kind, v) in script {
            if committed.contains(&t) { continue; }
            match kind {
                0 => { b = b.op(0, t, QueueSpec::enq(v), Value::Unit);
                       *depth.entry(t).or_default() += 1; }
                1 if !aborted.contains(&t) => {
                    // Commit with a fresh timestamp later than everything
                    // observed (trivially satisfies precedes ⊆ TS).
                    next_ts = next_ts.max(any_committed_ts + 1);
                    b = b.commit(0, t, next_ts);
                    any_committed_ts = next_ts;
                    next_ts += 1;
                    committed.insert(t);
                }
                2 => { b = b.abort(0, t); aborted.insert(t); }
                _ => {}
            }
        }
        let h = b.build();
        h.well_formed().expect("constructed history is well formed");

        // permanent(H) contains exactly the committed transactions.
        let perm = h.permanent();
        for t in perm.txns() {
            prop_assert!(h.committed().contains_key(&t));
        }
        // Restrictions of well-formed histories are well formed.
        for t in h.txns() {
            h.restrict_txn(t).well_formed().unwrap();
        }
        h.restrict_obj(ObjectId(0)).well_formed().unwrap();
        // precedes ⊆ known; TS ⊆ known.
        let known = h.known();
        for pair in h.precedes() {
            prop_assert!(known.contains(&pair));
        }
        for pair in h.ts_rel() {
            prop_assert!(known.contains(&pair));
        }
        // ts_order is sorted by timestamp and covers committed(H).
        let order = h.ts_order();
        prop_assert_eq!(order.len(), h.committed().len());
        let stamps: Vec<_> = order.iter().map(|t| h.committed()[t]).collect();
        prop_assert!(stamps.windows(2).all(|w| w[0] < w[1]));
        // Serial(H, T) is serial and preserves per-transaction projections.
        let serial = h.serialized(&h.txns());
        prop_assert!(serial.is_serial());
        for t in h.txns() {
            let a = serial.restrict_txn(t);
            let b = h.restrict_txn(t);
            prop_assert_eq!(a.events(), b.events());
        }
    }

    // ---- Legality engine -----------------------------------------------

    /// Frontier advancement composes: stepping a+b equals stepping a then b.
    #[test]
    fn frontier_advance_composes(
        a in prop::collection::vec((0u8..2, 1i64..4), 0..5),
        b in prop::collection::vec((0u8..2, 1i64..4), 0..5),
    ) {
        let mk = |v: &[(u8, i64)]| -> Vec<Operation> {
            v.iter().map(|&(k, x)| if k == 0 {
                Operation::new(QueueSpec::enq(x), Value::Unit)
            } else {
                Operation::new(QueueSpec::deq(), x)
            }).collect()
        };
        let (a, b) = (mk(&a), mk(&b));
        let q = QueueSpec;
        let whole = {
            let mut s = a.clone();
            s.extend(b.iter().cloned());
            Frontier::initial(&q).advance_seq(&q, &s)
        };
        let split = Frontier::initial(&q).advance_seq(&q, &a).advance_seq(&q, &b);
        prop_assert_eq!(whole, split);
    }

    /// Prefix closure: every prefix of a legal sequence is legal.
    #[test]
    fn legal_sequences_are_prefix_closed(
        v in prop::collection::vec((0u8..2, 1i64..4), 0..8)
    ) {
        let ops: Vec<Operation> = v.iter().map(|&(k, x)| if k == 0 {
            Operation::new(QueueSpec::enq(x), Value::Unit)
        } else {
            Operation::new(QueueSpec::deq(), x)
        }).collect();
        let q = QueueSpec;
        if hcc_spec::legal(&q, &ops) {
            for i in 0..ops.len() {
                prop_assert!(hcc_spec::legal(&q, &ops[..i]));
            }
        }
    }
}

#[test]
fn ts_order_ties_broken_consistently() {
    // Two commits of the same transaction don't duplicate it in ts_order.
    let h = HistoryBuilder::new().commit(0, 1, 5).commit(1, 1, 5).commit(0, 2, 7).build();
    h.well_formed().unwrap();
    assert_eq!(h.ts_order(), vec![TxnId(1), TxnId(2)]);
}
