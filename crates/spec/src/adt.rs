//! Serial specifications as nondeterministic state machines.
//!
//! Section 3.1 of the paper defines a serial specification as a
//! prefix-closed set of operation sequences. Enumerating sets of sequences
//! directly is impractical, so we represent a specification as a state
//! machine: [`Adt::step`] maps a state and an invocation to the set of
//! `(response, successor-state)` pairs the specification permits.
//!
//! * A **partial** operation (the paper's blocking `Deq` on an empty queue)
//!   returns the empty set in states where it is undefined.
//! * A **nondeterministic** operation (the Semiqueue's `Rem`) returns more
//!   than one pair.
//!
//! An operation sequence is *legal* iff some path through the machine
//! produces exactly its responses; [`legal`] decides this by simulating the
//! set of reachable states (a subset construction), which is exact for the
//! finite-branching specifications used here. Prefix-closure is automatic in
//! this representation.

use crate::value::{Inv, Value};
use serde::Serialize;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// An operation: an invocation paired with its response (Section 3.1).
///
/// `X:[Enq(3), Ok]` is `Operation { inv: enq(3), res: Unit }`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct Operation {
    /// The invocation (operation name + arguments).
    pub inv: Inv,
    /// The response value.
    pub res: Value,
}

impl Operation {
    /// Construct an operation from its invocation and response.
    pub fn new(inv: Inv, res: impl Into<Value>) -> Operation {
        Operation { inv, res: res.into() }
    }
}

impl fmt::Debug for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}, {:?}]", self.inv, self.res)
    }
}

/// A serial specification: the object's behaviour in the absence of
/// concurrency and failures.
///
/// States are kept dynamic (`BTreeSet`-friendly [`Value`]-like encodings are
/// up to each implementation) via an opaque, ordered state type so that the
/// legality engine can maintain state *sets*.
pub trait Adt: Send + Sync {
    /// The specification's state. Must be cheap to clone for the bounded
    /// model checking done by `hcc-relations`.
    fn initial(&self) -> SpecState;

    /// All `(response, successor)` pairs permitted for `inv` in `state`.
    ///
    /// Empty means the operation is not defined (partial) in this state.
    fn step(&self, state: &SpecState, inv: &Inv) -> Vec<(Value, SpecState)>;

    /// A short human-readable type name (`"FIFO-Queue"`, `"Account"`, ...).
    fn type_name(&self) -> &'static str;
}

/// A dynamic specification state.
///
/// All bundled specifications encode their state as a [`Value`]; the newtype
/// exists to keep signatures self-documenting and to leave room for interned
/// representations later.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpecState(pub Value);

impl fmt::Debug for SpecState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

/// The set of specification states reachable by some legal execution of a
/// prefix. Empty iff the prefix is illegal.
///
/// Ordered and hashable so that searches over many prefixes (relation
/// derivation, the `hcc-check` soundness search) can deduplicate prefixes
/// by the frontier they leave behind — legality of every continuation
/// depends only on the frontier, never on the prefix itself.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frontier {
    states: BTreeSet<SpecState>,
}

impl Frontier {
    /// The frontier after the empty sequence.
    pub fn initial(adt: &dyn Adt) -> Frontier {
        let mut states = BTreeSet::new();
        states.insert(adt.initial());
        Frontier { states }
    }

    /// An explicitly empty (illegal) frontier.
    pub fn empty() -> Frontier {
        Frontier { states: BTreeSet::new() }
    }

    /// True iff no execution path realizes the prefix.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Number of distinct reachable states (used in tests).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Advance the frontier by one operation: keep exactly the successors
    /// whose response matches `op.res`.
    pub fn advance(&self, adt: &dyn Adt, op: &Operation) -> Frontier {
        let mut next = BTreeSet::new();
        for s in &self.states {
            for (res, s2) in adt.step(s, &op.inv) {
                if res == op.res {
                    next.insert(s2);
                }
            }
        }
        Frontier { states: next }
    }

    /// Advance through a whole sequence.
    pub fn advance_seq(&self, adt: &dyn Adt, ops: &[Operation]) -> Frontier {
        let mut f = self.clone();
        for op in ops {
            f = f.advance(adt, op);
            if f.is_empty() {
                return f;
            }
        }
        f
    }

    /// All responses the specification permits for `inv` after this prefix,
    /// deduplicated, in a stable order.
    pub fn responses(&self, adt: &dyn Adt, inv: &Inv) -> Vec<Value> {
        let mut out = BTreeSet::new();
        for s in &self.states {
            for (res, _) in adt.step(s, inv) {
                out.insert(res);
            }
        }
        out.into_iter().collect()
    }

    /// Iterate over the reachable states.
    pub fn states(&self) -> impl Iterator<Item = &SpecState> {
        self.states.iter()
    }
}

/// Is the operation sequence legal, i.e. a member of the serial
/// specification (Section 3.1)?
pub fn legal(adt: &dyn Adt, ops: &[Operation]) -> bool {
    !Frontier::initial(adt).advance_seq(adt, ops).is_empty()
}

/// The responses the specification permits for `inv` after the legal prefix
/// `ops`. Empty if `ops` is illegal or `inv` is undefined after it.
pub fn responses_after(adt: &dyn Adt, ops: &[Operation], inv: &Inv) -> Vec<Value> {
    Frontier::initial(adt).advance_seq(adt, ops).responses(adt, inv)
}

/// Two sequences are *equieffective* (Definition 25) iff no continuation
/// distinguishes them. For state-machine specifications, equality of
/// reachable state sets is a sound (and for our specifications, complete)
/// criterion: continuations only observe the state.
pub fn equieffective(adt: &dyn Adt, a: &[Operation], b: &[Operation]) -> bool {
    let fa = Frontier::initial(adt).advance_seq(adt, a);
    let fb = Frontier::initial(adt).advance_seq(adt, b);
    fa == fb
}

/// A shareable specification handle, used wherever objects of several types
/// appear in one history.
pub type SharedAdt = Arc<dyn Adt>;

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-state toggle with a partial `fire` op, used to exercise the
    /// engine without depending on the bundled specs.
    struct Toggle;

    impl Adt for Toggle {
        fn initial(&self) -> SpecState {
            SpecState(Value::Bool(false))
        }
        fn step(&self, state: &SpecState, inv: &Inv) -> Vec<(Value, SpecState)> {
            let on = state.0.as_bool();
            match inv.op {
                "toggle" => vec![(Value::Unit, SpecState(Value::Bool(!on)))],
                // `fire` is only defined when on; nondeterministically
                // reports 1 or 2.
                "fire" if on => vec![
                    (Value::Int(1), state.clone()),
                    (Value::Int(2), SpecState(Value::Bool(false))),
                ],
                "fire" => vec![],
                other => panic!("unknown op {other}"),
            }
        }
        fn type_name(&self) -> &'static str {
            "Toggle"
        }
    }

    fn op(inv: Inv, res: impl Into<Value>) -> Operation {
        Operation::new(inv, res)
    }

    #[test]
    fn empty_sequence_is_legal() {
        assert!(legal(&Toggle, &[]));
    }

    #[test]
    fn partial_op_is_illegal_when_undefined() {
        assert!(!legal(&Toggle, &[op(Inv::nullary("fire"), 1)]));
        assert!(legal(
            &Toggle,
            &[op(Inv::nullary("toggle"), Value::Unit), op(Inv::nullary("fire"), 1)]
        ));
    }

    #[test]
    fn nondeterminism_tracks_multiple_states() {
        let t = op(Inv::nullary("toggle"), Value::Unit);
        let f1 = op(Inv::nullary("fire"), 1);
        let f2 = op(Inv::nullary("fire"), 2);
        // After toggle, fire may answer 1 (stays on) or 2 (turns off).
        assert!(legal(&Toggle, &[t.clone(), f1.clone(), f1.clone()]));
        assert!(legal(&Toggle, &[t.clone(), f2.clone()]));
        // After fire->2 the toggle is off, so fire is undefined.
        assert!(!legal(&Toggle, &[t.clone(), f2.clone(), f1.clone()]));
    }

    #[test]
    fn responses_deduplicate_across_states() {
        let t = op(Inv::nullary("toggle"), Value::Unit);
        let rs = responses_after(&Toggle, &[t], &Inv::nullary("fire"));
        assert_eq!(rs, vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn wrong_response_empties_frontier() {
        let bad = op(Inv::nullary("toggle"), Value::Int(9));
        assert!(!legal(&Toggle, &[bad]));
    }

    #[test]
    fn equieffective_compares_state_sets() {
        let t = op(Inv::nullary("toggle"), Value::Unit);
        // toggle;toggle is equieffective to the empty sequence.
        assert!(equieffective(&Toggle, &[t.clone(), t.clone()], &[]));
        assert!(!equieffective(&Toggle, std::slice::from_ref(&t), &[]));
    }

    #[test]
    fn frontier_len_counts_states() {
        let t = op(Inv::nullary("toggle"), Value::Unit);
        let f1 = op(Inv::nullary("fire"), 1);
        let f = Frontier::initial(&Toggle).advance_seq(&Toggle, &[t]);
        assert_eq!(f.len(), 1);
        // fire with response 1 keeps exactly one state.
        assert_eq!(f.advance(&Toggle, &f1).len(), 1);
    }
}
