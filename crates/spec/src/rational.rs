//! Exact rational arithmetic for account balances and interest posting.
//!
//! The paper's appendix implements `Account` over C++ `float`s, with each
//! transaction's intention an affine transformation `b ↦ mul·b + add`.
//! Floating point makes affine composition non-associative, which would
//! force approximate comparisons in our differential tests (runtime versus
//! formal specification). We therefore use exact rationals: `i128`
//! numerator/denominator kept in lowest terms with a positive denominator.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) = 1`.
///
/// Arithmetic panics on overflow of the `i128` intermediates, which cannot
/// occur for the bounded workloads in this repository (balances stay far
/// below 2^64 and interest posting introduces denominators bounded by small
/// powers of 100).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rational {
    num: i128,
    den: i128,
}

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    if a < 0 {
        a = -a;
    }
    if b < 0 {
        b = -b;
    }
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct `num / den` in lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// Construct an integer rational.
    pub fn from_int(n: i64) -> Rational {
        Rational { num: n as i128, den: 1 }
    }

    /// The multiplier `1 + pct/100` used by `Account::post(pct)`.
    pub fn percent_multiplier(pct: Rational) -> Rational {
        Rational::ONE + pct / Rational::from_int(100)
    }

    /// Numerator (lowest terms, sign-carrying).
    pub fn numerator(&self) -> i128 {
        self.num
    }

    /// Denominator (lowest terms, always positive).
    pub fn denominator(&self) -> i128 {
        self.den
    }

    /// True iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True iff the value is negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Approximate conversion for display and metrics only.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, o: Rational) -> Rational {
        Rational::new(self.num * o.den + o.num * self.den, self.den * o.den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, o: Rational) -> Rational {
        Rational::new(self.num * o.den - o.num * self.den, self.den * o.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, o: Rational) -> Rational {
        Rational::new(self.num * o.num, self.den * o.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, o: Rational) -> Rational {
        assert!(o.num != 0, "division by zero rational");
        Rational::new(self.num * o.den, self.den * o.num)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { num: -self.num, den: self.den }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, o: Rational) {
        *self = *self + o;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, o: Rational) {
        *self = *self - o;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, o: Rational) {
        *self = *self * o;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn normalizes_to_lowest_terms() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rational::ZERO);
    }

    #[test]
    fn arithmetic_is_exact() {
        assert_eq!(r(1, 3) + r(1, 6), r(1, 2));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
    }

    #[test]
    fn ordering_uses_cross_multiplication() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < Rational::ZERO);
        assert!(r(7, 2) > r(3, 1));
    }

    #[test]
    fn percent_multiplier_matches_paper_example() {
        // [Post(5), Ok] multiplies the balance by 1.05 = 21/20.
        assert_eq!(Rational::percent_multiplier(Rational::from_int(5)), r(21, 20));
    }

    #[test]
    fn affine_composition_is_exact() {
        // Applying (m1,a1) then (m2,a2) equals applying (m2*m1, m2*a1+a2).
        let b = r(10, 1);
        let (m1, a1) = (r(21, 20), r(5, 1));
        let (m2, a2) = (r(11, 10), r(-3, 1));
        let seq = (b * m1 + a1) * m2 + a2;
        let composed = b * (m2 * m1) + (m2 * a1 + a2);
        assert_eq!(seq, composed);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn assign_ops() {
        let mut x = r(1, 2);
        x += r(1, 2);
        assert_eq!(x, Rational::ONE);
        x -= r(1, 4);
        assert_eq!(x, r(3, 4));
        x *= r(4, 3);
        assert_eq!(x, Rational::ONE);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", r(3, 1)), "3");
        assert_eq!(format!("{}", r(1, 2)), "1/2");
    }
}
