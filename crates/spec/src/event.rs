//! Events at the transaction/object interface (Section 2).

use crate::ids::{ObjectId, Timestamp, TxnId};
use crate::value::{Inv, Value};
use serde::Serialize;
use std::fmt;

/// One of the four event kinds of the paper's model of computation.
#[derive(Clone, PartialEq, Eq, Hash, Serialize)]
pub enum Event {
    /// `⟨inv, X, P⟩` — transaction `txn` invokes an operation on `obj`.
    Invoke {
        /// The object involved.
        obj: ObjectId,
        /// The invoking transaction.
        txn: TxnId,
        /// Operation name and arguments.
        inv: Inv,
    },
    /// `⟨res, X, P⟩` — `obj` returns `res` to `txn`'s pending invocation.
    Respond {
        /// The object involved.
        obj: ObjectId,
        /// The transaction receiving the response.
        txn: TxnId,
        /// The response value.
        res: Value,
    },
    /// `⟨commit(t), X, P⟩` — `obj` learns that `txn` committed with
    /// timestamp `ts`.
    Commit {
        /// The object learning of the commit.
        obj: ObjectId,
        /// The committing transaction.
        txn: TxnId,
        /// The commit timestamp.
        ts: Timestamp,
    },
    /// `⟨abort, X, P⟩` — `obj` learns that `txn` aborted.
    Abort {
        /// The object learning of the abort.
        obj: ObjectId,
        /// The aborting transaction.
        txn: TxnId,
    },
}

impl Event {
    /// The object this event involves.
    pub fn obj(&self) -> ObjectId {
        match self {
            Event::Invoke { obj, .. }
            | Event::Respond { obj, .. }
            | Event::Commit { obj, .. }
            | Event::Abort { obj, .. } => *obj,
        }
    }

    /// The transaction this event involves.
    pub fn txn(&self) -> TxnId {
        match self {
            Event::Invoke { txn, .. }
            | Event::Respond { txn, .. }
            | Event::Commit { txn, .. }
            | Event::Abort { txn, .. } => *txn,
        }
    }

    /// True for invocation and response events (the paper's *op-events*).
    pub fn is_op_event(&self) -> bool {
        matches!(self, Event::Invoke { .. } | Event::Respond { .. })
    }

    /// True for commit and abort events (the paper's *completion events*).
    pub fn is_completion(&self) -> bool {
        matches!(self, Event::Commit { .. } | Event::Abort { .. })
    }
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Invoke { obj, txn, inv } => write!(f, "⟨{inv:?}, {obj}, {txn}⟩"),
            Event::Respond { obj, txn, res } => write!(f, "⟨{res:?}, {obj}, {txn}⟩"),
            Event::Commit { obj, txn, ts } => write!(f, "⟨commit({ts}), {obj}, {txn}⟩"),
            Event::Abort { obj, txn } => write!(f, "⟨abort, {obj}, {txn}⟩"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_classification() {
        let e = Event::Invoke { obj: ObjectId(1), txn: TxnId(2), inv: Inv::nullary("deq") };
        assert_eq!(e.obj(), ObjectId(1));
        assert_eq!(e.txn(), TxnId(2));
        assert!(e.is_op_event());
        assert!(!e.is_completion());
        let c = Event::Commit { obj: ObjectId(1), txn: TxnId(2), ts: Timestamp(5) };
        assert!(c.is_completion());
        assert!(!c.is_op_event());
    }

    #[test]
    fn debug_matches_paper_notation() {
        let e = Event::Commit { obj: ObjectId(0), txn: TxnId(1), ts: Timestamp(7) };
        assert_eq!(format!("{e:?}"), "⟨commit(@7), X0, T1⟩");
    }
}
