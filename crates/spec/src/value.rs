//! Dynamic values and invocations.
//!
//! Histories mix operations on objects of different types, so the formal
//! layer uses a single dynamic representation: an invocation is an operation
//! name plus argument [`Value`]s, and a response is a [`Value`]. Typed
//! runtime objects (crate `hcc-adts`) convert to and from this
//! representation for verification.

use crate::rational::Rational;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dynamic value: operation arguments and responses.
///
/// `Value` is totally ordered and hashable so it can key multisets and
/// appear in specification states.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// The unit (the paper's `Ok` response for operations that return nothing).
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An exact rational (account balances, interest rates).
    Rat(Rational),
    /// A string (directory keys, symbolic item names).
    Str(String),
    /// Absence (e.g., a directory lookup miss).
    Null,
    /// An ordered pair.
    Pair(Box<Value>, Box<Value>),
    /// A list.
    List(Vec<Value>),
}

impl Value {
    /// Shorthand for `Value::Int`.
    pub fn int(n: i64) -> Value {
        Value::Int(n)
    }

    /// Shorthand for `Value::Str`.
    pub fn str(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    /// Shorthand for `Value::Rat`.
    pub fn rat(n: i128, d: i128) -> Value {
        Value::Rat(Rational::new(n, d))
    }

    /// Extract an integer, panicking with a clear message otherwise.
    ///
    /// Specification code uses this on arguments it has itself constructed.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(n) => *n,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// Extract a rational, accepting integer values as exact rationals.
    pub fn as_rat(&self) -> Rational {
        match self {
            Value::Rat(r) => *r,
            Value::Int(n) => Rational::from_int(*n),
            other => panic!("expected Rat, got {other:?}"),
        }
    }

    /// Extract a boolean.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected Bool, got {other:?}"),
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected Str, got {other:?}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "Ok"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Rat(r) => write!(f, "{r}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Null => write!(f, "null"),
            Value::Pair(a, b) => write!(f, "({a:?}, {b:?})"),
            Value::List(xs) => f.debug_list().entries(xs).finish(),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<Rational> for Value {
    fn from(r: Rational) -> Self {
        Value::Rat(r)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// An invocation: an operation name plus arguments.
///
/// The paper's `⟨inv, X, P⟩` events carry "both the name of the operation
/// and its arguments"; `Inv` is that `inv` field.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct Inv {
    /// Operation name, e.g. `"enq"`, `"deq"`, `"credit"`.
    pub op: &'static str,
    /// Operation arguments.
    pub args: Vec<Value>,
}

impl Inv {
    /// Construct an invocation.
    pub fn new(op: &'static str, args: Vec<Value>) -> Inv {
        Inv { op, args }
    }

    /// A zero-argument invocation.
    pub fn nullary(op: &'static str) -> Inv {
        Inv { op, args: Vec::new() }
    }

    /// A one-argument invocation.
    pub fn unary(op: &'static str, arg: impl Into<Value>) -> Inv {
        Inv { op, args: vec![arg.into()] }
    }

    /// A two-argument invocation.
    pub fn binary(op: &'static str, a: impl Into<Value>, b: impl Into<Value>) -> Inv {
        Inv { op, args: vec![a.into(), b.into()] }
    }
}

impl fmt::Debug for Inv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.op)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a:?}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors_roundtrip() {
        assert_eq!(Value::int(5).as_int(), 5);
        assert!(Value::Bool(true).as_bool());
        assert_eq!(Value::str("k").as_str(), "k");
        assert_eq!(Value::Int(3).as_rat(), Rational::from_int(3));
        assert_eq!(Value::rat(1, 2).as_rat(), Rational::new(1, 2));
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn wrong_accessor_panics() {
        Value::Unit.as_int();
    }

    #[test]
    fn values_are_ordered() {
        assert!(Value::Int(1) < Value::Int(2));
        // Cross-variant ordering only needs to be total and stable.
        let mut v = [Value::Int(2), Value::Unit, Value::Int(1)];
        v.sort();
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn inv_debug_is_readable() {
        assert_eq!(format!("{:?}", Inv::unary("enq", 3)), "enq(3)");
        assert_eq!(format!("{:?}", Inv::nullary("deq")), "deq()");
        let i = Inv::binary("insert", "k", 7);
        assert_eq!(format!("{i:?}"), "insert(\"k\", 7)");
    }

    #[test]
    fn inv_equality_includes_args() {
        assert_ne!(Inv::unary("enq", 1), Inv::unary("enq", 2));
        assert_eq!(Inv::unary("enq", 1), Inv::unary("enq", 1));
    }
}
