//! A Set — an extension type whose operations report whether they changed
//! anything, giving rich response-dependent conflict structure.
//!
//! `add(v)` returns `true` iff `v` was absent; `remove(v)` returns `true`
//! iff `v` was present; `contains(v)` reports membership. All three are
//! total. Operations on different elements never depend on one another.

use crate::adt::{Adt, Operation, SpecState};
use crate::value::{Inv, Value};

/// Serial specification of a set of values.
#[derive(Clone, Debug, Default)]
pub struct SetSpec;

impl SetSpec {
    /// Invocation: `add(v)`.
    pub fn add(v: impl Into<Value>) -> Inv {
        Inv::unary("add", v)
    }

    /// Invocation: `remove(v)`.
    pub fn remove(v: impl Into<Value>) -> Inv {
        Inv::unary("remove", v)
    }

    /// Invocation: `contains(v)`.
    pub fn contains(v: impl Into<Value>) -> Inv {
        Inv::unary("contains", v)
    }

    /// Operation instances over `domain`: both outcomes of every operation.
    pub fn alphabet(domain: &[Value]) -> Vec<Operation> {
        let mut ops = Vec::new();
        for v in domain {
            for outcome in [true, false] {
                ops.push(Operation::new(Self::add(v.clone()), outcome));
                ops.push(Operation::new(Self::remove(v.clone()), outcome));
                ops.push(Operation::new(Self::contains(v.clone()), outcome));
            }
        }
        ops
    }

    fn items(state: &SpecState) -> &Vec<Value> {
        match &state.0 {
            Value::List(xs) => xs,
            _ => unreachable!("set state is a list"),
        }
    }
}

impl Adt for SetSpec {
    fn initial(&self) -> SpecState {
        SpecState(Value::List(Vec::new()))
    }

    fn step(&self, state: &SpecState, inv: &Inv) -> Vec<(Value, SpecState)> {
        let items = Self::items(state);
        let v = &inv.args[0];
        let pos = items.binary_search(v);
        match inv.op {
            "add" => match pos {
                Ok(_) => vec![(Value::Bool(false), state.clone())],
                Err(i) => {
                    let mut next = items.clone();
                    next.insert(i, v.clone());
                    vec![(Value::Bool(true), SpecState(Value::List(next)))]
                }
            },
            "remove" => match pos {
                Ok(i) => {
                    let mut next = items.clone();
                    next.remove(i);
                    vec![(Value::Bool(true), SpecState(Value::List(next)))]
                }
                Err(_) => vec![(Value::Bool(false), state.clone())],
            },
            "contains" => vec![(Value::Bool(pos.is_ok()), state.clone())],
            _ => vec![],
        }
    }

    fn type_name(&self) -> &'static str {
        "Set"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adt::legal;

    fn add(v: i64, r: bool) -> Operation {
        Operation::new(SetSpec::add(v), r)
    }
    fn rem(v: i64, r: bool) -> Operation {
        Operation::new(SetSpec::remove(v), r)
    }
    fn has(v: i64, r: bool) -> Operation {
        Operation::new(SetSpec::contains(v), r)
    }

    #[test]
    fn add_reports_novelty() {
        let s = SetSpec;
        assert!(legal(&s, &[add(1, true), add(1, false)]));
        assert!(!legal(&s, &[add(1, true), add(1, true)]));
    }

    #[test]
    fn remove_reports_presence() {
        let s = SetSpec;
        assert!(legal(&s, &[rem(1, false), add(1, true), rem(1, true)]));
        assert!(!legal(&s, &[rem(1, true)]));
    }

    #[test]
    fn contains_tracks_membership() {
        let s = SetSpec;
        assert!(legal(
            &s,
            &[has(2, false), add(2, true), has(2, true), rem(2, true), has(2, false)]
        ));
    }

    #[test]
    fn elements_are_independent() {
        let s = SetSpec;
        assert!(legal(&s, &[add(1, true), add(2, true), rem(1, true), has(2, true)]));
    }
}
