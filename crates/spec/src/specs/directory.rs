//! A Directory (key → value map) — the paper's introduction names
//! directories as a motivating typed object; we give them a full
//! specification as an extension type.
//!
//! `insert(k, v)` binds `k` if unbound (returns whether it did);
//! `remove(k)` unbinds and returns the old value or `Null`;
//! `lookup(k)` returns the bound value or `Null`. Operations on distinct
//! keys never depend on one another, which the relation-derivation engine
//! confirms.

use crate::adt::{Adt, Operation, SpecState};
use crate::value::{Inv, Value};

/// Serial specification of a directory mapping keys to values.
#[derive(Clone, Debug, Default)]
pub struct DirectorySpec;

impl DirectorySpec {
    /// Invocation: `insert(k, v)`.
    pub fn insert(k: impl Into<Value>, v: impl Into<Value>) -> Inv {
        Inv::binary("insert", k, v)
    }

    /// Invocation: `remove(k)`.
    pub fn remove(k: impl Into<Value>) -> Inv {
        Inv::unary("remove", k)
    }

    /// Invocation: `lookup(k)`.
    pub fn lookup(k: impl Into<Value>) -> Inv {
        Inv::unary("lookup", k)
    }

    /// Operation instances over `keys` × `values`, with every observable
    /// outcome (bound / unbound).
    pub fn alphabet(keys: &[Value], values: &[Value]) -> Vec<Operation> {
        let mut ops = Vec::new();
        for k in keys {
            for v in values {
                ops.push(Operation::new(Self::insert(k.clone(), v.clone()), Value::Bool(true)));
                ops.push(Operation::new(Self::insert(k.clone(), v.clone()), Value::Bool(false)));
                ops.push(Operation::new(Self::remove(k.clone()), v.clone()));
                ops.push(Operation::new(Self::lookup(k.clone()), v.clone()));
            }
            ops.push(Operation::new(Self::remove(k.clone()), Value::Null));
            ops.push(Operation::new(Self::lookup(k.clone()), Value::Null));
        }
        ops
    }

    /// State is a sorted association list `[(k, v), ...]`.
    fn entries(state: &SpecState) -> &Vec<Value> {
        match &state.0 {
            Value::List(xs) => xs,
            _ => unreachable!("directory state is a list"),
        }
    }

    fn find(entries: &[Value], k: &Value) -> Result<usize, usize> {
        entries.binary_search_by(|e| match e {
            Value::Pair(ek, _) => ek.as_ref().cmp(k),
            _ => unreachable!("directory entries are pairs"),
        })
    }
}

impl Adt for DirectorySpec {
    fn initial(&self) -> SpecState {
        SpecState(Value::List(Vec::new()))
    }

    fn step(&self, state: &SpecState, inv: &Inv) -> Vec<(Value, SpecState)> {
        let entries = Self::entries(state);
        let k = &inv.args[0];
        let pos = Self::find(entries, k);
        match inv.op {
            "insert" => match pos {
                Ok(_) => vec![(Value::Bool(false), state.clone())],
                Err(i) => {
                    let mut next = entries.clone();
                    next.insert(i, Value::Pair(Box::new(k.clone()), Box::new(inv.args[1].clone())));
                    vec![(Value::Bool(true), SpecState(Value::List(next)))]
                }
            },
            "remove" => match pos {
                Ok(i) => {
                    let old = match &entries[i] {
                        Value::Pair(_, v) => v.as_ref().clone(),
                        _ => unreachable!(),
                    };
                    let mut next = entries.clone();
                    next.remove(i);
                    vec![(old, SpecState(Value::List(next)))]
                }
                Err(_) => vec![(Value::Null, state.clone())],
            },
            "lookup" => match pos {
                Ok(i) => {
                    let v = match &entries[i] {
                        Value::Pair(_, v) => v.as_ref().clone(),
                        _ => unreachable!(),
                    };
                    vec![(v, state.clone())]
                }
                Err(_) => vec![(Value::Null, state.clone())],
            },
            _ => vec![],
        }
    }

    fn type_name(&self) -> &'static str {
        "Directory"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adt::legal;

    fn ins(k: &str, v: i64, r: bool) -> Operation {
        Operation::new(DirectorySpec::insert(k, v), r)
    }
    fn rem(k: &str, r: impl Into<Value>) -> Operation {
        Operation::new(DirectorySpec::remove(k), r)
    }
    fn get(k: &str, r: impl Into<Value>) -> Operation {
        Operation::new(DirectorySpec::lookup(k), r)
    }

    #[test]
    fn insert_binds_once() {
        let d = DirectorySpec;
        assert!(legal(&d, &[ins("a", 1, true), ins("a", 2, false), get("a", 1)]));
        assert!(!legal(&d, &[ins("a", 1, true), ins("a", 2, true)]));
    }

    #[test]
    fn remove_returns_old_binding() {
        let d = DirectorySpec;
        assert!(legal(&d, &[ins("a", 1, true), rem("a", 1), get("a", Value::Null)]));
        assert!(legal(&d, &[rem("a", Value::Null)]));
        assert!(!legal(&d, &[rem("a", 1)]));
    }

    #[test]
    fn lookup_misses_return_null() {
        let d = DirectorySpec;
        assert!(legal(&d, &[get("zzz", Value::Null)]));
        assert!(!legal(&d, &[get("zzz", 3)]));
    }

    #[test]
    fn keys_are_independent() {
        let d = DirectorySpec;
        assert!(legal(&d, &[ins("a", 1, true), ins("b", 2, true), rem("a", 1), get("b", 2)]));
    }

    #[test]
    fn reinsert_after_remove() {
        let d = DirectorySpec;
        assert!(legal(&d, &[ins("a", 1, true), rem("a", 1), ins("a", 2, true), get("a", 2)]));
    }
}
