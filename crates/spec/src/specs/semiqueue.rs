//! The Semiqueue (Section 4.3, Table IV).
//!
//! `Ins` inserts an item; `Rem` *nondeterministically* removes and returns
//! some present item (and, like `Deq`, is undefined when the semiqueue is
//! empty). The nondeterminism is the point: `Rem` operations that return
//! different items need not conflict, and `Ins` never conflicts with `Rem`.

use crate::adt::{Adt, Operation, SpecState};
use crate::value::{Inv, Value};

/// Serial specification of a Semiqueue (a multiset with nondeterministic
/// removal).
#[derive(Clone, Debug, Default)]
pub struct SemiqueueSpec;

impl SemiqueueSpec {
    /// Invocation: `ins(v)`.
    pub fn ins(v: impl Into<Value>) -> Inv {
        Inv::unary("ins", v)
    }

    /// Invocation: `rem()`.
    pub fn rem() -> Inv {
        Inv::nullary("rem")
    }

    /// Operation instances over `domain`: every `ins(v)→Ok` and `rem()→v`.
    pub fn alphabet(domain: &[Value]) -> Vec<Operation> {
        let mut ops = Vec::new();
        for v in domain {
            ops.push(Operation::new(Self::ins(v.clone()), Value::Unit));
            ops.push(Operation::new(Self::rem(), v.clone()));
        }
        ops
    }

    /// State is a multiset encoded as a sorted list.
    fn items(state: &SpecState) -> &Vec<Value> {
        match &state.0 {
            Value::List(xs) => xs,
            _ => unreachable!("semiqueue state is a list"),
        }
    }
}

impl Adt for SemiqueueSpec {
    fn initial(&self) -> SpecState {
        SpecState(Value::List(Vec::new()))
    }

    fn step(&self, state: &SpecState, inv: &Inv) -> Vec<(Value, SpecState)> {
        let items = Self::items(state);
        match inv.op {
            "ins" => {
                let mut next = items.clone();
                let v = inv.args[0].clone();
                let pos = next.partition_point(|x| *x <= v);
                next.insert(pos, v);
                vec![(Value::Unit, SpecState(Value::List(next)))]
            }
            "rem" => {
                // One successor per *distinct* present item.
                let mut out = Vec::new();
                let mut last: Option<&Value> = None;
                for (i, v) in items.iter().enumerate() {
                    if last == Some(v) {
                        continue;
                    }
                    last = Some(v);
                    let mut next = items.clone();
                    next.remove(i);
                    out.push((v.clone(), SpecState(Value::List(next))));
                }
                out
            }
            _ => vec![],
        }
    }

    fn type_name(&self) -> &'static str {
        "Semiqueue"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adt::{legal, responses_after};

    fn i(v: i64) -> Operation {
        Operation::new(SemiqueueSpec::ins(v), Value::Unit)
    }
    fn r(v: i64) -> Operation {
        Operation::new(SemiqueueSpec::rem(), v)
    }

    #[test]
    fn rem_returns_any_present_item() {
        let s = SemiqueueSpec;
        assert!(legal(&s, &[i(1), i(2), r(2), r(1)]));
        assert!(legal(&s, &[i(1), i(2), r(1), r(2)]));
    }

    #[test]
    fn rem_of_absent_item_is_illegal() {
        let s = SemiqueueSpec;
        assert!(!legal(&s, &[i(1), r(2)]));
        assert!(!legal(&s, &[r(1)]));
    }

    #[test]
    fn multiset_semantics() {
        let s = SemiqueueSpec;
        assert!(legal(&s, &[i(5), i(5), r(5), r(5)]));
        assert!(!legal(&s, &[i(5), r(5), r(5)]));
    }

    #[test]
    fn responses_enumerate_distinct_items() {
        let s = SemiqueueSpec;
        let rs = responses_after(&s, &[i(1), i(2), i(2)], &SemiqueueSpec::rem());
        assert_eq!(rs, vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn nondeterminism_keeps_multiple_states_live() {
        // After ins(1) ins(2) rem()→1, a later rem()→2 must still succeed.
        let s = SemiqueueSpec;
        assert!(legal(&s, &[i(1), i(2), r(1), r(2)]));
    }

    #[test]
    fn alphabet_size() {
        let dom = vec![Value::Int(1), Value::Int(2)];
        assert_eq!(SemiqueueSpec::alphabet(&dom).len(), 4);
    }
}
