//! The File type (Section 4.3, Table I).
//!
//! ```text
//! Read  = Operation() Returns(Value)
//! Write = Operation(Value)
//! ```
//!
//! `Read` returns the most recently written value. Its unique minimal
//! dependency relation is `{ (Read()→v, Write(v')) : v ≠ v' }`, the
//! generalized Thomas Write Rule: blind writes never conflict.

use crate::adt::{Adt, Operation, SpecState};
use crate::value::{Inv, Value};

/// Serial specification of a File (a read/write register).
#[derive(Clone, Debug)]
pub struct FileSpec {
    /// The value read before any write occurs.
    pub initial: Value,
}

impl FileSpec {
    /// A file whose initial content is `initial`.
    pub fn new(initial: Value) -> FileSpec {
        FileSpec { initial }
    }

    /// Invocation: `read()`.
    pub fn read() -> Inv {
        Inv::nullary("read")
    }

    /// Invocation: `write(v)`.
    pub fn write(v: impl Into<Value>) -> Inv {
        Inv::unary("write", v)
    }

    /// The operation instances over `domain` used for bounded relation
    /// derivation: every `write(v)` and every `read()→v`.
    pub fn alphabet(domain: &[Value]) -> Vec<Operation> {
        let mut ops = Vec::new();
        for v in domain {
            ops.push(Operation::new(Self::write(v.clone()), Value::Unit));
            ops.push(Operation::new(Self::read(), v.clone()));
        }
        ops
    }
}

impl Default for FileSpec {
    fn default() -> Self {
        FileSpec::new(Value::Int(0))
    }
}

impl Adt for FileSpec {
    fn initial(&self) -> SpecState {
        SpecState(self.initial.clone())
    }

    fn step(&self, state: &SpecState, inv: &Inv) -> Vec<(Value, SpecState)> {
        match inv.op {
            "read" => vec![(state.0.clone(), state.clone())],
            "write" => vec![(Value::Unit, SpecState(inv.args[0].clone()))],
            _ => vec![],
        }
    }

    fn type_name(&self) -> &'static str {
        "File"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adt::{legal, responses_after};

    fn w(v: i64) -> Operation {
        Operation::new(FileSpec::write(v), Value::Unit)
    }
    fn r(v: i64) -> Operation {
        Operation::new(FileSpec::read(), v)
    }

    #[test]
    fn read_returns_last_written() {
        let f = FileSpec::default();
        assert!(legal(&f, &[w(1), w(2), r(2)]));
        assert!(!legal(&f, &[w(1), w(2), r(1)]));
    }

    #[test]
    fn read_of_initial_value() {
        let f = FileSpec::new(Value::Int(7));
        assert!(legal(&f, &[r(7)]));
        assert!(!legal(&f, &[r(0)]));
    }

    #[test]
    fn reads_are_stable() {
        let f = FileSpec::default();
        assert!(legal(&f, &[w(3), r(3), r(3)]));
        assert!(!legal(&f, &[w(3), r(3), r(4)]));
    }

    #[test]
    fn responses_enumerate_current_value_only() {
        let f = FileSpec::default();
        assert_eq!(responses_after(&f, &[w(5)], &FileSpec::read()), vec![Value::Int(5)]);
    }

    #[test]
    fn unknown_op_is_illegal() {
        let f = FileSpec::default();
        assert!(!legal(&f, &[Operation::new(Inv::nullary("pop"), Value::Unit)]));
    }

    #[test]
    fn alphabet_covers_reads_and_writes() {
        let dom = vec![Value::Int(1), Value::Int(2)];
        let a = FileSpec::alphabet(&dom);
        assert_eq!(a.len(), 4);
    }
}
