//! Serial specifications for the paper's example data types (Section 4.3)
//! and three extension types used by the broader test suite.
//!
//! Every specification implements [`crate::adt::Adt`] and additionally
//! exposes an `alphabet` constructor producing the finite set of operation
//! *instances* over a small value domain; `hcc-relations` uses these
//! alphabets for bounded derivation of dependency and commutativity
//! relations.

mod account;
mod counter;
mod directory;
mod file;
mod queue;
mod semiqueue;
mod set;

pub use account::AccountSpec;
pub use counter::CounterSpec;
pub use directory::DirectorySpec;
pub use file::FileSpec;
pub use queue::QueueSpec;
pub use semiqueue::SemiqueueSpec;
pub use set::SetSpec;
