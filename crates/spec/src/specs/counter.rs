//! A Counter — an extension type (not in the paper) with commuting blind
//! updates and a response-sensitive `read`.
//!
//! `inc(n)` and `dec(n)` are total and commute with one another; `read()`
//! returns the current value and is invalidated by any update. The type
//! exercises the derivation machinery on an object where the hybrid and
//! commutativity relations coincide for updates but differ from naive
//! read/write locking.

use crate::adt::{Adt, Operation, SpecState};
use crate::value::{Inv, Value};

/// Serial specification of an integer counter.
#[derive(Clone, Debug, Default)]
pub struct CounterSpec;

impl CounterSpec {
    /// Invocation: `inc(n)`.
    pub fn inc(n: i64) -> Inv {
        Inv::unary("inc", n)
    }

    /// Invocation: `dec(n)`.
    pub fn dec(n: i64) -> Inv {
        Inv::unary("dec", n)
    }

    /// Invocation: `read()`.
    pub fn read() -> Inv {
        Inv::nullary("read")
    }

    /// Operation instances: `inc`/`dec` over `deltas`, `read()→v` over
    /// `reads`.
    pub fn alphabet(deltas: &[i64], reads: &[i64]) -> Vec<Operation> {
        let mut ops = Vec::new();
        for &d in deltas {
            ops.push(Operation::new(Self::inc(d), Value::Unit));
            ops.push(Operation::new(Self::dec(d), Value::Unit));
        }
        for &v in reads {
            ops.push(Operation::new(Self::read(), v));
        }
        ops
    }
}

impl Adt for CounterSpec {
    fn initial(&self) -> SpecState {
        SpecState(Value::Int(0))
    }

    fn step(&self, state: &SpecState, inv: &Inv) -> Vec<(Value, SpecState)> {
        let n = state.0.as_int();
        match inv.op {
            "inc" => vec![(Value::Unit, SpecState(Value::Int(n + inv.args[0].as_int())))],
            "dec" => vec![(Value::Unit, SpecState(Value::Int(n - inv.args[0].as_int())))],
            "read" => vec![(Value::Int(n), state.clone())],
            _ => vec![],
        }
    }

    fn type_name(&self) -> &'static str {
        "Counter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adt::legal;

    fn inc(n: i64) -> Operation {
        Operation::new(CounterSpec::inc(n), Value::Unit)
    }
    fn dec(n: i64) -> Operation {
        Operation::new(CounterSpec::dec(n), Value::Unit)
    }
    fn read(v: i64) -> Operation {
        Operation::new(CounterSpec::read(), v)
    }

    #[test]
    fn updates_accumulate() {
        let c = CounterSpec;
        assert!(legal(&c, &[inc(3), dec(1), read(2)]));
        assert!(!legal(&c, &[inc(3), dec(1), read(3)]));
    }

    #[test]
    fn counter_may_go_negative() {
        let c = CounterSpec;
        assert!(legal(&c, &[dec(5), read(-5)]));
    }

    #[test]
    fn read_is_repeatable() {
        let c = CounterSpec;
        assert!(legal(&c, &[read(0), read(0), inc(1), read(1)]));
    }
}
