//! The Account type (Section 4.3, Tables V and VI; appendix).
//!
//! ```text
//! Credit = Operation(Dollar)
//! Post   = Operation(Percent)
//! Debit  = Operation(Dollar) Signals(Overdraft)
//! ```
//!
//! `Credit` increments the balance; `Post(p)` multiplies it by `1 + p/100`;
//! `Debit` decrements it, or signals `Overdraft` (leaving the balance
//! unchanged) when the amount exceeds the balance. The dependency relation
//! (Table V) is *response-aware*: a successful debit never depends on
//! credits or interest postings, only an attempted overdraft does.
//!
//! Responses: `Value::Unit` for Credit/Post, `Value::Bool(true)` for a
//! successful Debit and `Value::Bool(false)` for an Overdraft signal.

use crate::adt::{Adt, Operation, SpecState};
use crate::rational::Rational;
use crate::value::{Inv, Value};

/// Serial specification of a bank account with interest posting.
///
/// Amounts and percentages are positive rationals; the balance is a
/// rational and starts at zero, so it is a state invariant that the balance
/// is never negative (a successful debit requires sufficient funds).
#[derive(Clone, Debug, Default)]
pub struct AccountSpec;

impl AccountSpec {
    /// Invocation: `credit(amount)`.
    pub fn credit(amount: Rational) -> Inv {
        Inv::unary("credit", amount)
    }

    /// Invocation: `post(percent)`.
    pub fn post(percent: Rational) -> Inv {
        Inv::unary("post", percent)
    }

    /// Invocation: `debit(amount)`.
    pub fn debit(amount: Rational) -> Inv {
        Inv::unary("debit", amount)
    }

    /// The successful-debit response.
    pub const OK: Value = Value::Bool(true);
    /// The overdraft response.
    pub const OVERDRAFT: Value = Value::Bool(false);

    /// Operation instances over the given credit/debit amounts and posting
    /// percentages: credits, posts, and both outcomes of every debit.
    pub fn alphabet(amounts: &[i64], percents: &[i64]) -> Vec<Operation> {
        let r = |ns: &[i64]| ns.iter().map(|&n| Rational::from_int(n)).collect::<Vec<_>>();
        Self::alphabet_ext(&r(amounts), &r(amounts), &r(percents))
    }

    /// Like [`Self::alphabet`], but with independent (rational) credit and
    /// debit amounts. Bounded derivation needs fractional credit amounts as
    /// *witnesses*: `post(p)` invalidates an overdraft of `m` only from a
    /// balance in `[100m/(100+p), m)`, a window that integer credits cannot
    /// reach for small `p`. Over the paper's dense amount domain such
    /// balances always exist, so the finite alphabet must include them.
    pub fn alphabet_ext(
        credits: &[Rational],
        debits: &[Rational],
        percents: &[Rational],
    ) -> Vec<Operation> {
        let mut ops = Vec::new();
        for &a in credits {
            ops.push(Operation::new(Self::credit(a), Value::Unit));
        }
        for &a in debits {
            ops.push(Operation::new(Self::debit(a), Self::OK));
            ops.push(Operation::new(Self::debit(a), Self::OVERDRAFT));
        }
        for &p in percents {
            ops.push(Operation::new(Self::post(p), Value::Unit));
        }
        ops
    }

    fn balance(state: &SpecState) -> Rational {
        state.0.as_rat()
    }
}

impl Adt for AccountSpec {
    fn initial(&self) -> SpecState {
        SpecState(Value::Rat(Rational::ZERO))
    }

    fn step(&self, state: &SpecState, inv: &Inv) -> Vec<(Value, SpecState)> {
        let bal = Self::balance(state);
        match inv.op {
            "credit" => {
                let amt = inv.args[0].as_rat();
                vec![(Value::Unit, SpecState(Value::Rat(bal + amt)))]
            }
            "post" => {
                let mult = Rational::percent_multiplier(inv.args[0].as_rat());
                vec![(Value::Unit, SpecState(Value::Rat(bal * mult)))]
            }
            "debit" => {
                let amt = inv.args[0].as_rat();
                if bal >= amt {
                    vec![(Self::OK, SpecState(Value::Rat(bal - amt)))]
                } else {
                    // Overdraft: signal and leave the balance unchanged.
                    vec![(Self::OVERDRAFT, state.clone())]
                }
            }
            _ => vec![],
        }
    }

    fn type_name(&self) -> &'static str {
        "Account"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adt::{legal, responses_after};

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }
    fn credit(n: i64) -> Operation {
        Operation::new(AccountSpec::credit(r(n)), Value::Unit)
    }
    fn post(n: i64) -> Operation {
        Operation::new(AccountSpec::post(r(n)), Value::Unit)
    }
    fn debit_ok(n: i64) -> Operation {
        Operation::new(AccountSpec::debit(r(n)), AccountSpec::OK)
    }
    fn overdraft(n: i64) -> Operation {
        Operation::new(AccountSpec::debit(r(n)), AccountSpec::OVERDRAFT)
    }

    #[test]
    fn debit_requires_funds() {
        let a = AccountSpec;
        assert!(legal(&a, &[credit(10), debit_ok(7)]));
        assert!(!legal(&a, &[credit(5), debit_ok(7)]));
    }

    #[test]
    fn overdraft_leaves_balance_unchanged() {
        let a = AccountSpec;
        assert!(legal(&a, &[credit(5), overdraft(7), debit_ok(5)]));
        assert!(!legal(&a, &[credit(10), overdraft(7)]));
    }

    #[test]
    fn post_multiplies_exactly() {
        // 100 credited, 5% posted => 105 available.
        let a = AccountSpec;
        assert!(legal(&a, &[credit(100), post(5), debit_ok(105)]));
        assert!(!legal(&a, &[credit(100), post(5), debit_ok(106)]));
    }

    #[test]
    fn posting_on_zero_balance_is_a_noop() {
        let a = AccountSpec;
        assert!(legal(&a, &[post(5), overdraft(1)]));
    }

    #[test]
    fn responses_are_deterministic_per_state() {
        let a = AccountSpec;
        assert_eq!(
            responses_after(&a, &[credit(3)], &AccountSpec::debit(r(3))),
            vec![AccountSpec::OK]
        );
        assert_eq!(
            responses_after(&a, &[credit(3)], &AccountSpec::debit(r(4))),
            vec![AccountSpec::OVERDRAFT]
        );
    }

    #[test]
    fn alphabet_contains_both_debit_outcomes() {
        let a = AccountSpec::alphabet(&[1, 2], &[5]);
        // 2 credits + 2*2 debit outcomes + 1 post.
        assert_eq!(a.len(), 7);
        assert!(a.iter().any(|o| o.res == AccountSpec::OVERDRAFT));
    }
}
