//! The FIFO Queue (Section 4.3, Tables II and III).
//!
//! `Enq` places an item at the end; `Deq` removes and returns the item at
//! the front, and is *partial*: on an empty queue it is undefined (the
//! implementation blocks). The queue famously has **two distinct minimal
//! dependency relations** (Tables II and III), which `hcc-relations`
//! rediscovers mechanically.

use crate::adt::{Adt, Operation, SpecState};
use crate::value::{Inv, Value};

/// Serial specification of a FIFO queue.
#[derive(Clone, Debug, Default)]
pub struct QueueSpec;

impl QueueSpec {
    /// Invocation: `enq(v)`.
    pub fn enq(v: impl Into<Value>) -> Inv {
        Inv::unary("enq", v)
    }

    /// Invocation: `deq()`.
    pub fn deq() -> Inv {
        Inv::nullary("deq")
    }

    /// Operation instances over `domain`: every `enq(v)→Ok` and `deq()→v`.
    pub fn alphabet(domain: &[Value]) -> Vec<Operation> {
        let mut ops = Vec::new();
        for v in domain {
            ops.push(Operation::new(Self::enq(v.clone()), Value::Unit));
            ops.push(Operation::new(Self::deq(), v.clone()));
        }
        ops
    }

    fn items(state: &SpecState) -> &Vec<Value> {
        match &state.0 {
            Value::List(xs) => xs,
            _ => unreachable!("queue state is a list"),
        }
    }
}

impl Adt for QueueSpec {
    fn initial(&self) -> SpecState {
        SpecState(Value::List(Vec::new()))
    }

    fn step(&self, state: &SpecState, inv: &Inv) -> Vec<(Value, SpecState)> {
        let items = Self::items(state);
        match inv.op {
            "enq" => {
                let mut next = items.clone();
                next.push(inv.args[0].clone());
                vec![(Value::Unit, SpecState(Value::List(next)))]
            }
            "deq" => {
                // Partial: undefined on the empty queue.
                match items.split_first() {
                    None => vec![],
                    Some((front, rest)) => {
                        vec![(front.clone(), SpecState(Value::List(rest.to_vec())))]
                    }
                }
            }
            _ => vec![],
        }
    }

    fn type_name(&self) -> &'static str {
        "FIFO-Queue"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adt::{legal, responses_after};

    fn e(v: i64) -> Operation {
        Operation::new(QueueSpec::enq(v), Value::Unit)
    }
    fn d(v: i64) -> Operation {
        Operation::new(QueueSpec::deq(), v)
    }

    #[test]
    fn fifo_order() {
        let q = QueueSpec;
        assert!(legal(&q, &[e(1), e(2), d(1), d(2)]));
        assert!(!legal(&q, &[e(1), e(2), d(2)]));
    }

    #[test]
    fn deq_on_empty_is_undefined() {
        let q = QueueSpec;
        assert!(!legal(&q, &[d(1)]));
        assert!(!legal(&q, &[e(1), d(1), d(1)]));
    }

    #[test]
    fn duplicate_items_are_fine() {
        let q = QueueSpec;
        assert!(legal(&q, &[e(7), e(7), d(7), d(7)]));
    }

    #[test]
    fn responses_are_the_front_item() {
        let q = QueueSpec;
        assert_eq!(responses_after(&q, &[e(4), e(5)], &QueueSpec::deq()), vec![Value::Int(4)]);
        assert!(responses_after(&q, &[], &QueueSpec::deq()).is_empty());
    }

    #[test]
    fn paper_section_3_2_example() {
        // OpSeq(H) = [Enq(3), Ok] [Deq, 3] is legal.
        let q = QueueSpec;
        assert!(legal(&q, &[e(3), d(3)]));
    }

    #[test]
    fn alphabet_size() {
        let dom = vec![Value::Int(1), Value::Int(2)];
        assert_eq!(QueueSpec::alphabet(&dom).len(), 4);
    }
}
