//! Histories: well-formed event sequences, and the relations over them
//! (Section 2), plus `OpSeq` and `Serial` (Section 3.2).

use crate::adt::Operation;
use crate::event::Event;
use crate::ids::{ObjectId, Timestamp, TxnId};
use crate::value::Inv;
use serde::Serialize;
use std::collections::{BTreeSet, HashMap, HashSet};

/// A sequence of events. Most methods apply to arbitrary event sequences;
/// [`History::well_formed`] checks the paper's constraints.
#[derive(Clone, Default, PartialEq, Eq, Serialize)]
pub struct History {
    events: Vec<Event>,
}

/// A violated well-formedness constraint (Section 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WfError {
    /// A transaction invoked an operation while another invocation was
    /// pending, or its op-events do not alternate starting with an
    /// invocation.
    InvocationWhilePending(TxnId),
    /// A response was generated for a transaction with no pending
    /// invocation.
    ResponseWithoutPending(TxnId),
    /// A response event involves a different object than the immediately
    /// preceding invocation.
    ResponseWrongObject(TxnId),
    /// A transaction both commits and aborts.
    CommitAndAbort(TxnId),
    /// A transaction commits while an invocation is pending.
    CommitWhilePending(TxnId),
    /// A committed transaction subsequently invokes an operation.
    OpAfterCommit(TxnId),
    /// Two commit events for the same transaction carry different
    /// timestamps.
    InconsistentTimestamp(TxnId),
    /// Two different transactions committed with the same timestamp.
    DuplicateTimestamp(TxnId, TxnId),
    /// The timestamp order contradicts the per-object `precedes` order:
    /// `(P, Q) ∈ precedes(H|X)` but `ts(P) ≥ ts(Q)`.
    TimestampContradictsPrecedes(TxnId, TxnId),
}

impl std::fmt::Display for WfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WfError::InvocationWhilePending(t) => {
                write!(f, "transaction {t:?} invoked an operation while another was pending")
            }
            WfError::ResponseWithoutPending(t) => {
                write!(f, "a response was generated for {t:?} with no pending invocation")
            }
            WfError::ResponseWrongObject(t) => {
                write!(f, "a response for {t:?} names a different object than its invocation")
            }
            WfError::CommitAndAbort(t) => write!(f, "transaction {t:?} both commits and aborts"),
            WfError::CommitWhilePending(t) => {
                write!(f, "transaction {t:?} commits while an invocation is pending")
            }
            WfError::OpAfterCommit(t) => {
                write!(f, "committed transaction {t:?} subsequently invokes an operation")
            }
            WfError::InconsistentTimestamp(t) => {
                write!(f, "commit events of {t:?} carry different timestamps")
            }
            WfError::DuplicateTimestamp(a, b) => {
                write!(f, "transactions {a:?} and {b:?} committed with the same timestamp")
            }
            WfError::TimestampContradictsPrecedes(a, b) => {
                write!(
                    f,
                    "{a:?} precedes {b:?} at some object but does not have the earlier timestamp"
                )
            }
        }
    }
}

impl std::error::Error for WfError {}

impl History {
    /// The empty history (the paper's `Λ`).
    pub fn new() -> History {
        History::default()
    }

    /// Build a history from events.
    pub fn from_events(events: Vec<Event>) -> History {
        History { events }
    }

    /// Append one event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// The events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True iff the history contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `H | X` — the subsequence involving object `x`.
    pub fn restrict_obj(&self, x: ObjectId) -> History {
        History { events: self.events.iter().filter(|e| e.obj() == x).cloned().collect() }
    }

    /// `H | P` — the subsequence involving transaction `p`.
    pub fn restrict_txn(&self, p: TxnId) -> History {
        History { events: self.events.iter().filter(|e| e.txn() == p).cloned().collect() }
    }

    /// `H | C` — the subsequence involving any transaction in `c`.
    pub fn restrict_txns(&self, c: &HashSet<TxnId>) -> History {
        History { events: self.events.iter().filter(|e| c.contains(&e.txn())).cloned().collect() }
    }

    /// All transactions appearing in the history, in first-appearance order.
    pub fn txns(&self) -> Vec<TxnId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for e in &self.events {
            if seen.insert(e.txn()) {
                out.push(e.txn());
            }
        }
        out
    }

    /// All objects appearing in the history, in first-appearance order.
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for e in &self.events {
            if seen.insert(e.obj()) {
                out.push(e.obj());
            }
        }
        out
    }

    /// `committed(H)` with each transaction's timestamp (first commit event
    /// wins; well-formedness makes them all agree).
    pub fn committed(&self) -> HashMap<TxnId, Timestamp> {
        let mut m = HashMap::new();
        for e in &self.events {
            if let Event::Commit { txn, ts, .. } = e {
                m.entry(*txn).or_insert(*ts);
            }
        }
        m
    }

    /// `aborted(H)` — transactions with an abort event.
    pub fn aborted(&self) -> HashSet<TxnId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Abort { txn, .. } => Some(*txn),
                _ => None,
            })
            .collect()
    }

    /// `completed(H) = committed(H) ∪ aborted(H)`.
    pub fn completed(&self) -> HashSet<TxnId> {
        let mut s: HashSet<TxnId> = self.committed().keys().copied().collect();
        s.extend(self.aborted());
        s
    }

    /// `permanent(H) = H | committed(H)`.
    pub fn permanent(&self) -> History {
        let c: HashSet<TxnId> = self.committed().keys().copied().collect();
        self.restrict_txns(&c)
    }

    /// True iff no abort event occurs (`aborted(H) = ∅`).
    pub fn is_failure_free(&self) -> bool {
        self.aborted().is_empty()
    }

    /// True iff events for different transactions are not interleaved.
    pub fn is_serial(&self) -> bool {
        let mut seen: Vec<TxnId> = Vec::new();
        for e in &self.events {
            match seen.last() {
                Some(&last) if last == e.txn() => {}
                _ => {
                    if seen.contains(&e.txn()) {
                        return false;
                    }
                    seen.push(e.txn());
                }
            }
        }
        true
    }

    /// `precedes(H)`: `(P, Q)` iff some operation invoked by `Q` returns a
    /// response after `P` commits in `H`.
    pub fn precedes(&self) -> HashSet<(TxnId, TxnId)> {
        let mut committed_so_far: BTreeSet<TxnId> = BTreeSet::new();
        let mut rel = HashSet::new();
        for e in &self.events {
            match e {
                Event::Commit { txn, .. } => {
                    committed_so_far.insert(*txn);
                }
                Event::Respond { txn: q, .. } => {
                    for &p in &committed_so_far {
                        if p != *q {
                            rel.insert((p, *q));
                        }
                    }
                }
                _ => {}
            }
        }
        rel
    }

    /// `TS(H)`: `(P, Q)` iff both commit and `ts(P) < ts(Q)`.
    pub fn ts_rel(&self) -> HashSet<(TxnId, TxnId)> {
        let c = self.committed();
        let mut rel = HashSet::new();
        for (&p, &tp) in &c {
            for (&q, &tq) in &c {
                if tp < tq {
                    rel.insert((p, q));
                }
            }
        }
        rel
    }

    /// `Known(H) = precedes(H) ∪ TS(H)` — what is known about the timestamp
    /// order on all transactions (Section 3.4).
    pub fn known(&self) -> HashSet<(TxnId, TxnId)> {
        let mut k = self.precedes();
        k.extend(self.ts_rel());
        k
    }

    /// The committed transactions in timestamp order.
    pub fn ts_order(&self) -> Vec<TxnId> {
        let mut v: Vec<(Timestamp, TxnId)> =
            self.committed().into_iter().map(|(p, t)| (t, p)).collect();
        v.sort();
        v.into_iter().map(|(_, p)| p).collect()
    }

    /// `OpSeq(H | P)` restricted to object `x`: the operations `p` executed
    /// at `x`, pairing each invocation with its response and discarding
    /// completion events and a trailing pending invocation.
    pub fn ops_of(&self, p: TxnId, x: ObjectId) -> Vec<Operation> {
        let mut out = Vec::new();
        let mut pending: Option<(ObjectId, Inv)> = None;
        for e in &self.events {
            if e.txn() != p {
                continue;
            }
            match e {
                Event::Invoke { obj, inv, .. } => pending = Some((*obj, inv.clone())),
                Event::Respond { obj, res, .. } => {
                    if let Some((o, inv)) = pending.take() {
                        debug_assert_eq!(o, *obj, "response/invocation object mismatch");
                        if o == x {
                            out.push(Operation { inv, res: res.clone() });
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// `OpSeq(Serial(H, T)) | X`: the operation sequence at `x` when the
    /// transactions of `H` are run serially in order `order`.
    ///
    /// Because `Serial(H, T) = H|P₁ • … • H|Pₙ`, the restriction to `x` is
    /// the concatenation of each transaction's operations at `x`.
    pub fn serial_ops_at(&self, order: &[TxnId], x: ObjectId) -> Vec<Operation> {
        let mut out = Vec::new();
        for &p in order {
            out.extend(self.ops_of(p, x));
        }
        out
    }

    /// `Serial(H, T)` as a history: events reordered transaction-by-
    /// transaction in the given order. Transactions of `H` absent from
    /// `order` are dropped.
    pub fn serialized(&self, order: &[TxnId]) -> History {
        let mut events = Vec::with_capacity(self.events.len());
        for &p in order {
            events.extend(self.restrict_txn(p).events);
        }
        History { events }
    }

    /// Remove transaction `p`'s pending invocation event, if any: the last
    /// `Invoke` by `p` that is not followed by a `Respond` by `p`.
    ///
    /// Used when a client gives up on a blocked invocation ("the response
    /// is discarded, and the invocation is later retried" — the retry is a
    /// fresh invocation event). Returns true if an event was removed.
    pub fn cancel_pending_invocation(&mut self, p: TxnId) -> bool {
        for i in (0..self.events.len()).rev() {
            match &self.events[i] {
                Event::Respond { txn, .. } if *txn == p => return false,
                Event::Invoke { txn, .. } if *txn == p => {
                    self.events.remove(i);
                    return true;
                }
                _ => {}
            }
        }
        false
    }

    /// Check every well-formedness constraint of Section 2.
    pub fn well_formed(&self) -> Result<(), WfError> {
        self.check_txn_constraints()?;
        self.check_timestamp_constraints()
    }

    fn check_txn_constraints(&self) -> Result<(), WfError> {
        #[derive(Default)]
        struct TxnState {
            pending_obj: Option<ObjectId>,
            committed: bool,
            aborted: bool,
            ts: Option<Timestamp>,
        }
        let mut st: HashMap<TxnId, TxnState> = HashMap::new();
        for e in &self.events {
            let s = st.entry(e.txn()).or_default();
            match e {
                Event::Invoke { txn, .. } => {
                    if s.pending_obj.is_some() {
                        return Err(WfError::InvocationWhilePending(*txn));
                    }
                    if s.committed {
                        return Err(WfError::OpAfterCommit(*txn));
                    }
                    s.pending_obj = Some(e.obj());
                }
                Event::Respond { txn, obj, .. } => match s.pending_obj.take() {
                    None => return Err(WfError::ResponseWithoutPending(*txn)),
                    Some(o) if o != *obj => return Err(WfError::ResponseWrongObject(*txn)),
                    Some(_) => {}
                },
                Event::Commit { txn, ts, .. } => {
                    if s.aborted {
                        return Err(WfError::CommitAndAbort(*txn));
                    }
                    if s.pending_obj.is_some() {
                        return Err(WfError::CommitWhilePending(*txn));
                    }
                    match s.ts {
                        Some(t0) if t0 != *ts => return Err(WfError::InconsistentTimestamp(*txn)),
                        _ => s.ts = Some(*ts),
                    }
                    s.committed = true;
                }
                Event::Abort { txn, .. } => {
                    if s.committed {
                        return Err(WfError::CommitAndAbort(*txn));
                    }
                    s.aborted = true;
                }
            }
        }
        Ok(())
    }

    fn check_timestamp_constraints(&self) -> Result<(), WfError> {
        // Unique timestamps across distinct transactions.
        let committed = self.committed();
        let mut by_ts: HashMap<Timestamp, TxnId> = HashMap::new();
        for e in &self.events {
            if let Event::Commit { txn, ts, .. } = e {
                if let Some(&other) = by_ts.get(ts) {
                    if other != *txn {
                        return Err(WfError::DuplicateTimestamp(other, *txn));
                    }
                }
                by_ts.insert(*ts, *txn);
            }
        }
        // precedes(H|X) ⊆ TS(H) for every object X.
        for x in self.objects() {
            for (p, q) in self.restrict_obj(x).precedes() {
                if let (Some(tp), Some(tq)) = (committed.get(&p), committed.get(&q)) {
                    if tp >= tq {
                        return Err(WfError::TimestampContradictsPrecedes(p, q));
                    }
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for History {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(&self.events).finish()
    }
}

/// A fluent builder for histories, used pervasively in tests.
#[derive(Default)]
pub struct HistoryBuilder {
    h: History,
}

impl HistoryBuilder {
    /// Start an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an invocation event.
    pub fn invoke(mut self, x: u64, p: u64, inv: Inv) -> Self {
        self.h.push(Event::Invoke { obj: ObjectId(x), txn: TxnId(p), inv });
        self
    }

    /// Append a response event.
    pub fn respond(mut self, x: u64, p: u64, res: impl Into<crate::value::Value>) -> Self {
        self.h.push(Event::Respond { obj: ObjectId(x), txn: TxnId(p), res: res.into() });
        self
    }

    /// Append an invocation immediately followed by its response.
    pub fn op(self, x: u64, p: u64, inv: Inv, res: impl Into<crate::value::Value>) -> Self {
        self.invoke(x, p, inv).respond(x, p, res)
    }

    /// Append a commit event.
    pub fn commit(mut self, x: u64, p: u64, ts: u64) -> Self {
        self.h.push(Event::Commit { obj: ObjectId(x), txn: TxnId(p), ts: Timestamp(ts) });
        self
    }

    /// Append an abort event.
    pub fn abort(mut self, x: u64, p: u64) -> Self {
        self.h.push(Event::Abort { obj: ObjectId(x), txn: TxnId(p) });
        self
    }

    /// Finish building.
    pub fn build(self) -> History {
        self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn enq(v: i64) -> Inv {
        Inv::unary("enq", v)
    }
    fn deq() -> Inv {
        Inv::nullary("deq")
    }

    /// The paper's Section 3.2 example queue history: Q and P enqueue
    /// concurrently, commit with timestamps 1 and 2, then R dequeues both.
    fn paper_queue_history() -> History {
        HistoryBuilder::new()
            .op(0, 1, enq(1), Value::Unit) // P enq(1)
            .op(0, 2, enq(2), Value::Unit) // Q enq(2)
            .op(0, 1, enq(3), Value::Unit) // P enq(3)
            .commit(0, 1, 2) // P commits at ts 2
            .commit(0, 2, 1) // Q commits at ts 1
            .op(0, 3, deq(), 2)
            .op(0, 3, deq(), 1)
            .commit(0, 3, 5)
            .build()
    }

    #[test]
    fn paper_history_is_well_formed() {
        paper_queue_history().well_formed().unwrap();
    }

    #[test]
    fn committed_and_ts_order() {
        let h = paper_queue_history();
        let c = h.committed();
        assert_eq!(c[&TxnId(1)], Timestamp(2));
        assert_eq!(c[&TxnId(2)], Timestamp(1));
        assert_eq!(h.ts_order(), vec![TxnId(2), TxnId(1), TxnId(3)]);
    }

    #[test]
    fn precedes_captures_information_flow() {
        let h = paper_queue_history();
        let p = h.precedes();
        // R responds after both P and Q commit.
        assert!(p.contains(&(TxnId(1), TxnId(3))));
        assert!(p.contains(&(TxnId(2), TxnId(3))));
        // P and Q are concurrent.
        assert!(!p.contains(&(TxnId(1), TxnId(2))));
        assert!(!p.contains(&(TxnId(2), TxnId(1))));
    }

    #[test]
    fn known_contains_ts_pairs() {
        let h = paper_queue_history();
        let k = h.known();
        assert!(k.contains(&(TxnId(2), TxnId(1)))); // ts 1 < ts 2
        assert!(k.contains(&(TxnId(2), TxnId(3))));
    }

    #[test]
    fn ops_of_pairs_invocations_with_responses() {
        let h = paper_queue_history();
        let ops = h.ops_of(TxnId(1), ObjectId(0));
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].inv, enq(1));
        assert_eq!(ops[1].inv, enq(3));
    }

    #[test]
    fn serial_ops_concatenates_in_order() {
        let h = paper_queue_history();
        let ops = h.serial_ops_at(&[TxnId(2), TxnId(1), TxnId(3)], ObjectId(0));
        let names: Vec<_> = ops.iter().map(|o| format!("{:?}", o.inv)).collect();
        assert_eq!(names, vec!["enq(2)", "enq(1)", "enq(3)", "deq()", "deq()"]);
    }

    #[test]
    fn pending_invocation_is_dropped_by_opseq() {
        let h = HistoryBuilder::new().op(0, 1, enq(1), Value::Unit).invoke(0, 1, enq(2)).build();
        assert_eq!(h.ops_of(TxnId(1), ObjectId(0)).len(), 1);
    }

    #[test]
    fn restriction_is_a_history_again() {
        let h = paper_queue_history();
        let hx = h.restrict_obj(ObjectId(0));
        assert_eq!(hx.len(), h.len());
        let hp = h.restrict_txn(TxnId(3));
        assert_eq!(hp.len(), 5);
        hp.well_formed().unwrap();
    }

    #[test]
    fn serial_detection() {
        assert!(paper_queue_history().restrict_txn(TxnId(1)).is_serial());
        assert!(!paper_queue_history().is_serial());
        let serial = paper_queue_history().serialized(&[TxnId(2), TxnId(1), TxnId(3)]);
        assert!(serial.is_serial());
    }

    #[test]
    fn wf_rejects_invocation_while_pending() {
        let h = HistoryBuilder::new().invoke(0, 1, deq()).invoke(0, 1, deq()).build();
        assert_eq!(h.well_formed(), Err(WfError::InvocationWhilePending(TxnId(1))));
    }

    #[test]
    fn wf_rejects_response_without_pending() {
        let h = HistoryBuilder::new().respond(0, 1, 3).build();
        assert_eq!(h.well_formed(), Err(WfError::ResponseWithoutPending(TxnId(1))));
    }

    #[test]
    fn wf_rejects_response_on_wrong_object() {
        let h = HistoryBuilder::new().invoke(0, 1, deq()).respond(1, 1, 3).build();
        assert_eq!(h.well_formed(), Err(WfError::ResponseWrongObject(TxnId(1))));
    }

    #[test]
    fn wf_rejects_commit_and_abort() {
        let h = HistoryBuilder::new().commit(0, 1, 1).abort(0, 1).build();
        assert_eq!(h.well_formed(), Err(WfError::CommitAndAbort(TxnId(1))));
        let h = HistoryBuilder::new().abort(0, 1).commit(0, 1, 1).build();
        assert_eq!(h.well_formed(), Err(WfError::CommitAndAbort(TxnId(1))));
    }

    #[test]
    fn wf_rejects_commit_while_pending() {
        let h = HistoryBuilder::new().invoke(0, 1, deq()).commit(0, 1, 1).build();
        assert_eq!(h.well_formed(), Err(WfError::CommitWhilePending(TxnId(1))));
    }

    #[test]
    fn wf_rejects_op_after_commit() {
        let h = HistoryBuilder::new().commit(0, 1, 1).invoke(0, 1, deq()).build();
        assert_eq!(h.well_formed(), Err(WfError::OpAfterCommit(TxnId(1))));
    }

    #[test]
    fn wf_allows_multiple_commits_same_ts() {
        // The paper explicitly allows a transaction to commit more than once
        // at the same object, with the same timestamp.
        let h = HistoryBuilder::new().commit(0, 1, 1).commit(0, 1, 1).commit(1, 1, 1).build();
        h.well_formed().unwrap();
    }

    #[test]
    fn wf_rejects_inconsistent_timestamps() {
        let h = HistoryBuilder::new().commit(0, 1, 1).commit(1, 1, 2).build();
        assert_eq!(h.well_formed(), Err(WfError::InconsistentTimestamp(TxnId(1))));
    }

    #[test]
    fn wf_rejects_duplicate_timestamps() {
        let h = HistoryBuilder::new().commit(0, 1, 1).commit(0, 2, 1).build();
        assert_eq!(h.well_formed(), Err(WfError::DuplicateTimestamp(TxnId(1), TxnId(2))));
    }

    #[test]
    fn wf_rejects_timestamp_contradicting_precedes() {
        // Q runs at X after P committed at X, but chooses a smaller
        // timestamp.
        let h = HistoryBuilder::new().commit(0, 1, 5).op(0, 2, deq(), 1).commit(0, 2, 3).build();
        assert_eq!(h.well_formed(), Err(WfError::TimestampContradictsPrecedes(TxnId(1), TxnId(2))));
    }

    #[test]
    fn wf_allows_aborted_txn_to_keep_operating() {
        // The paper places few restrictions on aborted transactions
        // (orphans may continue to run).
        let h = HistoryBuilder::new().abort(0, 1).op(0, 1, enq(1), Value::Unit).build();
        h.well_formed().unwrap();
    }

    #[test]
    fn wf_allows_commit_without_operations() {
        let h = HistoryBuilder::new().commit(0, 1, 1).build();
        h.well_formed().unwrap();
    }

    #[test]
    fn permanent_drops_non_committed() {
        let h = HistoryBuilder::new()
            .op(0, 1, enq(1), Value::Unit)
            .op(0, 2, enq(2), Value::Unit)
            .commit(0, 1, 1)
            .build();
        let p = h.permanent();
        assert_eq!(p.txns(), vec![TxnId(1)]);
    }

    #[test]
    fn builder_roundtrip() {
        let h = HistoryBuilder::new().op(3, 9, enq(5), Value::Unit).commit(3, 9, 4).build();
        assert_eq!(h.len(), 3);
        assert_eq!(h.objects(), vec![ObjectId(3)]);
        assert_eq!(h.txns(), vec![TxnId(9)]);
    }
}
