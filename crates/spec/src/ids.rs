//! Identifier newtypes shared across the workspace.
//!
//! The paper's model (Section 2) names transactions `P, Q, R` and objects
//! `X, Y, Z`; commit timestamps are drawn from a countable totally ordered
//! set. We use `u64` for all three.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A transaction identifier (the paper's `P`, `Q`, `R`).
///
/// Transaction identifiers carry no ordering semantics; serialization order
/// is determined solely by commit [`Timestamp`]s.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u64);

/// An object identifier (the paper's `X`, `Y`, `Z`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// A commit timestamp, drawn from a countable totally ordered set.
///
/// Well-formedness (Section 2) requires that distinct transactions choose
/// distinct timestamps and that the timestamp order is consistent with the
/// per-object `precedes` order; [`crate::history::History::well_formed`]
/// checks both, and `hcc-txn`'s logical clock generates conforming values.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The smallest timestamp; used as the paper's `-∞` sentinel is handled
    /// separately via `Option`, this is merely the least concrete value.
    pub const MIN: Timestamp = Timestamp(0);
    /// The largest timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_ordering_is_numeric() {
        assert!(Timestamp(1) < Timestamp(2));
        assert!(Timestamp::MIN < Timestamp::MAX);
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{:?}", TxnId(3)), "T3");
        assert_eq!(format!("{:?}", ObjectId(7)), "X7");
        assert_eq!(format!("{:?}", Timestamp(9)), "@9");
    }

    #[test]
    fn ids_are_usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(TxnId(1), "a");
        m.insert(TxnId(2), "b");
        assert_eq!(m[&TxnId(1)], "a");
        assert_eq!(m.len(), 2);
    }
}
