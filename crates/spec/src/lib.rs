//! # hcc-spec — the model of computation
//!
//! This crate implements Sections 2 and 3 of Herlihy & Weihl, *Hybrid
//! Concurrency Control for Abstract Data Types* (JCSS 43, 1991):
//!
//! * **Events and histories** ([`event`], [`history`]): invocation, response,
//!   commit and abort events; well-formedness; the `precedes`, `TS` and
//!   `Known` relations; `OpSeq` and `Serial(H, T)`.
//! * **Serial specifications** ([`adt`]): an object's behaviour in the
//!   absence of concurrency and failures, modelled as a (possibly partial,
//!   possibly nondeterministic) state machine. Sequence legality is decided
//!   by state-*set* simulation, so nondeterministic specifications such as
//!   the Semiqueue are handled exactly.
//! * **The example data types of Section 4.3** ([`specs`]): File, FIFO
//!   Queue, Semiqueue and Account, plus three extension types (Counter, Set,
//!   Directory) used by the wider test and benchmark suite.
//! * **Exact arithmetic** ([`rational`]): account balances are rational
//!   numbers so that affine intents compose without rounding and the runtime
//!   can be compared against the formal specification with `==`.

pub mod adt;
pub mod event;
pub mod history;
pub mod ids;
pub mod rational;
pub mod specs;
pub mod value;

pub use adt::{legal, responses_after, Adt, Frontier, Operation};
pub use event::Event;
pub use history::{History, WfError};
pub use ids::{ObjectId, Timestamp, TxnId};
pub use rational::Rational;
pub use value::{Inv, Value};
