//! # hcc-baselines — the comparator concurrency-control schemes
//!
//! Section 7 compares hybrid locking against two families:
//!
//! * **Commutativity-based 2PL** (Eswaran et al., Korth, Bernstein et al.,
//!   Weihl): lock modes conflict when the operations fail to
//!   forward-commute. For the Account this is Table VI — strictly more
//!   conflicts than the hybrid Table V (`Credit↔Post`, `Post↔Debit-Ok`
//!   added). For the FIFO queue it coincides with Table III; for the
//!   Semiqueue and Counter it coincides with the hybrid relation (the
//!   paper: the relations "may be weaker than or incomparable to" each
//!   other).
//! * **Untyped read/write strict 2PL**: every operation is classified by
//!   its *invocation* as a read or a write; writes exclude everything.
//!   This is the classical baseline that ignores type semantics entirely.
//!
//! All schemes run on the same [`hcc_core::runtime::TxObject`] runtime —
//! only the [`LockSpec`] changes — so throughput comparisons isolate the
//! conflict relation. Running a commutativity-based (dynamic atomic) object
//! in the hybrid runtime is sound: the paper notes hybrid atomicity is
//! upward compatible with dynamic atomicity, since the timestamp order is
//! one of the orders consistent with `precedes`.

use hcc_adts::account::{AccountAdt, AccountInv, AccountRes};
use hcc_adts::counter::{CounterAdt, CounterInv, CounterRes};
use hcc_adts::fifo_queue::{Item, QueueAdt, QueueInv, QueueRes};
use hcc_adts::file::{Content, FileAdt, FileInv, FileRes};
use hcc_adts::semiqueue::{SemiqueueAdt, SqInv, SqRes};
use hcc_core::runtime::{LockSpec, RuntimeAdt};

/// Re-export: the counter's commutativity relation coincides with the
/// hybrid relation.
pub use hcc_adts::counter::CounterHybrid as CounterCommutativity;
/// Re-export: the queue's commutativity-induced conflict relation is
/// exactly Table III (Section 7).
pub use hcc_adts::fifo_queue::QueueTableIII as QueueCommutativity;
/// Re-export: the semiqueue's commutativity relation coincides with the
/// hybrid Table IV.
pub use hcc_adts::semiqueue::SemiqueueHybrid as SemiqueueCommutativity;

/// The "failure to commute" relation for Account (Table VI).
pub struct AccountCommutativity;

impl LockSpec<AccountAdt> for AccountCommutativity {
    fn conflicts(&self, a: &(AccountInv, AccountRes), b: &(AccountInv, AccountRes)) -> bool {
        use AccountInv::{Credit, Debit, Post};
        use AccountRes::{Debited, Overdraft};
        let class = |o: &(AccountInv, AccountRes)| match (&o.0, &o.1) {
            (Credit(_), _) => 0u8,
            (Post(_), _) => 1,
            (Debit(_), Debited) => 2,
            (Debit(_), Overdraft) => 3,
            (Debit(_), _) => unreachable!("debit responses are Debited/Overdraft"),
        };
        // Table VI pairs: {C,P}, {C,O}, {P,D}, {P,O}, {D,D}.
        matches!(
            (class(a), class(b)),
            (0, 1) | (1, 0) | (0, 3) | (3, 0) | (1, 2) | (2, 1) | (1, 3) | (3, 1) | (2, 2)
        )
    }
    fn name(&self) -> &'static str {
        "commutativity"
    }
}

/// The "failure to commute" relation for File: distinct writes do not
/// commute (no Thomas Write Rule), and a read fails to commute with a
/// write of a different value.
pub struct FileCommutativity;

impl<T: Content> LockSpec<FileAdt<T>> for FileCommutativity {
    fn conflicts(&self, a: &(FileInv<T>, FileRes<T>), b: &(FileInv<T>, FileRes<T>)) -> bool {
        match (a, b) {
            ((FileInv::Write(v), _), (FileInv::Write(w), _)) => v != w,
            ((FileInv::Read, FileRes::Val(v)), (FileInv::Write(w), _))
            | ((FileInv::Write(w), _), (FileInv::Read, FileRes::Val(v))) => v != w,
            _ => false,
        }
    }
    fn name(&self) -> &'static str {
        "commutativity"
    }
}

/// Untyped strict read/write 2PL: operations are classified by invocation;
/// writers exclude everything.
pub struct Rw2pl<A: RuntimeAdt> {
    is_read: fn(&A::Inv) -> bool,
}

impl<A: RuntimeAdt> Rw2pl<A> {
    /// Classify invocations with `is_read`; everything else is a write.
    pub fn new(is_read: fn(&A::Inv) -> bool) -> Rw2pl<A> {
        Rw2pl { is_read }
    }
}

impl<A: RuntimeAdt> LockSpec<A> for Rw2pl<A> {
    fn conflicts(&self, a: &(A::Inv, A::Res), b: &(A::Inv, A::Res)) -> bool {
        !((self.is_read)(&a.0) && (self.is_read)(&b.0))
    }
    fn name(&self) -> &'static str {
        "rw-2pl"
    }
}

/// RW-2PL for accounts: every operation writes (debit reads *and* writes).
pub fn rw_account() -> Rw2pl<AccountAdt> {
    Rw2pl::new(|_| false)
}

/// RW-2PL for queues: both `enq` and `deq` write.
pub fn rw_queue<T: Item>() -> Rw2pl<QueueAdt<T>> {
    Rw2pl::new(|_| false)
}

/// RW-2PL for semiqueues: both operations write.
pub fn rw_semiqueue<T: hcc_adts::semiqueue::Item>() -> Rw2pl<SemiqueueAdt<T>> {
    Rw2pl::new(|_| false)
}

/// RW-2PL for files: `read` reads, `write` writes.
pub fn rw_file<T: Content>() -> Rw2pl<FileAdt<T>> {
    Rw2pl::new(|inv| matches!(inv, FileInv::Read))
}

/// RW-2PL for counters: `read` reads, updates write.
pub fn rw_counter() -> Rw2pl<CounterAdt> {
    Rw2pl::new(|inv| matches!(inv, CounterInv::Read))
}

// Silence "unused import" for types only used in signatures above.
const _: fn(&(QueueInv<i64>, QueueRes<i64>)) = |_| {};
const _: fn(&(SqInv<i64>, SqRes<i64>)) = |_| {};
const _: fn(&(CounterInv, CounterRes)) = |_| {};

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_adts::account::AccountObject;
    use hcc_adts::fifo_queue::QueueObject;
    use hcc_adts::file::FileObject;
    use hcc_core::runtime::{ExecError, RuntimeOptions, TxParticipant, TxnHandle};
    use hcc_spec::{Rational, TxnId};
    use std::sync::Arc;
    use std::time::Duration;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }
    fn h(n: u64) -> Arc<TxnHandle> {
        TxnHandle::new(TxnId(n))
    }
    fn short() -> RuntimeOptions {
        RuntimeOptions::with_timeout(Some(Duration::from_millis(30)))
    }

    #[test]
    fn commutativity_blocks_credit_during_post() {
        // Table VI: Credit ↔ Post conflict (hybrid admits them).
        let a = AccountObject::with("a", Arc::new(AccountCommutativity), short());
        let (t1, t2) = (h(1), h(2));
        a.post(&t1, r(5)).unwrap();
        assert_eq!(a.credit(&t2, r(10)), Err(ExecError::Timeout));
    }

    #[test]
    fn commutativity_blocks_post_during_debit() {
        let a = AccountObject::with("a", Arc::new(AccountCommutativity), short());
        let t0 = h(1);
        a.credit(&t0, r(100)).unwrap();
        a.inner().commit_at(t0.id(), 1);
        let (t1, t2) = (h(2), h(3));
        assert!(a.debit(&t1, r(10)).unwrap());
        assert_eq!(a.post(&t2, r(5)), Err(ExecError::Timeout));
    }

    #[test]
    fn commutativity_still_admits_concurrent_credits() {
        let a = AccountObject::with("a", Arc::new(AccountCommutativity), short());
        let (t1, t2) = (h(1), h(2));
        a.credit(&t1, r(5)).unwrap();
        a.credit(&t2, r(7)).unwrap();
        a.inner().commit_at(t1.id(), 1);
        a.inner().commit_at(t2.id(), 2);
        assert_eq!(a.committed_balance(), r(12));
    }

    #[test]
    fn rw_2pl_serializes_everything_on_accounts() {
        let a = AccountObject::with("a", Arc::new(rw_account()), short());
        let (t1, t2) = (h(1), h(2));
        a.credit(&t1, r(5)).unwrap();
        assert_eq!(a.credit(&t2, r(7)), Err(ExecError::Timeout));
    }

    #[test]
    fn commutativity_queue_blocks_concurrent_enqueues() {
        // Table III = commutativity: enq(v) ↔ enq(v') conflict.
        let q: QueueObject<i64> = QueueObject::with("q", Arc::new(QueueCommutativity), short());
        let (t1, t2) = (h(1), h(2));
        q.enq(&t1, 1).unwrap();
        assert_eq!(q.enq(&t2, 2), Err(ExecError::Timeout));
    }

    #[test]
    fn rw_queue_blocks_everything() {
        let q: QueueObject<i64> = QueueObject::with("q", Arc::new(rw_queue()), short());
        let (t1, t2) = (h(1), h(2));
        q.enq(&t1, 1).unwrap();
        assert_eq!(q.enq(&t2, 1), Err(ExecError::Timeout));
    }

    #[test]
    fn file_commutativity_blocks_blind_writes() {
        let f: FileObject<i64> = FileObject::with("f", Arc::new(FileCommutativity), short());
        let (t1, t2) = (h(1), h(2));
        f.write(&t1, 1).unwrap();
        assert_eq!(f.write(&t2, 2), Err(ExecError::Timeout), "no Thomas Write Rule");
        // Same-value writes commute.
        let (t3, f2) = (h(3), FileObject::<i64>::with("f2", Arc::new(FileCommutativity), short()));
        let t4 = h(4);
        f2.write(&t3, 5).unwrap();
        f2.write(&t4, 5).unwrap();
    }

    #[test]
    fn rw_file_readers_share() {
        let f: FileObject<i64> = FileObject::with("f", Arc::new(rw_file()), short());
        let (t1, t2) = (h(1), h(2));
        assert_eq!(f.read(&t1).unwrap(), 0);
        assert_eq!(f.read(&t2).unwrap(), 0, "readers coexist");
        let t3 = h(3);
        assert_eq!(f.write(&t3, 1), Err(ExecError::Timeout), "writer excluded");
    }

    #[test]
    fn scheme_names() {
        assert_eq!(LockSpec::<AccountAdt>::name(&AccountCommutativity), "commutativity");
        assert_eq!(LockSpec::<AccountAdt>::name(&rw_account()), "rw-2pl");
    }
}
