//! A minimal, offline, API-compatible subset of `criterion`.
//!
//! Measures wall-clock time per iteration and prints a one-line report per
//! benchmark: median, mean, and min over `sample_size` samples taken inside
//! `measurement_time`. No plots, no statistics beyond that — enough to
//! compare schemes and spot regressions offline.

use std::time::{Duration, Instant};

/// Re-export of the compiler fence against over-optimisation.
pub use std::hint::black_box;

/// A benchmark identifier: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter display.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { name: format!("{function}/{parameter}") }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// The per-iteration timer handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Time `f`, collecting samples until the time or sample budget runs out.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent, and estimate the
        // per-iteration cost to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        // Aim for sample_size samples inside measurement_time.
        let budget_per_sample = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let iters_per_sample = (budget_per_sample / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        let measure_start = Instant::now();
        while self.samples.len() < self.sample_size
            && measure_start.elapsed() < self.measurement_time * 2
        {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / iters_per_sample as u32);
        }
        if self.samples.is_empty() {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(group: &str, name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let full = if group.is_empty() { name.to_string() } else { format!("{group}/{name}") };
    println!(
        "{full:<60} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean)
    );
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut b);
        report(&self.name, name, &mut b.samples);
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run(name, f);
        self
    }

    /// Benchmark a closure parameterised by an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.name.clone(), |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra; parity with criterion).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.run(name, f);
        g.finish();
        self
    }
}

/// Declare a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; ignore all arguments.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_n", 200), &200u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
