//! A minimal, offline, API-compatible subset of `rand` 0.8: `Rng`,
//! `SeedableRng`, and `rngs::StdRng` backed by SplitMix64. Deterministic
//! given a seed, which is what every caller in this workspace wants.

use std::ops::Range;

/// Integer types uniformly sampleable from a `Range`.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[lo, hi)` given one raw 64-bit draw.
    fn sample_from(raw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from(raw: u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi - lo) as u128;
                lo + ((raw as u128 % span) as Self)
            }
        }
    )*};
}
sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from(raw: u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (raw as u128 % span) as i128) as Self
            }
        }
    )*};
}
sample_uniform_signed!(i8, i16, i32, i64, i128, isize);

/// The user-facing RNG trait (subset).
pub trait Rng {
    /// One raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_from(self.next_u64(), range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p));
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// RNGs constructible from a seed (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// RNG implementations.
pub mod rngs {
    /// The standard RNG: SplitMix64 (not cryptographic; deterministic).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(0..100u32);
            assert_eq!(x, b.gen_range(0..100u32));
            assert!(x < 100);
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| c.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn signed_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from uniform");
        }
    }
}
