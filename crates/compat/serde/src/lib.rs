//! A minimal, offline, API-compatible subset of `serde`.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so this crate supplies just enough of serde's surface for the
//! workspace: the [`Serialize`] / [`Deserialize`] traits (over a simple
//! self-describing [`Content`] data model rather than serde's visitor
//! machinery) and the derive macros re-exported from `serde_derive`.
//!
//! The serialized representation follows serde's JSON conventions exactly
//! (externally tagged enums, newtype structs as their inner value), so
//! `serde_json` output from this subset is byte-compatible with the real
//! crates for the types in this workspace.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value — the data model both traits target.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// Unit / null.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any integer (widest native type).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A map with string keys, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Look up a key in a `Map`.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Construct an error.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into the [`Content`] data model.
pub trait Serialize {
    /// The serialized form.
    fn to_content(&self) -> Content;
}

/// Types that can reconstruct themselves from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct from serialized form.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

// ---- Serialize impls for primitives ------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::Int(*self as i128) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("integer {} out of range", n))),
                    other => Err(DeError::new(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Float(x) => Ok(*x),
            Content::Int(n) => Ok(*n as f64),
            other => Err(DeError::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

/// String-keyed maps serialize as JSON objects (real serde's convention
/// for maps with string keys; non-string keys are out of this subset's
/// scope — use a `Vec` of pairs).
impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_content(v)?))).collect()
            }
            other => Err(DeError::new(format!("expected map, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            other => Err(DeError::new(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(i64::from_content(&42i64.to_content()).unwrap(), 42);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(String::from_content(&"hi".to_string().to_content()).unwrap(), "hi");
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_content(&v.to_content()).unwrap(), v);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_content(&Content::Int(300)).is_err());
        assert!(u64::from_content(&Content::Int(-1)).is_err());
    }
}
