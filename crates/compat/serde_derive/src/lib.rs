//! `#[derive(Serialize, Deserialize)]` for the offline serde subset.
//!
//! Implemented without `syn`/`quote` (unavailable offline): a small
//! hand-rolled parser walks the item's `TokenStream` and the impl is
//! emitted as a formatted string. Supports non-generic structs (unit,
//! tuple, named) and enums whose variants are unit, tuple, or struct-like —
//! exactly the shapes in this workspace. The generated representation
//! follows serde's externally-tagged JSON conventions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
enum Item {
    Struct(String, Fields),
    Enum(String, Vec<(String, Fields)>),
}

/// Skip attributes (`#[...]`, `#![...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if let Some(TokenTree::Punct(p2)) = tokens.get(i) {
                    if p2.as_char() == '!' {
                        i += 1;
                    }
                }
                i += 1; // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Count the comma-separated fields of a tuple group, ignoring commas
/// nested inside `<...>` (angle brackets are plain puncts, not groups).
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma does not add a field.
    if let Some(TokenTree::Punct(p)) = tokens.last() {
        if p.as_char() == ',' {
            count -= 1;
        }
    }
    count
}

/// Parse `name: Type, ...` named fields from a brace group.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else { break };
        fields.push(name.to_string());
        i += 1; // name
        i += 1; // ':'
                // Skip the type up to the next top-level comma.
        let mut angle = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Parse the enum body: `Variant, Variant(T, ..), Variant { f: T, .. }, ...`
fn parse_variants(group: &proc_macro::Group) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else { break };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Skip to after the separating comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (offline subset): generic types are not supported; write the impl by hand for `{name}`");
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Struct(name, Fields::Named(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::Struct(name, Fields::Tuple(count_tuple_fields(g)))
            }
            _ => Item::Struct(name, Fields::Unit),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(name, parse_variants(g))
            }
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct(name, fields) => {
            let expr = match fields {
                Fields::Unit => "::serde::Content::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..n)
                        .map(|k| format!("::serde::Serialize::to_content(&self.{k})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                }
                Fields::Named(fs) => {
                    let items: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(String::from(\"{f}\"), ::serde::Serialize::to_content(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Content::Map(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{ {expr} }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for (v, fields) in &variants {
                let arm = match fields {
                    Fields::Unit => {
                        format!("{name}::{v} => ::serde::Content::Str(String::from(\"{v}\")),\n")
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Content::Map(vec![(String::from(\"{v}\"), \
                         ::serde::Serialize::to_content(f0))]),\n"
                    ),
                    Fields::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_content(f{k})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Content::Map(vec![(String::from(\"{v}\"), \
                             ::serde::Content::Seq(vec![{}]))]),\n",
                            pats.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let pats = fs.join(", ");
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), ::serde::Serialize::to_content({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {pats} }} => ::serde::Content::Map(vec![\
                             (String::from(\"{v}\"), ::serde::Content::Map(vec![{}]))]),\n",
                            items.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse().expect("serde_derive generated invalid Serialize impl")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct(name, fields) => {
            let expr = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_content(c)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..n)
                        .map(|k| format!("::serde::Deserialize::from_content(&items[{k}])?"))
                        .collect();
                    format!(
                        "match c {{\n\
                           ::serde::Content::Seq(items) if items.len() == {n} => \
                             Ok({name}({})),\n\
                           other => Err(::serde::DeError::new(format!(\
                             \"expected {n}-element sequence for {name}, got {{other:?}}\"))),\n\
                         }}",
                        items.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let items: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_content(c.get(\"{f}\")\
                                 .ok_or_else(|| ::serde::DeError::new(\"missing field `{f}`\"))?)?"
                            )
                        })
                        .collect();
                    format!(
                        "match c {{\n\
                           ::serde::Content::Map(_) => Ok({name} {{ {} }}),\n\
                           other => Err(::serde::DeError::new(format!(\
                             \"expected map for {name}, got {{other:?}}\"))),\n\
                         }}",
                        items.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(c: &::serde::Content) -> Result<Self, ::serde::DeError> {{\n\
                         {expr}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, fields) in &variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n"));
                    }
                    Fields::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_content(inner)?)),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_content(&items[{k}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => match inner {{\n\
                               ::serde::Content::Seq(items) if items.len() == {n} => \
                                 Ok({name}::{v}({})),\n\
                               other => Err(::serde::DeError::new(format!(\
                                 \"expected {n}-element sequence for {name}::{v}, got {{other:?}}\"))),\n\
                             }},\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_content(inner.get(\"{f}\")\
                                     .ok_or_else(|| ::serde::DeError::new(\"missing field `{f}`\"))?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => Ok({name}::{v} {{ {} }}),\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(c: &::serde::Content) -> Result<Self, ::serde::DeError> {{\n\
                         match c {{\n\
                             ::serde::Content::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::DeError::new(format!(\
                                     \"unknown unit variant {{other}} for {name}\"))),\n\
                             }},\n\
                             ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => Err(::serde::DeError::new(format!(\
                                         \"unknown variant {{other}} for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::DeError::new(format!(\
                                 \"expected externally tagged {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse().expect("serde_derive generated invalid Deserialize impl")
}
