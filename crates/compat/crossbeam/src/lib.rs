//! A minimal, offline, API-compatible subset of `crossbeam`: just the
//! `channel` module, layered over `std::sync::mpsc`.

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half (unbounded or bounded).
    #[derive(Clone)]
    pub enum Sender<T> {
        /// From [`unbounded`].
        Unbounded(mpsc::Sender<T>),
        /// From [`bounded`].
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Sender<T> {
        /// Send a message (blocking if bounded and full).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(value),
                Sender::Bounded(s) => s.send(value),
            }
        }
    }

    /// The receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Block with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterate until all senders disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    /// A channel buffering at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(42).unwrap();
            assert_eq!(rx.recv().unwrap(), 42);
        }

        #[test]
        fn bounded_reply_pattern() {
            let (tx, rx) = bounded(1);
            std::thread::spawn(move || tx.send(true).unwrap());
            assert!(rx.recv_timeout(Duration::from_secs(1)).unwrap());
        }

        #[test]
        fn timeout_fires() {
            let (tx, rx) = bounded::<u8>(1);
            let res = rx.recv_timeout(Duration::from_millis(10));
            assert!(res.is_err());
            drop(tx);
        }
    }
}
