//! A minimal, offline, API-compatible subset of `serde_json`.
//!
//! Provides [`Value`], the [`json!`] macro, [`to_string`] / [`to_writer`] /
//! [`to_vec`], [`from_str`] / [`from_slice`], and [`to_value`] /
//! [`from_value`] over the offline serde subset's `Content` data model.
//! Output is compact JSON with object keys in `BTreeMap` order, matching
//! real serde_json's default (non-`preserve_order`) behaviour.

use serde::{Content, DeError, Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::io;

/// A JSON number: either an exact integer (up to `i128`) or a float.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Number(N);

#[derive(Clone, Copy, Debug, PartialEq)]
enum N {
    Int(i128),
    Float(f64),
}

impl Number {
    /// The number as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::Int(n) => i64::try_from(n).ok(),
            N::Float(_) => None,
        }
    }

    /// The number as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::Int(n) => u64::try_from(n).ok(),
            N::Float(_) => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::Int(n) => Some(n as f64),
            N::Float(x) => Some(x),
        }
    }
}

impl From<i64> for Number {
    fn from(n: i64) -> Number {
        Number(N::Int(n as i128))
    }
}

impl From<u64> for Number {
    fn from(n: u64) -> Number {
        Number(N::Int(n as i128))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::Int(n) => write!(f, "{n}"),
            N::Float(x) => write!(f, "{x}"),
        }
    }
}

/// The JSON object map type (sorted keys, like real serde_json's default).
pub type Map = BTreeMap<String, Value>;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member lookup; `None` when `self` is not an object or lacks the key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// `Some(i)` when the value is an integral number fitting `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// `Some(u)` when the value is an integral number fitting `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// `Some(x)` for any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// `Some(b)` when the value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `Some(s)` when the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// `Some(items)` when the value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `Some(map)` when the value is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string_value(self))
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number(N::Int(n))) => Content::Int(*n),
            Value::Number(Number(N::Float(x))) => Content::Float(*x),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(a) => Content::Seq(a.iter().map(Serialize::to_content).collect()),
            Value::Object(m) => {
                Content::Map(m.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
            }
        }
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Value, DeError> {
        Ok(content_to_value(c))
    }
}

fn content_to_value(c: &Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::Int(n) => Value::Number(Number(N::Int(*n))),
        Content::Float(x) => Value::Number(Number(N::Float(*x))),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        Content::Map(entries) => {
            Value::Object(entries.iter().map(|(k, v)| (k.clone(), content_to_value(v))).collect())
        }
    }
}

/// Serialization or parse failure.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

impl From<Error> for io::Error {
    fn from(e: Error) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.0)
    }
}

/// Serialize any `Serialize` into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    content_to_value(&v.to_content())
}

/// Reconstruct a `Deserialize` from a [`Value`].
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_content(&v.to_content()).map_err(Error::from)
}

// ---- Writing -----------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::Int(n) => out.push_str(&n.to_string()),
        Content::Float(x) => out.push_str(&x.to_string()),
        Content::Str(s) => escape_into(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_content(v, out);
            }
            out.push('}');
        }
    }
}

fn to_string_value(v: &Value) -> String {
    let mut out = String::new();
    write_content(&v.to_content(), &mut out);
    out
}

/// Compact JSON text for any `Serialize`.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&v.to_content(), &mut out);
    Ok(out)
}

/// Compact JSON bytes for any `Serialize`.
pub fn to_vec<T: Serialize + ?Sized>(v: &T) -> Result<Vec<u8>, Error> {
    to_string(v).map(String::into_bytes)
}

/// Write compact JSON to an `io::Write`.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(mut w: W, v: &T) -> Result<(), Error> {
    let s = to_string(v)?;
    w.write_all(s.as_bytes()).map_err(|e| Error::new(e.to_string()))
}

// ---- Parsing -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!("unexpected input {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(|x| Value::Number(Number(N::Float(x))))
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(|n| Value::Number(Number(N::Int(n))))
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

/// Parse JSON text into any `Deserialize`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing bytes at {}", p.pos)));
    }
    from_value(&v)
}

/// Parse JSON bytes into any `Deserialize`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::new("invalid UTF-8"))?;
    from_str(s)
}

/// Build a [`Value`] from JSON-like syntax. Supports objects, arrays,
/// literals, `null`, and interpolated expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    (( $e:expr )) => { $crate::to_value(&$e) };
    ($e:expr) => { $crate::to_value(&$e) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = json!({"a": 1, "b": [true, null, "x"], "c": {"d": 2}});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn compact_format_matches_serde_json() {
        let v = json!({"txn": 1, "ts": 7});
        // BTreeMap order: keys sorted.
        assert_eq!(to_string(&v).unwrap(), r#"{"ts":7,"txn":1}"#);
    }

    #[test]
    fn torn_json_fails_to_parse() {
        assert!(from_str::<Value>("{\"Commit\":{\"txn\":2,").is_err());
        assert!(from_str::<Value>("{\"Op\":{\"txn\":77,\"obj").is_err());
    }

    #[test]
    fn index_and_accessors() {
        let v = json!({"enq": 5});
        assert_eq!(v["enq"].as_i64(), Some(5));
        assert!(v["missing"].is_null());
        assert_eq!(v.get("enq").and_then(Value::as_i64), Some(5));
    }

    #[test]
    fn numbers() {
        let v: Value = from_str("[-3, 2.5, 170141183460469231731687303715884105727]").unwrap();
        assert_eq!(v[0].as_i64(), Some(-3));
        assert_eq!(v[1].as_f64(), Some(2.5));
        assert_eq!(v[2].as_i64(), None, "i128 max does not fit i64");
    }

    #[test]
    fn string_escapes() {
        let v = Value::String("a\"b\\c\nd".into());
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }
}
