//! A minimal, offline, API-compatible subset of `parking_lot`: `Mutex`,
//! `RwLock`, and `Condvar` with parking_lot's ergonomics (no poisoning,
//! guard-returning `lock()`, `&mut guard` condvar waits) layered over
//! `std::sync`.

use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// A mutex that ignores poisoning and returns its guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Wraps the std guard in an `Option` so a
/// `Condvar` wait can temporarily take ownership through `&mut`.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (blocking); poisoning is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken during condvar wait")
    }
}

/// Result of a timed condvar wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Did the wait end by timeout (rather than notification)?
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable taking `&mut MutexGuard` like parking_lot's.
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        let inner = self.0.wait(inner).unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already taken");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock that ignores poisoning.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(10));
        drop(g);
    }

    #[test]
    fn condvar_notify_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let j = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait_for(&mut done, Duration::from_millis(5));
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        j.join().unwrap();
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
