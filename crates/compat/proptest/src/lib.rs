//! A minimal, offline, API-compatible subset of `proptest`.
//!
//! Supports the surface this workspace uses: the [`Strategy`] trait with
//! `prop_map`, range strategies over integers, tuple strategies,
//! `prop::collection::vec`, weighted [`prop_oneof!`], the [`proptest!`]
//! test macro with `#![proptest_config(...)]`, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest: generation is deterministic (seeded per
//! test name), there is no shrinking, and failures surface as ordinary
//! panics with the failing case index in the message.

use std::ops::Range;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG driving generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (e.g. the test name) so distinct
    /// tests explore distinct sequences, reproducibly.
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// One raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator. Object-safe: combinators require `Self: Sized`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }

    /// Type-erase into a boxed strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128);

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Weighted choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = (rng.next_u64() % self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + (rng.next_u64() as usize % span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

/// Everything a proptest-based test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        ProptestConfig, Strategy,
    };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Run each contained `#[test] fn name(binding in strategy, ...) { ... }`
/// over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal item muncher for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..cfg.cases {
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest {}: failing case index {} of {}",
                        stringify!($name), __case, cfg.cases
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, PartialEq)]
    enum Kind {
        A(u64),
        B,
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..2000 {
            let v = (-500i128..500).generate(&mut rng);
            assert!((-500..500).contains(&v));
            let u = (1usize..40).generate(&mut rng);
            assert!((1..40).contains(&u));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let s = prop_oneof![
            9 => (0u64..10).prop_map(Kind::A),
            1 => (0u64..1).prop_map(|_| Kind::B),
        ];
        let mut rng = crate::TestRng::from_name("weights");
        let n_b = (0..2000).filter(|_| s.generate(&mut rng) == Kind::B).count();
        assert!(n_b > 80 && n_b < 420, "B chosen {n_b}/2000, expected ~200");
    }

    #[test]
    fn vec_lengths_in_range() {
        let s = prop::collection::vec((0u8..4, 1i64..4), 1..25);
        let mut rng = crate::TestRng::from_name("vec");
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((1..25).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_works(a in 0i64..10, b in 0i64..10) {
            prop_assert!(a + b >= 0);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
