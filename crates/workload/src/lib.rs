//! # hcc-workload — workload generators and the multithreaded driver
//!
//! Every experiment in `EXPERIMENTS.md` runs through this crate: it
//! constructs objects under a chosen [`Scheme`], drives them with worker
//! threads through the `hcc-txn` manager (abort-and-retry on timeouts and
//! deadlock victims), and reports [`Metrics`].
//!
//! Scenario families:
//!
//! * [`queue`] — enqueue-only producers and producer/consumer pipelines
//!   (E7, E10);
//! * [`bank`] — single-account operation mixes with a controllable
//!   overdraft rate, and multi-account transfers (E8, E13);
//! * [`register`] — write-heavy register workloads for the Thomas Write
//!   Rule experiment (E9);
//! * [`compaction`] — retained-state probes for the Section-6 experiment
//!   (E11);
//! * [`crash`] / [`multisite`] / [`custom`] — randomized crash-recovery
//!   scenarios (single-site, distributed, and a user-defined
//!   `define_adt!` type written only against the public API);
//! * [`socket`] — the crash workload over a real TCP socket: client
//!   drivers for the `hcc-server` front door, ack-record reports, and
//!   the recovery verifier that holds the log against them;
//! * [`repl`] — the socket workload with a replication pair:
//!   kill-primary → promote-follower failover under load, lagging
//!   consistent-prefix read sampling, and the failover verifier.

pub mod bank;
pub mod compaction;
pub mod crash;
pub mod custom;
pub mod durable;
pub mod inventory;
pub mod metrics;
pub mod multisite;
pub mod queue;
pub mod register;
pub mod repl;
pub mod scheme;
pub mod socket;

pub use metrics::Metrics;
pub use scheme::Scheme;
