//! Compaction probes for the Section-6 experiment (E11): the committed
//! representation stays bounded while the horizon advances, and an old
//! active transaction pins it.

use crate::queue::bench_options;
use crate::scheme::{make_account, Scheme};
use hcc_spec::Rational;
use hcc_txn::TxnManager;
use std::sync::Arc;

/// Retained committed-transaction counts sampled over a committed stream.
#[derive(Clone, Debug)]
pub struct CompactionReport {
    /// `(committed txns so far, retained committed intents)` samples.
    pub samples: Vec<(usize, usize)>,
    /// Peak retained count while no old transaction was active.
    pub max_retained_quiescent: usize,
    /// Peak retained count while an old active transaction pinned the
    /// horizon.
    pub max_retained_pinned: usize,
}

/// Run `n` sequential committed credit transactions; in the second half,
/// an old transaction stays active and pins the horizon until the end.
pub fn account_stream(n: usize) -> CompactionReport {
    let mgr = TxnManager::new();
    let acct = Arc::new(make_account(Scheme::Hybrid, "acct", bench_options(&mgr)));
    let mut samples = Vec::new();
    let mut max_q = 0usize;
    let mut max_p = 0usize;

    // Phase 1: quiescent stream — horizon advances, state stays tiny.
    for i in 0..n / 2 {
        let t = mgr.begin();
        acct.credit(&t, Rational::from_int(1)).unwrap();
        mgr.commit(t).unwrap();
        let retained = acct.inner().retained_committed();
        samples.push((i + 1, retained));
        max_q = max_q.max(retained);
    }

    // Phase 2: an old transaction executes an operation and stays active.
    let pin = mgr.begin();
    acct.credit(&pin, Rational::from_int(1)).unwrap();
    for i in n / 2..n {
        let t = mgr.begin();
        acct.credit(&t, Rational::from_int(1)).unwrap();
        mgr.commit(t).unwrap();
        let retained = acct.inner().retained_committed();
        samples.push((i + 1, retained));
        max_p = max_p.max(retained);
    }
    mgr.commit(pin).unwrap();
    samples.push((n + 1, acct.inner().retained_committed()));

    CompactionReport { samples, max_retained_quiescent: max_q, max_retained_pinned: max_p }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_state_is_bounded() {
        let r = account_stream(40);
        assert!(
            r.max_retained_quiescent <= 2,
            "horizon folds committed intents promptly: {}",
            r.max_retained_quiescent
        );
    }

    #[test]
    fn active_transaction_pins_the_horizon() {
        let r = account_stream(40);
        assert!(
            r.max_retained_pinned >= 15,
            "a pinned horizon accumulates intents: {}",
            r.max_retained_pinned
        );
        // After the pin commits, everything folds again.
        let final_retained = r.samples.last().unwrap().1;
        assert!(final_retained <= 2, "final retained {final_retained}");
    }
}
