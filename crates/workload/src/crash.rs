//! Crash-recovery scenarios: a randomized bank + queue workload logged
//! through the durable store, killed at an injected crash point, recovered
//! from checkpoint + WAL tail, and verified three ways:
//!
//! 1. the recovered objects match an independently tracked oracle of the
//!    committed effects that survived the crash;
//! 2. the surviving commit set is a timestamp-prefix of what was committed
//!    (durability is monotone in commit order);
//! 3. the recovered history, rebuilt as formal events, satisfies
//!    `hcc-verify`'s hybrid atomicity check.
//!
//! The workload performs **no explicit logging, registration, or
//! recovery wiring**: it opens a [`Db`], attaches its objects (every
//! mutating operation then serializes its own redo record — self-
//! logging), and recovery is `Db::open` plus two typed-handle lookups.
//! The old caller-driven discipline survives as
//! [`LogDiscipline::Manual`] purely so the differential test can prove
//! both produce identical recovery state.
//!
//! The "crash" is simulated by closing the store and truncating an
//! arbitrary number of bytes off the final WAL segment — exactly what a
//! power failure does to a log whose tail had not finished reaching disk.

use hcc_adts::account::AccountObject;
use hcc_adts::fifo_queue::QueueObject;
use hcc_core::runtime::{Durability, RuntimeOptions};
use hcc_db::{Db, HccError};
use hcc_spec::history::HistoryBuilder;
use hcc_spec::specs::{AccountSpec, QueueSpec};
use hcc_spec::{ObjectId, Rational, Value};
use hcc_storage::{CompactionPolicy, DurableStore, StorageOptions};
use hcc_verify::{hybrid_atomic, SystemSpecs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// One committed effect, as the oracle tracks it.
#[derive(Clone, Debug, PartialEq)]
pub enum Effect {
    /// `credit(v)` on the account.
    Credit(i64),
    /// `debit(v)` that succeeded.
    DebitOk(i64),
    /// `debit(v)` refused (overdraft); no state change, but the response
    /// matters to the verifier.
    DebitOver(i64),
    /// `enq(v)` on the queue.
    Enq(i64),
    /// `deq()` that returned `v`.
    Deq(i64),
}

/// What the workload committed before the crash, keyed by commit
/// timestamp.
pub type Oracle = BTreeMap<u64, Vec<Effect>>;

/// How executed operations reach the WAL.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LogDiscipline {
    /// Objects self-log through the manager (the production path; no
    /// logging calls appear in the workload).
    #[default]
    SelfLogging,
    /// The legacy caller-driven discipline: the workload pairs every
    /// successful execution with an explicit `log_op` carrying the same
    /// payload the ADT would have produced. Kept only for the
    /// differential test.
    Manual,
}

/// Options for one crash-recovery run.
#[derive(Clone, Copy, Debug)]
pub struct CrashScenarioOptions {
    /// RNG seed (the whole run is deterministic given the seed).
    pub seed: u64,
    /// Transactions to attempt.
    pub txns: usize,
    /// Open transactions interleaved at any moment.
    pub interleave: usize,
    /// Checkpoint every N commits (`None` = never).
    pub checkpoint_every: Option<u64>,
    /// Durability of the run.
    pub durability: Durability,
    /// WAL append stripes (1 = the legacy single-stream log).
    pub stripes: usize,
    /// Self-logging (default) or the legacy manual discipline.
    pub discipline: LogDiscipline,
}

impl Default for CrashScenarioOptions {
    fn default() -> Self {
        CrashScenarioOptions {
            seed: 0xC4A5,
            txns: 120,
            interleave: 3,
            checkpoint_every: None,
            durability: Durability::Buffered,
            stripes: 1,
            discipline: LogDiscipline::SelfLogging,
        }
    }
}

impl CrashScenarioOptions {
    /// Override the durability level from the `HCC_DURABILITY` environment
    /// variable (`none` / `buffered` / `fsync`, case-insensitive) — how
    /// CI runs the recovery suite as a durability matrix. Unset or
    /// unrecognized values keep the current level.
    pub fn durability_from_env(mut self) -> Self {
        if let Some(d) = hcc_storage::durability_env_override() {
            self.durability = d;
        }
        self
    }

    /// Override the WAL stripe count from the `HCC_WAL_STRIPES`
    /// environment variable — CI's striping axis. Unset or unparsable
    /// values keep the current count.
    pub fn stripes_from_env(mut self) -> Self {
        if let Some(n) = hcc_storage::stripes_env_override() {
            self.stripes = n;
        }
        self
    }

    /// Apply every environment override (`HCC_DURABILITY`,
    /// `HCC_WAL_STRIPES`).
    pub fn env_overrides(self) -> Self {
        self.durability_from_env().stripes_from_env()
    }
}

/// Result of the workload phase.
#[derive(Debug)]
pub struct CrashWorkload {
    /// Committed effects by timestamp.
    pub oracle: Oracle,
    /// Transactions committed (== `oracle.len()`).
    pub committed: usize,
    /// Transactions aborted by conflicts/timeouts.
    pub aborted: usize,
    /// Checkpoints taken during the run.
    pub checkpoints: u64,
}

/// State rebuilt by recovery.
#[derive(Debug, PartialEq)]
pub struct RecoveredState {
    /// Account balance.
    pub balance: Rational,
    /// Queue contents, front first.
    pub queue: Vec<i64>,
    /// The checkpoint's watermark (0 when recovery started from scratch):
    /// every commit at or below it is folded into the snapshot.
    pub checkpoint_ts: u64,
    /// Timestamps of the replayed tail commits, ascending.
    pub tail_ts: Vec<u64>,
    /// Snapshot bytes of every recovered object, by name — the
    /// byte-level recovery state the differential test compares.
    pub snapshots: Vec<(String, Vec<u8>)>,
}

fn money(n: i64) -> Rational {
    Rational::from_int(n)
}

/// Run the randomized workload, logging through a [`Db`] opened at
/// `dir`, and close the database (an orderly close; combine with
/// [`truncate_tail`] to simulate the crash).
///
/// The interleaved transaction loop runs on `db.manager()` — the
/// documented low-level escape hatch — because keeping several
/// transactions open at once *from one thread* is exactly what
/// closure-scoped `transact` cannot express, and mixed op records of
/// concurrent transactions are the log shapes under test.
pub fn run_crash_workload(
    dir: &Path,
    opts: CrashScenarioOptions,
) -> Result<CrashWorkload, HccError> {
    let storage = StorageOptions {
        segment_max_bytes: 2048, // small segments: rotation + pruning exercised
        durability: opts.durability,
        group_commit: true,
        stripes: opts.stripes,
        policy: match opts.checkpoint_every {
            Some(n) => CompactionPolicy::every_n(n),
            None => CompactionPolicy::never(),
        },
    };
    let db = Db::builder().storage_options(storage).open(dir)?;
    let mgr = db.manager().clone();
    // Short timeouts: a conflicting interleaving aborts quickly and the
    // abort path gets logged coverage. Both disciplines build their
    // objects with the *same* options modulo the redo sink — they must
    // make identical scheduling decisions for the differential test to
    // bite — so the objects are attached rather than taken from
    // `db.object` (whose options would wire the sink unconditionally).
    let timeout = Some(std::time::Duration::from_millis(20));
    let obj_opts = match opts.discipline {
        LogDiscipline::SelfLogging => RuntimeOptions::with_timeout(timeout).with_redo(mgr.clone()),
        LogDiscipline::Manual => RuntimeOptions::with_timeout(timeout),
    };
    let acct = db.attach(Arc::new(AccountObject::with(
        "acct",
        Arc::new(hcc_adts::account::AccountHybrid),
        obj_opts.clone(),
    )))?;
    let queue = db.attach(Arc::new(QueueObject::<i64>::with(
        "q",
        Arc::new(hcc_adts::fifo_queue::QueueTableII),
        obj_opts,
    )))?;

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut oracle = Oracle::new();
    let mut aborted = 0usize;

    // `interleave` transactions stay open at once; each step extends one of
    // them or commits it, so op records of different transactions mix in
    // the log.
    struct Open {
        txn: std::sync::Arc<hcc_core::runtime::TxnHandle>,
        effects: Vec<Effect>,
        failed: bool,
    }
    let mut open: Vec<Open> = Vec::new();
    let mut started = 0usize;

    while started < opts.txns || !open.is_empty() {
        while open.len() < opts.interleave && started < opts.txns {
            open.push(Open { txn: mgr.begin(), effects: Vec::new(), failed: false });
            started += 1;
        }
        let slot = rng.gen_range(0..open.len());
        let finish =
            open[slot].failed || open[slot].effects.len() >= 4 || rng.gen_range(0..100u32) < 30;
        if finish {
            let o = open.swap_remove(slot);
            if o.failed || o.effects.is_empty() {
                mgr.abort(o.txn);
                aborted += 1;
            } else {
                match mgr.commit(o.txn) {
                    Ok(ts) => {
                        oracle.insert(ts.0, o.effects);
                        if opts.checkpoint_every.is_some() {
                            db.maybe_checkpoint()?;
                        }
                    }
                    Err(_) => aborted += 1,
                }
            }
            continue;
        }
        let o = &mut open[slot];
        let dice = rng.gen_range(0..100u32);
        let result: Result<Option<Effect>, hcc_core::runtime::ExecError> = if dice < 40 {
            let v = rng.gen_range(1..50i64);
            acct.credit(&o.txn, money(v)).map(|_| Some(Effect::Credit(v)))
        } else if dice < 60 {
            let v = rng.gen_range(1..80i64);
            acct.debit(&o.txn, money(v))
                .map(|ok| Some(if ok { Effect::DebitOk(v) } else { Effect::DebitOver(v) }))
        } else if dice < 90 || queue.committed_len() == 0 {
            let v = rng.gen_range(1..1000i64);
            queue.enq(&o.txn, v).map(|_| Some(Effect::Enq(v)))
        } else {
            queue.deq(&o.txn).map(|v| Some(Effect::Deq(v)))
        };
        match result {
            Ok(Some(effect)) => {
                if opts.discipline == LogDiscipline::Manual {
                    // The forget-to-log-prone path: the workload must
                    // remember to pair the execution with this call. The
                    // payload is synthesized through the ADT's own `redo`
                    // encoder — the storage-level `log_op` is the only
                    // caller-driven append left in the workspace.
                    let (object, bytes) = effect_redo(&effect);
                    db.storage().expect("manual discipline needs a store").log_op(
                        o.txn.id().0,
                        object,
                        &bytes,
                    )?;
                }
                o.effects.push(effect);
            }
            Ok(None) => {}
            Err(_) => o.failed = true, // conflict/timeout: abort on finish
        }
    }

    let checkpoints = db.storage().map(|s| s.checkpoints_taken()).unwrap_or(0);
    Ok(CrashWorkload { committed: oracle.len(), oracle, aborted, checkpoints })
}

/// The payload the manual discipline appends for this effect,
/// synthesized through the ADT's own `redo` encoder — by construction
/// byte-identical to what self-logging writes, with no hand-maintained
/// JSON shadow format to drift.
fn effect_redo(e: &Effect) -> (&'static str, Vec<u8>) {
    use hcc_adts::account::{AccountAdt, AccountInv, AccountRes};
    use hcc_adts::fifo_queue::{QueueAdt, QueueInv, QueueRes};
    use hcc_core::runtime::RuntimeAdt;

    let queue: QueueAdt<i64> = QueueAdt::default();
    match e {
        Effect::Credit(v) => (
            "acct",
            AccountAdt
                .redo(&AccountInv::Credit(money(*v)), &AccountRes::Ok)
                .expect("credit is mutating"),
        ),
        Effect::DebitOk(v) => (
            "acct",
            AccountAdt
                .redo(&AccountInv::Debit(money(*v)), &AccountRes::Debited)
                .expect("debit is mutating"),
        ),
        Effect::DebitOver(v) => (
            "acct",
            AccountAdt
                .redo(&AccountInv::Debit(money(*v)), &AccountRes::Overdraft)
                .expect("overdraft is logged"),
        ),
        Effect::Enq(v) => {
            ("q", queue.redo(&QueueInv::Enq(*v), &QueueRes::Ok).expect("enq is mutating"))
        }
        Effect::Deq(v) => {
            ("q", queue.redo(&QueueInv::Deq, &QueueRes::Item(*v)).expect("deq is mutating"))
        }
    }
}

fn rational_int(v: &serde_json::Value) -> i64 {
    let r: Rational = serde_json::from_value(v).expect("op payload holds a rational");
    assert!(r.is_integer(), "workload amounts are integers");
    i64::try_from(r.numerator()).expect("workload amounts fit i64")
}

pub(crate) fn effect_from_json(v: &serde_json::Value) -> Effect {
    match v["op"].as_str().expect("op payload has op") {
        "credit" => Effect::Credit(rational_int(&v["v"])),
        "debit" => {
            let n = rational_int(&v["v"]);
            if v["ok"].as_bool().unwrap_or(false) {
                Effect::DebitOk(n)
            } else {
                Effect::DebitOver(n)
            }
        }
        "enq" => Effect::Enq(v["v"].as_i64().expect("enq payload has v")),
        "deq" => Effect::Deq(v["v"].as_i64().expect("deq payload has v")),
        other => panic!("unknown logged op {other}"),
    }
}

/// Chop `bytes` off the end of **every stripe's** final WAL segment — the
/// injected crash point. Per-stripe loss is always a suffix (exactly what
/// a power failure does to each stripe's unflushed tail), which is the
/// shape striped recovery's per-object-prefix guarantee covers. Returns
/// how many bytes were removed in total.
pub fn truncate_tail(dir: &Path, bytes: u64) -> std::io::Result<u64> {
    let mut total = 0;
    for (_, stripe) in hcc_storage::wal::stripe_dirs(dir)? {
        let segments = hcc_storage::wal::list_segments(&stripe)?;
        let Some((_, last)) = segments.last() else { continue };
        let len = std::fs::metadata(last)?.len();
        let cut = bytes.min(len);
        let file = std::fs::OpenOptions::new().write(true).open(last)?;
        file.set_len(len - cut)?;
        file.sync_data()?;
        total += cut;
    }
    Ok(total)
}

/// Recover the store at `dir` through the [`Db`] facade alone — open
/// the database, ask for the typed handles, and the recovered state is
/// simply *there* (each object decodes and replays its own redo
/// payloads, pinning every logged response) — while independently
/// rebuilding the formal history from the raw log image and checking it
/// hybrid atomic with `hcc-verify`. Returns the reconstructed state.
pub fn recover_and_verify(dir: &Path) -> Result<RecoveredState, HccError> {
    use hcc_storage::Snapshot as _;

    // The raw image feeds the verifier; reading it first keeps this scan
    // independent of anything the facade's open does.
    let recovered = DurableStore::recover(dir)?;
    // The whole recovery path under test is these three calls: no
    // Registry, no replay loop, no checkpoint dispatch.
    let db =
        Db::builder().storage_options(StorageOptions::default().stripes_from_env()).open(dir)?;
    let acct = db.object::<AccountObject>("acct")?;
    let queue = db.object::<QueueObject<i64>>("q")?;
    let ckpt_ts = db.recovery_report().checkpoint_ts;
    let mut tail_ts = Vec::new();

    // Rebuild the formal history for the verifier (account = object 0,
    // queue = 1). The checkpoint enters the history the same way
    // `Snapshot::restore` installs it: as one bootstrap transaction
    // committed at the checkpoint timestamp — without it, a tail `deq` of
    // an item enqueued before the checkpoint would be illegal from the
    // initial state. The bootstrap state is decoded straight from the
    // checkpoint image (the live objects already hold checkpoint *plus*
    // tail).
    let mut hb = HistoryBuilder::new();
    if let Some(ckpt) = &recovered.checkpoint {
        let boot = hcc_adts::snapshot::BOOTSTRAP_TXN;
        let mut touched_queue = false;
        for (name, bytes) in &ckpt.objects {
            match name.as_str() {
                "acct" => {
                    let balance: Rational =
                        serde_json::from_slice(bytes).expect("account snapshot is a rational");
                    hb = hb.op(0, boot, AccountSpec::credit(balance), Value::Unit);
                }
                "q" => {
                    let items: Vec<i64> =
                        serde_json::from_slice(bytes).expect("queue snapshot is a list");
                    for item in items {
                        hb = hb.op(1, boot, QueueSpec::enq(item), Value::Unit);
                        touched_queue = true;
                    }
                }
                other => panic!("unexpected checkpointed object {other}"),
            }
        }
        hb = hb.commit(0, boot, ckpt.last_ts);
        if touched_queue {
            hb = hb.commit(1, boot, ckpt.last_ts);
        }
    }
    for committed in &recovered.committed {
        assert!(committed.ts > ckpt_ts, "tail commits lie above the checkpoint");
        for (object, op_bytes) in &committed.ops {
            let op: serde_json::Value =
                serde_json::from_slice(op_bytes).map_err(std::io::Error::from)?;
            let effect = effect_from_json(&op);
            match (&effect, object.as_str()) {
                (Effect::Credit(v), "acct") => {
                    hb = hb.op(0, committed.txn, AccountSpec::credit(money(*v)), Value::Unit);
                }
                (Effect::DebitOk(v), "acct") => {
                    hb = hb.op(0, committed.txn, AccountSpec::debit(money(*v)), AccountSpec::OK);
                }
                (Effect::DebitOver(v), "acct") => {
                    hb = hb.op(
                        0,
                        committed.txn,
                        AccountSpec::debit(money(*v)),
                        AccountSpec::OVERDRAFT,
                    );
                }
                (Effect::Enq(v), "q") => {
                    hb = hb.op(1, committed.txn, QueueSpec::enq(*v), Value::Unit);
                }
                (Effect::Deq(v), "q") => {
                    hb = hb.op(1, committed.txn, QueueSpec::deq(), *v);
                }
                (e, obj) => panic!("effect {e:?} logged against object {obj}"),
            }
        }
        // The recovered timestamp enters the history verbatim: commit
        // events only at the objects the transaction touched. (The live
        // replay already happened inside `db.object`, response-pinned.)
        let touched_acct = committed.ops.iter().any(|(o, _)| o == "acct");
        let touched_queue = committed.ops.iter().any(|(o, _)| o == "q");
        if touched_acct {
            hb = hb.commit(0, committed.txn, committed.ts);
        }
        if touched_queue {
            hb = hb.commit(1, committed.txn, committed.ts);
        }
        tail_ts.push(committed.ts);
    }

    let history = hb.build();
    history.well_formed().expect("recovered history is well formed");
    let specs = SystemSpecs::new()
        .with(ObjectId(0), hcc_adts::account::spec())
        .with(ObjectId(1), hcc_adts::fifo_queue::spec());
    assert!(
        hybrid_atomic(&history, &specs),
        "recovered history must be hybrid atomic:\n{history:?}"
    );

    // Surface what this recovery did, from the registry the open
    // populated (the registry is born at open, so the snapshot *is* the
    // recovery delta — nothing else has run yet).
    let snap = db.stats();
    eprintln!(
        "recovery: segments_scanned={} commits_replayed={} records_replayed={} \
         commits_dropped={} in_doubt={} torn_tails_repaired={}",
        snap.counter("recovery.segments_scanned"),
        snap.counter("recovery.commits_replayed"),
        snap.counter("recovery.records_replayed"),
        snap.counter("recovery.commits_dropped"),
        snap.counter("recovery.commits_in_doubt"),
        snap.counter("recovery.torn_tails_repaired"),
    );

    let queue_items: Vec<i64> = queue.inner().committed_snapshot().into_iter().collect();
    Ok(RecoveredState {
        balance: acct.committed_balance(),
        queue: queue_items,
        checkpoint_ts: ckpt_ts,
        tail_ts,
        snapshots: vec![("acct".to_string(), acct.snapshot()), ("q".to_string(), queue.snapshot())],
    })
}

/// Fold the oracle over the timestamp set `S` (ascending) into the state
/// the objects should hold.
pub fn fold_oracle(oracle: &Oracle, upto_inclusive: &[u64]) -> (Rational, Vec<i64>) {
    let mut balance = Rational::ZERO;
    let mut queue: std::collections::VecDeque<i64> = Default::default();
    for ts in upto_inclusive {
        for effect in oracle.get(ts).into_iter().flatten() {
            match effect {
                Effect::Credit(v) => balance += money(*v),
                Effect::DebitOk(v) => balance -= money(*v),
                Effect::DebitOver(_) => {}
                Effect::Enq(v) => queue.push_back(*v),
                Effect::Deq(v) => {
                    let head = queue.pop_front();
                    assert_eq!(head, Some(*v), "oracle queue disagrees with logged deq");
                }
            }
        }
    }
    (balance, queue.into_iter().collect())
}

/// End-to-end property: run, crash at `cut_bytes` off the tail, recover,
/// verify state equals the oracle folded over the surviving prefix.
/// Returns `(committed before crash, surviving commits)`.
pub fn crash_point_holds(
    dir: &Path,
    opts: CrashScenarioOptions,
    cut_bytes: u64,
) -> Result<(usize, usize), HccError> {
    let workload = run_crash_workload(dir, opts)?;
    truncate_tail(dir, cut_bytes)?;
    let state = recover_and_verify(dir)?;

    // The covered set is everything inside the checkpoint plus the
    // replayed tail.
    let all_ts: Vec<u64> = workload.oracle.keys().copied().collect();
    let mut covered: Vec<u64> = all_ts
        .iter()
        .copied()
        .filter(|t| *t <= state.checkpoint_ts)
        .chain(state.tail_ts.iter().copied())
        .collect();
    covered.sort();
    covered.dedup();
    if opts.stripes == 1 {
        // Single stripe: the log is one stream, so truncating its tail
        // can only drop a timestamp-suffix — survivors form a global
        // timestamp prefix (the driver commits in timestamp order).
        let expected_prefix: Vec<u64> = match covered.last() {
            Some(&max) => all_ts.iter().copied().filter(|t| *t <= max).collect(),
            None => Vec::new(),
        };
        assert_eq!(covered, expected_prefix, "survivors must form a timestamp prefix");
    }
    // Striped logs guarantee a *per-object* prefix, not a global one: a
    // cut on one stripe drops a suffix of each object routed there, and
    // commit-record op counts drop any transaction that lost part of
    // itself. The oracle fold below still must reproduce the recovered
    // state exactly (it asserts internal consistency, e.g. every replayed
    // deq matches the fold's queue head), and `recover_and_verify`
    // already checked the surviving history hybrid-atomic.

    let (balance, queue) = fold_oracle(&workload.oracle, &covered);
    assert_eq!(state.balance, balance, "recovered balance diverges from the oracle");
    assert_eq!(state.queue, queue, "recovered queue diverges from the oracle");
    Ok((workload.committed, covered.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hcc-crash-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn clean_shutdown_recovers_everything() {
        let dir = tmp("clean");
        let (committed, survived) =
            crash_point_holds(&dir, CrashScenarioOptions::default().env_overrides(), 0).unwrap();
        assert!(committed > 30, "workload committed too little: {committed}");
        assert_eq!(survived, committed, "no crash, nothing lost");
    }

    #[test]
    fn mid_log_crash_recovers_a_prefix() {
        let dir = tmp("cut");
        let (committed, survived) =
            crash_point_holds(&dir, CrashScenarioOptions::default().env_overrides(), 700).unwrap();
        assert!(survived <= committed);
    }

    #[test]
    fn checkpointed_run_recovers_from_checkpoint_plus_tail() {
        let dir = tmp("ckpt");
        let opts =
            CrashScenarioOptions { checkpoint_every: Some(15), ..CrashScenarioOptions::default() }
                .env_overrides();
        let (committed, survived) = crash_point_holds(&dir, opts, 0).unwrap();
        assert_eq!(survived, committed);
    }

    #[test]
    fn fsync_run_with_group_commit_loses_nothing_on_clean_close() {
        let dir = tmp("fsync");
        let opts = CrashScenarioOptions {
            durability: Durability::Fsync,
            txns: 40,
            ..CrashScenarioOptions::default()
        };
        let (committed, survived) = crash_point_holds(&dir, opts, 0).unwrap();
        assert_eq!(survived, committed);
    }

    #[test]
    fn manual_discipline_still_holds_for_the_differential_baseline() {
        let dir = tmp("manual");
        let opts = CrashScenarioOptions { discipline: LogDiscipline::Manual, ..Default::default() }
            .env_overrides();
        let (committed, survived) = crash_point_holds(&dir, opts, 0).unwrap();
        assert_eq!(survived, committed);
    }
}
