//! Experiment metrics and tabular reporting.

use crate::scheme::Scheme;
use std::time::Duration;

/// Aggregate results of one workload run.
#[derive(Clone, Debug)]
pub struct Metrics {
    /// Scenario name (e.g. `"queue-enq"`).
    pub scenario: String,
    /// Scheme under test.
    pub scheme: Scheme,
    /// Worker threads.
    pub threads: usize,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted (timeouts + deadlock victims), including
    /// retries.
    pub aborted: u64,
    /// Lock requests refused at least once (summed over objects).
    pub conflicts: u64,
    /// Condvar waits (summed over objects).
    pub waits: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl Metrics {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        self.committed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Aborts per committed transaction.
    ///
    /// The divisor is pinned at `committed.max(1)`: a run that committed
    /// nothing reports its aborts as a finite count-per-(at-least-)one
    /// rather than dividing by zero.
    ///
    /// ```
    /// use hcc_workload::{Metrics, Scheme};
    /// use std::time::Duration;
    ///
    /// let m = Metrics {
    ///     scenario: "doc".into(),
    ///     scheme: Scheme::Hybrid,
    ///     threads: 1,
    ///     committed: 0,
    ///     aborted: 3,
    ///     conflicts: 0,
    ///     waits: 0,
    ///     elapsed: Duration::from_secs(1),
    /// };
    /// assert_eq!(m.abort_ratio(), 3.0, "zero commits divide by max(committed, 1)");
    /// ```
    pub fn abort_ratio(&self) -> f64 {
        self.aborted as f64 / (self.committed.max(1)) as f64
    }

    /// Header for [`Metrics::row`].
    pub fn header() -> String {
        format!(
            "{:<22} {:<14} {:>7} {:>10} {:>8} {:>10} {:>9} {:>12}",
            "scenario", "scheme", "threads", "committed", "aborted", "conflicts", "waits", "txn/s"
        )
    }

    /// One aligned result row.
    pub fn row(&self) -> String {
        format!(
            "{:<22} {:<14} {:>7} {:>10} {:>8} {:>10} {:>9} {:>12.0}",
            self.scenario,
            self.scheme.name(),
            self.threads,
            self.committed,
            self.aborted,
            self.conflicts,
            self.waits,
            self.throughput()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Metrics {
        Metrics {
            scenario: "test".into(),
            scheme: Scheme::Hybrid,
            threads: 4,
            committed: 100,
            aborted: 10,
            conflicts: 5,
            waits: 7,
            elapsed: Duration::from_secs(2),
        }
    }

    #[test]
    fn throughput_and_ratio() {
        let m = m();
        assert!((m.throughput() - 50.0).abs() < 1e-9);
        assert!((m.abort_ratio() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn row_alignment_matches_header() {
        // Column count sanity: header and row split into the same number
        // of whitespace-separated fields.
        let h = Metrics::header();
        let r = m().row();
        assert_eq!(h.split_whitespace().count(), r.split_whitespace().count());
    }

    #[test]
    fn zero_elapsed_does_not_divide_by_zero() {
        let mut x = m();
        x.elapsed = Duration::ZERO;
        assert!(x.throughput().is_finite());
    }
}
