//! The crash workload of [`crash`](crate::crash), driven **over a real
//! socket**: client processes speak the `hcc-wire` protocol to an
//! `hcc-server` front door, the server is killed mid-load (SIGABRT in
//! the process harness, `ServerHandle::kill` in tests), clients
//! reconnect through an address file and finish their runs, and the
//! recovered store is verified against two independent witnesses:
//!
//! 1. **the log itself** — the recovered history must be hybrid atomic
//!    and the replayed objects must equal the log's own fold
//!    (delegated to [`crash::recover_and_verify`]);
//! 2. **the clients' ack records** — every commit a client was told
//!    about must appear in the recovered log with *exactly* the acked
//!    effects (no divergence, no double application), and under
//!    `Fsync` durability none of them may be missing at all.
//!
//! ## Outcome-unknown accounting
//!
//! When a connection dies mid-request the client does not resend (the
//! commit may have landed and only the ack was lost — see
//! `hcc-client`); the driver records the loss and reconnects. Local
//! bookkeeping is deliberately pessimistic in the direction that keeps
//! the workload safe: an outcome-unknown **deq** is assumed committed
//! (so the item is never counted as available again), an
//! outcome-unknown **enq** is assumed aborted (so nothing is counted
//! on its strength). Every deq the driver issues is therefore covered
//! by an item it *knows* committed — `QueueObject::deq` blocks while
//! empty, and a request that can never finish must not reach a worker.
//!
//! [`crash::recover_and_verify`]: crate::crash::recover_and_verify

use std::io::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

use hcc_client::{Client, ClientOptions};
use hcc_db::HccError;
use hcc_storage::DurableStore;
use hcc_wire::msg::{OpResult, TypeTag, View, WireOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::crash::{self, fold_oracle, Effect, Oracle};

/// Object names the socket workload drives — the same pair the
/// single-process crash workload uses, so the recovered history feeds
/// the same `hcc-verify` oracle unchanged.
pub const ACCOUNT: &str = "acct";
/// The FIFO queue's name (see [`ACCOUNT`]).
pub const QUEUE: &str = "q";

/// Tunables for one client driver run.
#[derive(Clone, Copy, Debug)]
pub struct SocketClientOptions {
    /// RNG seed; the op *choices* are deterministic given the seed
    /// (timestamps and interleavings of course are not).
    pub seed: u64,
    /// Transactions to push through (acked or consciously given up).
    pub txns: usize,
    /// Total patience for connecting/reconnecting before the run fails.
    pub deadline: Duration,
}

impl Default for SocketClientOptions {
    fn default() -> SocketClientOptions {
        SocketClientOptions { seed: 0x50C7, txns: 60, deadline: Duration::from_secs(60) }
    }
}

/// What one client knows at the end of its run: the commits it was
/// *told about*, and how often it had to give up or start over.
#[derive(Debug, Default)]
pub struct SocketClientReport {
    /// Acked commits in ack order: `(commit timestamp, effects)`.
    pub acked: Vec<(u64, Vec<Effect>)>,
    /// Requests whose outcome is unknown (connection died in between).
    pub unknown: usize,
    /// Transactions the server refused non-transiently (after the
    /// client's own retry budget — e.g. retries exhausted on a doomed
    /// conflict storm).
    pub aborted: usize,
    /// Times the driver had to re-resolve the address file and build a
    /// fresh session.
    pub reconnects: usize,
}

/// Read the server address published in `addr_file` (a single
/// `host:port` line). `None` while the file is absent or still empty —
/// the restarted server may not have published yet.
pub fn read_addr(addr_file: &Path) -> Option<String> {
    let text = std::fs::read_to_string(addr_file).ok()?;
    let addr = text.trim();
    if addr.is_empty() {
        None
    } else {
        Some(addr.to_string())
    }
}

/// Publish `addr` to `addr_file` atomically (write-then-rename), so a
/// polling client never reads a half-written address.
pub fn publish_addr(addr_file: &Path, addr: &str) -> std::io::Result<()> {
    let tmp = addr_file.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        writeln!(f, "{addr}")?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, addr_file)
}

/// Connect-and-handshake through the address file, retrying until
/// `deadline` from `start`: a restarted server binds a fresh port (no
/// `SO_REUSEADDR` games against `TIME_WAIT`) and republishes, so the
/// file — not any remembered address — is the source of truth.
pub fn connect_via(
    addr_file: &Path,
    start: Instant,
    deadline: Duration,
) -> Result<Client, HccError> {
    loop {
        if let Some(addr) = read_addr(addr_file) {
            match Client::connect_with(&addr, ClientOptions::default()) {
                Ok(client) => return Ok(client),
                Err(_) if start.elapsed() < deadline => {}
                Err(e) => return Err(e),
            }
        } else if start.elapsed() >= deadline {
            return Err(HccError::Protocol(format!(
                "no server address published at {} within {:?}",
                addr_file.display(),
                deadline
            )));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn open_objects(client: &mut Client) -> Result<(), HccError> {
    client.open(TypeTag::Account, ACCOUNT)?;
    client.open(TypeTag::QueueI64, QUEUE)
}

/// The effects a batch *would* have if it commits, derived from the
/// ops and the server's pinned responses.
fn effects_of(ops: &[WireOp], results: &[OpResult]) -> Vec<Effect> {
    ops.iter()
        .zip(results)
        .map(|(op, res)| match (op, res) {
            (WireOp::Credit { amount, .. }, _) => Effect::Credit(*amount),
            (WireOp::Debit { amount, .. }, OpResult::Debited(true)) => Effect::DebitOk(*amount),
            (WireOp::Debit { amount, .. }, OpResult::Debited(false)) => Effect::DebitOver(*amount),
            (WireOp::Enq { item, .. }, _) => Effect::Enq(*item),
            (WireOp::Deq { .. }, OpResult::Int(v)) => Effect::Deq(*v),
            (op, res) => panic!("response {res:?} does not answer {op:?}"),
        })
        .collect()
}

/// Drive the randomized bank + queue mix against the server published
/// in `addr_file`. Reconnects (through the file) as often as needed
/// within the deadline; never resends an outcome-unknown request.
pub fn run_socket_client(
    addr_file: &Path,
    opts: SocketClientOptions,
) -> Result<SocketClientReport, HccError> {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut report = SocketClientReport::default();
    // Items this client is *sure* are in the queue: acked own enqueues
    // minus acked-or-unknown own dequeues (see the module docs).
    let mut surplus: i64 = 0;

    let mut client = connect_via(addr_file, start, opts.deadline)?;
    open_objects(&mut client)?;

    let mut done = 0usize;
    while done < opts.txns {
        // A deq is always its own transaction, issued only against a
        // known-committed surplus; everything else batches 1–3 ops.
        let ops: Vec<WireOp> = if surplus > 0 && rng.gen_range(0..100u32) < 20 {
            vec![WireOp::Deq { name: QUEUE.into() }]
        } else {
            (0..rng.gen_range(1..4usize))
                .map(|_| match rng.gen_range(0..100u32) {
                    0..=44 => {
                        WireOp::Credit { name: ACCOUNT.into(), amount: rng.gen_range(1..50i64) }
                    }
                    45..=69 => {
                        WireOp::Debit { name: ACCOUNT.into(), amount: rng.gen_range(1..80i64) }
                    }
                    _ => WireOp::Enq { name: QUEUE.into(), item: rng.gen_range(1..1000i64) },
                })
                .collect()
        };
        let is_deq = matches!(ops.first(), Some(WireOp::Deq { .. }));
        match client.transact(ops.clone()) {
            Ok((ts, results)) => {
                let effects = effects_of(&ops, &results);
                surplus += effects.iter().filter(|e| matches!(e, Effect::Enq(_))).count() as i64;
                if is_deq {
                    surplus -= 1;
                }
                report.acked.push((ts, effects));
                done += 1;
            }
            Err(e) if e.is_transient() => {
                // `Client::transact` retries transients itself; one
                // leaking through means the budget is spent — the
                // transaction is aborted everywhere. Try the next mix.
                report.aborted += 1;
                done += 1;
            }
            Err(HccError::RetriesExhausted { .. }) => {
                report.aborted += 1;
                done += 1;
            }
            Err(_) => {
                // Connection lost (or the server is draining): the
                // outcome is unknown and the request is NOT resent.
                // Pessimistic bookkeeping: a deq is assumed committed.
                report.unknown += 1;
                if is_deq {
                    surplus -= 1;
                }
                done += 1;
                report.reconnects += 1;
                client = connect_via(addr_file, start, opts.deadline)?;
                open_objects(&mut client)?;
            }
        }
        if start.elapsed() >= opts.deadline {
            return Err(HccError::Protocol(format!(
                "socket workload overran its {:?} deadline after {done} transactions",
                opts.deadline
            )));
        }
    }

    // One consistent snapshot read over the wire before leaving: both
    // views pin the same watermark. (No ordering claim against this
    // client's acks — the stable watermark lags while *other* clients'
    // lower-timestamped transactions are still in flight.)
    let (_watermark, views) = client
        .read(None, vec![(TypeTag::Account, ACCOUNT.into()), (TypeTag::QueueI64, QUEUE.into())])?;
    assert_eq!(views.len(), 2, "two queries, two views");
    assert!(
        matches!(views[0], View::Balance { .. }) && matches!(views[1], View::Items(_)),
        "views answer their queries in order: {views:?}"
    );
    client.goodbye()?;
    Ok(report)
}

fn effect_code(e: &Effect) -> String {
    match e {
        Effect::Credit(v) => format!("C:{v}"),
        Effect::DebitOk(v) => format!("D:{v}"),
        Effect::DebitOver(v) => format!("O:{v}"),
        Effect::Enq(v) => format!("E:{v}"),
        Effect::Deq(v) => format!("Q:{v}"),
    }
}

fn effect_parse(s: &str) -> Effect {
    let (kind, v) = s.split_once(':').expect("effect code is kind:value");
    let v: i64 = v.parse().expect("effect value is an integer");
    match kind {
        "C" => Effect::Credit(v),
        "D" => Effect::DebitOk(v),
        "O" => Effect::DebitOver(v),
        "E" => Effect::Enq(v),
        "Q" => Effect::Deq(v),
        other => panic!("unknown effect code {other}"),
    }
}

/// Persist a driver's ack record so a separate verifier process can
/// hold the server's recovery against it. Plain text, one acked commit
/// per line: `ack <ts> <effect>*`.
pub fn write_report(path: &Path, report: &SocketClientReport) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str(&format!(
        "# socket-client acked={} unknown={} aborted={} reconnects={}\n",
        report.acked.len(),
        report.unknown,
        report.aborted,
        report.reconnects
    ));
    for (ts, effects) in &report.acked {
        out.push_str(&format!("ack {ts}"));
        for e in effects {
            out.push(' ');
            out.push_str(&effect_code(e));
        }
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Parse a report written by [`write_report`] back into its ack list.
pub fn read_report(path: &Path) -> std::io::Result<Vec<(u64, Vec<Effect>)>> {
    let text = std::fs::read_to_string(path)?;
    let mut acked = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("ack ") else { continue };
        let mut parts = rest.split_whitespace();
        let ts: u64 = parts.next().expect("ack line has a timestamp").parse().expect("ts");
        acked.push((ts, parts.map(effect_parse).collect()));
    }
    Ok(acked)
}

/// The verifier's summary: how the recovered log and the clients' ack
/// records relate.
#[derive(Debug)]
pub struct SocketVerdict {
    /// Commits recovered from the log.
    pub recovered: usize,
    /// Acked commits across every report.
    pub acked: usize,
    /// Acked commits found in the recovered log (with matching effects).
    pub survived: usize,
    /// Acked commits missing from the log — tolerated only under
    /// buffered durability (the crash outran the ack's flush).
    pub lost: usize,
}

/// Verify a recovered store against the clients' ack records.
///
/// Layered on [`crash::recover_and_verify`], which already checks the
/// recovered history hybrid atomic; this adds the *network* claims:
/// the log's own fold matches the recovered objects, every acked
/// commit present in the log carries exactly the acked effects (one
/// timestamp, one client, one application — the exactly-once
/// evidence), and with `require_all_acked` (fsync durability) no acked
/// commit may be missing at all.
pub fn verify_socket_recovery(
    dir: &Path,
    reports: &[Vec<(u64, Vec<Effect>)>],
    require_all_acked: bool,
) -> Result<SocketVerdict, HccError> {
    // Independent scan first: the log-derived oracle.
    let recovered = DurableStore::recover(dir)?;
    let mut oracle = Oracle::new();
    for committed in &recovered.committed {
        let effects = committed
            .ops
            .iter()
            .map(|(object, bytes)| {
                let op: serde_json::Value =
                    serde_json::from_slice(bytes).map_err(std::io::Error::from)?;
                assert!(
                    object == ACCOUNT || object == QUEUE,
                    "socket workload only drives {ACCOUNT}/{QUEUE}, log names {object}"
                );
                Ok(crash::effect_from_json(&op))
            })
            .collect::<Result<Vec<_>, HccError>>()?;
        oracle.insert(committed.ts, effects);
    }

    // Replay + hybrid-atomicity check through the existing oracle.
    let state = crash::recover_and_verify(dir)?;
    assert_eq!(
        state.checkpoint_ts, 0,
        "the socket harness runs with compaction off so the log is the whole history"
    );
    let all_ts: Vec<u64> = oracle.keys().copied().collect();
    let (balance, queue) = fold_oracle(&oracle, &all_ts);
    assert_eq!(state.balance, balance, "recovered balance diverges from the log's own fold");
    assert_eq!(state.queue, queue, "recovered queue diverges from the log's own fold");

    // The clients' acks against the log.
    let mut seen = std::collections::BTreeMap::new();
    let mut verdict = SocketVerdict { recovered: oracle.len(), acked: 0, survived: 0, lost: 0 };
    for (who, report) in reports.iter().enumerate() {
        for (ts, effects) in report {
            verdict.acked += 1;
            if let Some(other) = seen.insert(*ts, who) {
                panic!("commit ts {ts} acked to two clients ({other} and {who})");
            }
            match oracle.get(ts) {
                Some(logged) => {
                    assert_eq!(logged, effects, "commit {ts}: log and ack disagree on the effects");
                    verdict.survived += 1;
                }
                None => {
                    assert!(
                        !require_all_acked,
                        "fsync durability: acked commit {ts} missing from the recovered log"
                    );
                    verdict.lost += 1;
                }
            }
        }
    }
    // A single-stream log can only lose a suffix: under one stripe,
    // every acked commit at or below the highest survivor must itself
    // have survived.
    if hcc_storage::stripes_env_override().unwrap_or(1) == 1 {
        if let Some(&max_ts) = oracle.keys().next_back() {
            for report in reports {
                for (ts, _) in report {
                    assert!(
                        *ts > max_ts || oracle.contains_key(ts),
                        "acked commit {ts} below the surviving horizon {max_ts} was lost"
                    );
                }
            }
        }
    }
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_db::Db;
    use hcc_storage::CompactionPolicy;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn tmp(name: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hcc-socket-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn open_db(dir: &std::path::Path) -> Arc<Db> {
        Arc::new(
            Db::builder()
                .segment_max_bytes(4096)
                .compaction(CompactionPolicy::never())
                .env_overrides()
                .open(dir)
                .expect("open db"),
        )
    }

    /// Three concurrent socket clients against one in-process server,
    /// clean drain, then full verification — nothing acked may be lost
    /// on an orderly close regardless of durability level.
    #[test]
    fn clean_run_verifies_and_loses_nothing() {
        let dir = tmp("clean");
        let addr_file = dir.with_extension("addr");
        let db = open_db(&dir);
        let handle = hcc_server::serve(db.clone(), "127.0.0.1:0").expect("serve");
        publish_addr(&addr_file, &handle.local_addr().to_string()).expect("publish");

        let drivers: Vec<_> = (0..3u64)
            .map(|i| {
                let addr_file = addr_file.clone();
                std::thread::spawn(move || {
                    run_socket_client(
                        &addr_file,
                        SocketClientOptions { seed: 0xA11 + i, txns: 25, ..Default::default() },
                    )
                    .expect("driver run")
                })
            })
            .collect();
        let reports: Vec<_> = drivers.into_iter().map(|d| d.join().expect("join")).collect();
        handle.drain();
        drop(db);

        let acks: Vec<_> = reports.iter().map(|r| r.acked.clone()).collect();
        let verdict = verify_socket_recovery(&dir, &acks, true).expect("verify");
        assert_eq!(verdict.lost, 0, "clean drain loses nothing");
        assert_eq!(verdict.survived, verdict.acked);
        assert!(verdict.acked > 0, "drivers committed something");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&addr_file);
    }

    /// Kill the server mid-load, restart it on a fresh port behind the
    /// same address file, let the clients reconnect and finish, and
    /// verify — the in-process rendition of the SIGABRT cycle the
    /// `server_client` example runs as real processes.
    #[test]
    fn kill_heal_reconnect_verifies() {
        let dir = tmp("killheal");
        let addr_file = dir.with_extension("addr");
        let db = open_db(&dir);
        let handle = hcc_server::serve(db.clone(), "127.0.0.1:0").expect("serve");
        publish_addr(&addr_file, &handle.local_addr().to_string()).expect("publish");

        let drivers: Vec<_> = (0..2u64)
            .map(|i| {
                let addr_file = addr_file.clone();
                std::thread::spawn(move || {
                    run_socket_client(
                        &addr_file,
                        SocketClientOptions { seed: 0xBEE + i, txns: 40, ..Default::default() },
                    )
                    .expect("driver run")
                })
            })
            .collect();

        // Let some load land, then kill abruptly: queued answers are
        // lost exactly as a crash would lose them.
        while db.committed_count() < 10 {
            std::thread::sleep(Duration::from_millis(2));
        }
        handle.kill();
        drop(db);

        // Heal: recover the same store, publish the new address.
        let db = open_db(&dir);
        let handle = hcc_server::serve(db.clone(), "127.0.0.1:0").expect("re-serve");
        publish_addr(&addr_file, &handle.local_addr().to_string()).expect("republish");

        let reports: Vec<_> = drivers.into_iter().map(|d| d.join().expect("join")).collect();
        assert!(
            reports.iter().any(|r| r.reconnects > 0),
            "the kill landed mid-load, someone must have reconnected"
        );
        handle.drain();
        drop(db);

        let acks: Vec<_> = reports.iter().map(|r| r.acked.clone()).collect();
        // In-process kill flushes nothing extra, but every *acked*
        // commit was answered by a worker after its manager commit; the
        // orderly reopen then recovers whatever reached the OS. Only
        // fsync promises the full acked set, so tolerate losses here.
        let verdict = verify_socket_recovery(&dir, &acks, false).expect("verify");
        assert!(verdict.acked > 0);
        assert!(verdict.survived > 0, "the surviving prefix covers acked work");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&addr_file);
    }

    #[test]
    fn report_roundtrips_through_disk() {
        let report = SocketClientReport {
            acked: vec![
                (3, vec![Effect::Credit(5), Effect::DebitOver(80)]),
                (7, vec![Effect::Enq(12)]),
                (9, vec![Effect::Deq(12), Effect::DebitOk(2)]),
            ],
            unknown: 1,
            aborted: 2,
            reconnects: 1,
        };
        let path = tmp("report");
        write_report(&path, &report).expect("write");
        assert_eq!(read_report(&path).expect("read"), report.acked);
        let _ = std::fs::remove_file(&path);
    }
}
