//! The socket crash workload with a **replication pair**: the primary
//! serves clients and ships its WAL ([`hcc_repl::Primary`] embedded in
//! the server via `repl_listen`), a follower converges off the stream,
//! the primary is killed, the follower is **promoted** and re-published
//! behind the same address file, and clients finish their runs against
//! the promoted node.
//!
//! Verification layers three claims on top of the socket workload's
//! ack-record discipline ([`socket::verify_socket_recovery`]):
//!
//! 1. **no acked commit is lost by failover** — the follower had
//!    converged before the kill, so every commit *either* primary *or*
//!    promoted node acked must be in the promoted store with exactly
//!    the acked effects;
//! 2. **the converged history is hybrid atomic** — the promoted log
//!    passes the same `recover_and_verify` oracle the crash workloads
//!    use;
//! 3. **lagging follower reads are consistent prefixes** — every
//!    snapshot read sampled on the follower *while it lagged* must
//!    equal the fold of the final log's commits at or below the
//!    sample's watermark. A torn or reordered apply would show up here
//!    as a fold mismatch.
//!
//! [`socket::verify_socket_recovery`]: crate::socket::verify_socket_recovery

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hcc_adts::{AccountObject, QueueObject};
use hcc_db::{Db, HccError};
use hcc_repl::{Follower, ObjectResolver};
use hcc_spec::Rational;
use hcc_storage::{DurableObject, DurableStore};

use crate::crash::{self, fold_oracle, Oracle};
use crate::socket::{ACCOUNT, QUEUE};

/// The resolver a follower of the socket workload needs: the two object
/// names [`run_socket_client`](crate::socket::run_socket_client) drives,
/// mapped to their typed handles. Anything else in the stream is a
/// protocol breach and poisons the follower.
pub fn bank_queue_resolver() -> ObjectResolver {
    Arc::new(|db: &Db, name: &str| match name {
        ACCOUNT => {
            let obj = db.object::<AccountObject>(name).map_err(|e| e.to_string())?;
            Ok(obj as Arc<dyn DurableObject>)
        }
        QUEUE => {
            let obj = db.object::<QueueObject<i64>>(name).map_err(|e| e.to_string())?;
            Ok(obj as Arc<dyn DurableObject>)
        }
        other => Err(format!("socket workload only replicates {ACCOUNT}/{QUEUE}, got {other}")),
    })
}

/// One zero-lock snapshot read taken on a (possibly lagging) follower:
/// both views pinned at the same replicated watermark.
#[derive(Clone, Debug)]
pub struct PrefixSample {
    /// The follower's replicated stable watermark at the read.
    pub watermark: u64,
    /// The account balance the read observed.
    pub balance: Rational,
    /// The queue contents the read observed, front first.
    pub queue: Vec<i64>,
}

/// Take one consistent snapshot read on the follower — the same
/// wait-free `begin_read` path local readers use, pinned at whatever
/// watermark replication has witnessed so far. `None` until the
/// follower has applied enough for both objects to exist.
pub fn sample_follower_prefix(follower: &Follower) -> Option<PrefixSample> {
    let db = follower.db();
    // Opening the handles is what folds a not-yet-read object into the
    // snapshot horizon; on the follower's in-memory Db this is cheap
    // and idempotent.
    db.object::<AccountObject>(ACCOUNT).ok()?;
    db.object::<QueueObject<i64>>(QUEUE).ok()?;
    let rtx = db.begin_read();
    let watermark = rtx.watermark();
    let balance = rtx.view::<AccountObject>(ACCOUNT).ok()?;
    let queue: Vec<i64> = rtx.view::<QueueObject<i64>>(QUEUE).ok()?.into_iter().collect();
    Some(PrefixSample { watermark, balance, queue })
}

/// Rebuild the commit oracle (timestamp → effects) from a log directory
/// — the replica's own record of what it holds, independent of any
/// in-memory state.
pub fn oracle_from_log(dir: &Path) -> Result<Oracle, HccError> {
    let recovered = DurableStore::recover(dir)?;
    let mut oracle = Oracle::new();
    for committed in &recovered.committed {
        let effects = committed
            .ops
            .iter()
            .map(|(object, bytes)| {
                let op: serde_json::Value =
                    serde_json::from_slice(bytes).map_err(std::io::Error::from)?;
                assert!(
                    object == ACCOUNT || object == QUEUE,
                    "socket workload only drives {ACCOUNT}/{QUEUE}, log names {object}"
                );
                Ok(crash::effect_from_json(&op))
            })
            .collect::<Result<Vec<_>, HccError>>()?;
        oracle.insert(committed.ts, effects);
    }
    Ok(oracle)
}

/// Hold every sampled follower read against the final log: the views at
/// watermark `w` must equal the fold of exactly the commits with
/// `ts <= w`. This is the consistent-prefix claim — a read that saw a
/// later transaction without an earlier one, or a half-applied batch,
/// cannot match any prefix fold.
pub fn verify_prefix_samples(oracle: &Oracle, samples: &[PrefixSample]) {
    for sample in samples {
        let covered: Vec<u64> =
            oracle.keys().copied().filter(|ts| *ts <= sample.watermark).collect();
        let (balance, queue) = fold_oracle(oracle, &covered);
        assert_eq!(
            sample.balance, balance,
            "follower read at watermark {} is not the log's prefix fold",
            sample.watermark
        );
        assert_eq!(
            sample.queue, queue,
            "follower queue view at watermark {} is not the log's prefix fold",
            sample.watermark
        );
    }
}

/// Block until `follower` has durably stored and applied everything the
/// primary issued *and* its watermark caught up — the precondition for
/// a lossless promotion.
pub fn await_replication(db: &Db, follower: &Follower, deadline: Duration) -> Result<(), HccError> {
    let store = db.storage().expect("replication needs a durable primary");
    let start = Instant::now();
    loop {
        let target = store.last_issued_ticket();
        if follower.durable_ticket() >= target
            && follower.lag() == 0
            && follower.watermark() >= db.manager().stable_watermark()
        {
            return Ok(());
        }
        if follower.poisoned() {
            return Err(HccError::Protocol("follower poisoned while converging".into()));
        }
        if start.elapsed() >= deadline {
            return Err(HccError::Protocol(format!(
                "follower stuck: durable {} / target {target}, lag {}",
                follower.durable_ticket(),
                follower.lag()
            )));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::socket::{
        publish_addr, run_socket_client, verify_socket_recovery, SocketClientOptions,
    };
    use hcc_repl::FollowerOptions;
    use hcc_server::{serve_with, ServerOptions};
    use hcc_storage::CompactionPolicy;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    fn tmp(name: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hcc-replwl-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn open_db(dir: &std::path::Path) -> Arc<Db> {
        Arc::new(
            Db::builder()
                .segment_max_bytes(4096)
                .compaction(CompactionPolicy::never())
                .env_overrides()
                .open(dir)
                .expect("open db"),
        )
    }

    /// The full failover cycle: randomized socket load against a
    /// replicated primary, kill the primary, promote the follower,
    /// clients finish against the promoted node, then verify every ack
    /// and every lagging follower read against the promoted log.
    #[test]
    fn primary_kill_promote_converge_under_load() {
        let pdir = tmp("primary");
        let rdir = tmp("replica");
        let addr_file = pdir.with_extension("addr");

        let db = open_db(&pdir);
        let server = serve_with(
            db.clone(),
            "127.0.0.1:0",
            ServerOptions { repl_listen: Some("127.0.0.1:0".into()), ..ServerOptions::default() },
        )
        .expect("serve primary");
        publish_addr(&addr_file, &server.local_addr().to_string()).expect("publish");

        let follower = Follower::start(
            &rdir,
            &server.repl_addr().expect("repl listener").to_string(),
            bank_queue_resolver(),
            FollowerOptions {
                stripes: 2,
                segment_max_bytes: 4096,
                reconnect_backoff: Duration::from_millis(10),
                ..FollowerOptions::default()
            },
        )
        .expect("start follower");
        let follower = Arc::new(follower);

        // Sample zero-lock reads on the follower throughout phase 1 —
        // most land while it is genuinely lagging behind the load.
        let samples = Arc::new(Mutex::new(Vec::<PrefixSample>::new()));
        let stop_sampling = Arc::new(AtomicBool::new(false));
        let sampler = {
            let follower = follower.clone();
            let samples = samples.clone();
            let stop = stop_sampling.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if let Some(s) = sample_follower_prefix(&follower) {
                        samples.lock().push(s);
                    }
                    std::thread::sleep(Duration::from_millis(3));
                }
            })
        };

        // Phase 1: randomized load against the primary.
        let drivers: Vec<_> = (0..2u64)
            .map(|i| {
                let addr_file = addr_file.clone();
                std::thread::spawn(move || {
                    run_socket_client(
                        &addr_file,
                        SocketClientOptions { seed: 0xFA11 + i, txns: 30, ..Default::default() },
                    )
                    .expect("phase-1 driver")
                })
            })
            .collect();
        let mut reports: Vec<_> = drivers.into_iter().map(|d| d.join().expect("join")).collect();

        // Converge, then fail the primary.
        db.storage().unwrap().sync().expect("sync");
        await_replication(&db, &follower, Duration::from_secs(30)).expect("converge");
        server.kill();
        drop(db);

        stop_sampling.store(true, Ordering::Relaxed);
        sampler.join().expect("sampler");
        let samples = std::mem::take(&mut *samples.lock());

        // Promote: ordinary recovery over the replica directory, then
        // re-publish the promoted node behind the same address file.
        let follower = Arc::into_inner(follower).expect("sole follower handle");
        let promoted = follower
            .promote_with(
                Db::builder()
                    .segment_max_bytes(4096)
                    .compaction(CompactionPolicy::never())
                    .env_overrides(),
            )
            .expect("promote");
        let promoted = Arc::new(promoted);
        let server = serve_with(promoted.clone(), "127.0.0.1:0", ServerOptions::default())
            .expect("serve promoted");
        publish_addr(&addr_file, &server.local_addr().to_string()).expect("republish");

        // Phase 2: clients reconnect (via the file) and keep going
        // against the promoted node.
        let drivers: Vec<_> = (0..2u64)
            .map(|i| {
                let addr_file = addr_file.clone();
                std::thread::spawn(move || {
                    run_socket_client(
                        &addr_file,
                        SocketClientOptions { seed: 0xFA22 + i, txns: 20, ..Default::default() },
                    )
                    .expect("phase-2 driver")
                })
            })
            .collect();
        reports.extend(drivers.into_iter().map(|d| d.join().expect("join")));
        server.drain();
        drop(promoted);

        // Every ack from either side of the failover survived: phase-1
        // acks because the follower converged before the kill, phase-2
        // acks because the promoted node drained in order.
        let acks: Vec<_> = reports.iter().map(|r| r.acked.clone()).collect();
        let verdict = verify_socket_recovery(&rdir, &acks, true).expect("verify");
        assert_eq!(verdict.lost, 0, "failover lost an acked commit");
        assert_eq!(verdict.survived, verdict.acked);
        assert!(verdict.acked > 0, "drivers committed something");

        // And every lagging read the follower served was a consistent
        // prefix of the history that survived.
        let oracle = oracle_from_log(&rdir).expect("oracle");
        assert!(!samples.is_empty(), "the sampler observed the follower");
        verify_prefix_samples(&oracle, &samples);

        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&rdir);
        let _ = std::fs::remove_file(&addr_file);
    }
}
