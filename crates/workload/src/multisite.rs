//! Multi-site randomized crash workload: distributed transactions over
//! per-site WALs and a coordinator decision log, with kill points injected
//! into the coordinator (crash after the decision fsync, before phase 2)
//! and into **two or more participant sites per faulty round** (crash
//! between the yes-vote and the phase-2 message), healed by site recovery
//! plus bounded coordinator phase-2 retries.
//!
//! The property under test is **convergence**: after every round's
//! failures are healed — `recover_site` resolves in-doubt transactions
//! against the coordinator's recovered decisions, and
//! `Coordinator::retry_phase2` redelivers unacknowledged commits — every
//! site's balance equals the fold of the *decided* transactions' effects
//! at that site, both in the live objects and in a from-scratch recovery
//! of every site WAL. Transient `CommittedPartial` outcomes become full
//! commits; nothing is double-applied (redelivery is idempotent) and
//! nothing undecided survives.
//!
//! This driver deliberately runs on the low-level API (the documented
//! escape hatch, `docs/API.md`): sites log through their own [`SiteWal`]
//! and commit through the message-passing [`Coordinator`], not a local
//! `TxnManager` — and the final from-scratch check must recover a WAL
//! whose appender the live site still owns, which the read-only
//! `recover_site` scan permits and an appender-opening `Db::open` would
//! not. Applications recovering a participant site go through
//! `Db::builder().decisions(...)` instead (see
//! `examples/distributed_commit.rs`).

use hcc_adts::account::{AccountHybrid, AccountObject};
use hcc_core::runtime::{Durability, RuntimeOptions, TxnHandle};
use hcc_spec::{Rational, TxnId};
use hcc_storage::{CompactionPolicy, DurableStore, StorageOptions};
use hcc_txn::registry::{RecoveryError, Registry};
use hcc_txn::sim::{
    coordinator_decisions, recover_site, CommitOutcome, Coordinator, CoordinatorKill, Site, SiteWal,
};
use hcc_txn::LogicalClock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Options for one multi-site crash run.
#[derive(Clone, Copy, Debug)]
pub struct MultisiteOptions {
    /// RNG seed (the run is deterministic given the seed).
    pub seed: u64,
    /// Number of sites (each hosting one account object).
    pub sites: usize,
    /// Distributed transactions to attempt.
    pub rounds: usize,
    /// Phase-2 redelivery rounds per healing pass.
    pub retries: usize,
    /// Durability of every site WAL and the decision log.
    pub durability: Durability,
}

impl Default for MultisiteOptions {
    fn default() -> Self {
        MultisiteOptions {
            seed: 0x517E5,
            sites: 4,
            rounds: 24,
            retries: 3,
            durability: Durability::Fsync,
        }
    }
}

/// What a run did and healed.
#[derive(Clone, Copy, Debug, Default)]
pub struct MultisiteReport {
    /// Transactions whose commit was decided (fully or partially
    /// delivered at first).
    pub decided: usize,
    /// Transactions aborted by the protocol.
    pub aborted: usize,
    /// Rounds that killed ≥ 2 participant sites after their yes-votes.
    pub site_kill_rounds: usize,
    /// Rounds that killed the coordinator after its decision fsync.
    pub coordinator_kill_rounds: usize,
    /// `CommittedPartial` outcomes healed into full delivery.
    pub healed_partials: usize,
}

/// One site's live incarnation.
struct LiveSite {
    name: String,
    dir: PathBuf,
    site: Site,
    acct: Arc<AccountObject>,
    crashed: bool,
}

fn site_storage(durability: Durability) -> StorageOptions {
    StorageOptions { durability, policy: CompactionPolicy::never(), ..StorageOptions::default() }
}

/// Spawn (or revive) one site: open its WAL, build a fresh account
/// object wired to it, replay the WAL + `decisions` into the object, and
/// serve. The durable-site discipline (force-WAL-before-yes, log-before-
/// apply) comes from `Site::spawn_durable`.
fn spawn_site(
    dir: &Path,
    name: &str,
    durability: Durability,
    decisions: &hcc_txn::registry::Decisions,
) -> Result<(Site, Arc<AccountObject>), RecoveryError> {
    let store =
        DurableStore::open(dir, site_storage(durability)).map_err(RecoveryError::Storage)?;
    let wal = SiteWal::new(store);
    let acct = Arc::new(AccountObject::with(
        name,
        Arc::new(AccountHybrid),
        RuntimeOptions::default().with_redo(wal.clone()),
    ));
    let mut registry = Registry::new();
    registry.register(acct.clone());
    recover_site(dir, &registry, decisions)?;
    let site = Site::spawn_durable(format!("site-{name}"), vec![acct.inner().clone()], wal);
    Ok((site, acct))
}

/// Run the workload under `base_dir` (one subdirectory per site plus the
/// coordinator's decision log) and assert convergence. Returns the
/// report; panics on any divergence — this is a test harness.
pub fn multisite_crash_converges(base_dir: &Path, opts: MultisiteOptions) -> MultisiteReport {
    assert!(opts.sites >= 3, "need at least 3 sites for interesting kill sets");
    let coord_dir = base_dir.join("coordinator");
    let clock = Arc::new(LogicalClock::new());
    let coord_store = DurableStore::open(&coord_dir, site_storage(opts.durability))
        .expect("open coordinator decision log");
    let coord = Coordinator::new(clock)
        .with_vote_timeout(Duration::from_millis(100))
        .with_decision_log(coord_store);

    let mut sites: Vec<LiveSite> = (0..opts.sites)
        .map(|i| {
            let name = format!("acct-{i}");
            let dir = base_dir.join(format!("site-{i}"));
            let (site, acct) =
                spawn_site(&dir, &name, opts.durability, &Default::default()).expect("fresh site");
            LiveSite { name, dir, site, acct, crashed: false }
        })
        .collect();

    // The oracle: per-site balance deltas of *decided* transactions.
    let mut expected: Vec<Rational> = vec![Rational::ZERO; opts.sites];
    let mut report = MultisiteReport::default();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    for round in 0..opts.rounds {
        // Pick 2–3 distinct participant sites.
        let k = 2 + (rng.gen_range(0..2u32) as usize);
        let mut chosen: Vec<usize> = Vec::new();
        while chosen.len() < k {
            let s = rng.gen_range(0..opts.sites);
            if !chosen.contains(&s) {
                chosen.push(s);
            }
        }

        // Execute the round's operations against the live objects (ops
        // self-log into each site's WAL as they execute).
        let txn = TxnHandle::new(TxnId(round as u64 + 1));
        let mut deltas: Vec<(usize, Rational)> = Vec::new();
        let mut exec_failed = false;
        for (j, &s) in chosen.iter().enumerate() {
            let acct = &sites[s].acct;
            if j == 0 || rng.gen_range(0..100u32) < 60 {
                let v = Rational::from_int(rng.gen_range(1..50i64));
                if acct.credit(&txn, v).is_err() {
                    exec_failed = true;
                    break;
                }
                deltas.push((s, v));
            } else {
                let v = Rational::from_int(rng.gen_range(1..30i64));
                match acct.debit(&txn, v) {
                    Ok(true) => deltas.push((s, -v)),
                    Ok(false) => {} // overdraft refusal: logged, no delta
                    Err(_) => {
                        exec_failed = true;
                        break;
                    }
                }
            }
        }

        // Inject this round's failure before running the protocol.
        let dice = rng.gen_range(0..100u32);
        let mut killed_sites: Vec<usize> = Vec::new();
        let mut coord_kill = CoordinatorKill::None;
        if !exec_failed {
            if dice < 30 {
                // Kill 2 participants in the prepare→commit window.
                killed_sites = chosen.iter().copied().take(2).collect();
                for &s in &killed_sites {
                    sites[s].site.crash_after_prepare();
                }
                report.site_kill_rounds += 1;
            } else if dice < 45 {
                coord_kill = CoordinatorKill::AfterDecision;
                report.coordinator_kill_rounds += 1;
            }
        }

        let outcome = if exec_failed {
            // A refused execution should be impossible in this sequential
            // driver (rounds heal before the next begins); stay defensive
            // and roll the transaction back at its objects.
            for p in txn.participants() {
                p.abort_txn(txn.id());
            }
            CommitOutcome::Aborted { site: "driver".into() }
        } else {
            let refs: Vec<&Site> = chosen.iter().map(|&s| &sites[s].site).collect();
            coord.commit_with_kill(&txn, &refs, coord_kill)
        };

        for &s in &killed_sites {
            sites[s].crashed = true;
        }

        // Account the outcome.
        let (decided_ts, missed) = match outcome {
            CommitOutcome::Committed(ts) => (Some(ts), Vec::new()),
            CommitOutcome::CommittedPartial { ts, missed } => (Some(ts), missed),
            CommitOutcome::Aborted { .. } => (None, Vec::new()),
        };
        if let Some(_ts) = decided_ts {
            report.decided += 1;
            for (s, delta) in &deltas {
                expected[*s] += *delta;
            }
        } else {
            report.aborted += 1;
            // Make sure no site is left holding the aborted intent: the
            // coordinator already sent aborts to live sites; crashed ones
            // are rebuilt below.
        }

        // Heal: revive crashed sites from their WALs + the decision log,
        // then redeliver any unacknowledged phase 2.
        if sites.iter().any(|s| s.crashed) || !missed.is_empty() {
            let decisions = coordinator_decisions(&coord_dir).expect("decision log readable");
            for s in 0..opts.sites {
                if !sites[s].crashed {
                    continue;
                }
                // Drop the dead incarnation first: its thread holds the
                // WAL handle, and two appenders on one log directory
                // would be a correctness bug, not a simulation.
                let dir = sites[s].dir.clone();
                let name = sites[s].name.clone();
                {
                    let dead = &mut sites[s];
                    dead.site = Site::spawn("draining", Vec::new());
                    dead.acct = Arc::new(AccountObject::hybrid("draining"));
                }
                let (site, acct) = spawn_site(&dir, &name, opts.durability, &decisions)
                    .expect("site revives from its WAL");
                sites[s].site = site;
                sites[s].acct = acct;
                sites[s].crashed = false;
            }
            if let Some(ts) = decided_ts {
                if !missed.is_empty() {
                    let targets: Vec<&Site> = chosen.iter().map(|&s| &sites[s].site).collect();
                    match coord.retry_phase2(txn.id(), ts, &targets, opts.retries) {
                        CommitOutcome::Committed(_) => report.healed_partials += 1,
                        other => panic!("healing retry failed in round {round}: {other:?}"),
                    }
                }
            }
        }

        // Invariant after healing: every participant site's live balance
        // reflects exactly the decided history.
        for &s in &chosen {
            assert_eq!(
                sites[s].acct.committed_balance(),
                expected[s],
                "round {round}: site {s} diverged (outcome decided={decided_ts:?})",
            );
        }
    }

    // Final convergence: every site, live and from-scratch recovery.
    let decisions = coordinator_decisions(&coord_dir).expect("decision log readable");
    for (s, live) in sites.iter().enumerate() {
        assert_eq!(live.acct.committed_balance(), expected[s], "live site {s} diverged at end");
        let fresh = Arc::new(AccountObject::hybrid(&live.name));
        let mut registry = Registry::new();
        registry.register(fresh.clone());
        // The live incarnation still owns the WAL appender; recovery is a
        // read-only scan, and every decided commit is durable (`Fsync`).
        recover_site(&live.dir, &registry, &decisions).expect("site WAL recovers");
        assert_eq!(
            fresh.committed_balance(),
            expected[s],
            "from-scratch recovery of site {s} diverged"
        );
    }
    assert!(report.decided > 0, "workload decided nothing — kill rates too high?");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hcc-multisite-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn randomized_multisite_crashes_converge() {
        let dir = tmp("converge");
        let report = multisite_crash_converges(&dir, MultisiteOptions::default());
        assert!(report.site_kill_rounds + report.coordinator_kill_rounds > 0, "kills injected");
    }
}
