//! Banking workloads: single-account operation mixes (E8) and
//! multi-account transfers with deadlock potential (E13).

use crate::metrics::Metrics;
use crate::queue::bench_options;
use crate::scheme::{make_account, Scheme};
use hcc_spec::Rational;
use hcc_txn::TxnManager;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Operation mix for [`account_mix`], in percent (must sum to 100).
#[derive(Clone, Copy, Debug)]
pub struct Mix {
    /// Percentage of credits.
    pub credit_pct: u32,
    /// Percentage of debits.
    pub debit_pct: u32,
    /// Percentage of interest postings.
    pub post_pct: u32,
    /// Of the debits, the percentage deliberately exceeding the balance
    /// (overdraft attempts) — Table V makes these the expensive ones.
    pub overdraft_pct: u32,
}

impl Mix {
    /// The paper-motivated default: mostly credits/debits, occasional
    /// posting, rare overdrafts ("a significant cost if attempted
    /// overdrafts were infrequent").
    pub fn standard() -> Mix {
        Mix { credit_pct: 45, debit_pct: 45, post_pct: 10, overdraft_pct: 5 }
    }

    /// A mix with the given overdraft rate among debits.
    pub fn with_overdraft(pct: u32) -> Mix {
        Mix { overdraft_pct: pct, ..Mix::standard() }
    }
}

/// E8: `threads` workers run `txns_per_thread` transactions of
/// `ops_per_txn` operations drawn from `mix` against one shared account.
pub fn account_mix(
    scheme: Scheme,
    threads: usize,
    txns_per_thread: usize,
    ops_per_txn: usize,
    mix: Mix,
) -> Metrics {
    assert_eq!(mix.credit_pct + mix.debit_pct + mix.post_pct, 100, "mix must sum to 100");
    let mgr = TxnManager::new();
    let acct = Arc::new(make_account(scheme, "acct", bench_options(&mgr)));
    // Pre-fund generously so ordinary debits succeed.
    {
        let t = mgr.begin();
        acct.credit(&t, Rational::from_int(1_000_000)).unwrap();
        mgr.commit(t).unwrap();
    }
    let aborted = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(threads));
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..threads {
            let (mgr, acct, aborted) = (mgr.clone(), acct.clone(), aborted.clone());
            let barrier = barrier.clone();
            s.spawn(move || {
                barrier.wait();
                let mut rng = StdRng::seed_from_u64(0xACC0 + w as u64);
                for _ in 0..txns_per_thread {
                    'retry: loop {
                        let t = mgr.begin();
                        for _ in 0..ops_per_txn {
                            let dice = rng.gen_range(0..100u32);
                            let res = if dice < mix.credit_pct {
                                acct.credit(&t, Rational::from_int(rng.gen_range(1..50)))
                                    .map(|_| ())
                            } else if dice < mix.credit_pct + mix.debit_pct {
                                let amt = if rng.gen_range(0..100) < mix.overdraft_pct {
                                    // Guaranteed overdraft: far above any
                                    // reachable balance, small enough for
                                    // exact-rational cross-multiplication.
                                    Rational::from_int(1_000_000_000_000)
                                } else {
                                    Rational::from_int(rng.gen_range(1..50))
                                };
                                acct.debit(&t, amt).map(|_| ())
                            } else {
                                // 0% interest: Post's lock behaviour is
                                // value-independent, and a non-unit
                                // multiplier compounded over millions of
                                // operations would overflow the exact
                                // rationals the oracle tests rely on.
                                acct.post(&t, Rational::ZERO).map(|_| ())
                            };
                            if res.is_err() {
                                mgr.abort(t);
                                aborted.fetch_add(1, Ordering::Relaxed);
                                continue 'retry;
                            }
                            // Encourage interleaving on low core counts.
                            std::thread::yield_now();
                        }
                        if mgr.commit(t).is_ok() {
                            break;
                        }
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let snap = mgr.metrics().snapshot();
    Metrics {
        scenario: "account-mix".into(),
        scheme,
        threads,
        committed: mgr.committed_count() - 1, // exclude funding txn
        aborted: aborted.load(Ordering::Relaxed),
        conflicts: snap.sum_prefix("lock.refusals."),
        waits: snap.sum_prefix("lock.waits."),
        elapsed: start.elapsed(),
    }
}

/// E13-style transfers: `threads` workers move money between random pairs
/// of `n_accounts` accounts. Opposite-order transfers can deadlock; the
/// detector resolves them and the driver retries.
pub fn transfers(
    scheme: Scheme,
    n_accounts: usize,
    threads: usize,
    txns_per_thread: usize,
) -> TransferReport {
    let mgr = TxnManager::new();
    let accounts: Vec<_> = (0..n_accounts)
        .map(|i| Arc::new(make_account(scheme, &format!("acct-{i}"), bench_options(&mgr))))
        .collect();
    // Fund each account with 1000.
    for a in &accounts {
        let t = mgr.begin();
        a.credit(&t, Rational::from_int(1000)).unwrap();
        mgr.commit(t).unwrap();
    }
    let aborted = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(threads));
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..threads {
            let (mgr, accounts, aborted) = (mgr.clone(), accounts.clone(), aborted.clone());
            let barrier = barrier.clone();
            s.spawn(move || {
                barrier.wait();
                let mut rng = StdRng::seed_from_u64(0xBA4C + w as u64);
                for _ in 0..txns_per_thread {
                    loop {
                        let from = rng.gen_range(0..accounts.len());
                        let mut to = rng.gen_range(0..accounts.len());
                        if to == from {
                            to = (to + 1) % accounts.len();
                        }
                        let amt = Rational::from_int(rng.gen_range(1..20));
                        let t = mgr.begin();
                        std::thread::yield_now();
                        let ok = accounts[from]
                            .debit(&t, amt)
                            .and_then(|debited| {
                                if debited {
                                    accounts[to].credit(&t, amt).map(|_| true)
                                } else {
                                    Ok(false) // overdraft: commit the refusal
                                }
                            })
                            .is_ok();
                        if ok && mgr.commit(t.clone()).is_ok() {
                            break;
                        }
                        mgr.abort(t);
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let total: Rational =
        accounts.iter().map(|a| a.committed_balance()).fold(Rational::ZERO, |acc, b| acc + b);
    // One registry covers all the accounts: the manager's metrics already
    // sum refusals/waits across every object it built options for.
    let snap = mgr.metrics().snapshot();
    TransferReport {
        metrics: Metrics {
            scenario: "bank-transfers".into(),
            scheme,
            threads,
            committed: mgr.committed_count() - n_accounts as u64,
            aborted: aborted.load(Ordering::Relaxed),
            conflicts: snap.sum_prefix("lock.refusals."),
            waits: snap.sum_prefix("lock.waits."),
            elapsed: start.elapsed(),
        },
        total_balance: total,
        deadlock_victims: mgr.detector().victims(),
        expected_balance: Rational::from_int(1000 * n_accounts as i64),
    }
}

/// Result of [`transfers`], including the money-conservation check.
#[derive(Clone, Debug)]
pub struct TransferReport {
    /// Throughput metrics.
    pub metrics: Metrics,
    /// Sum of all committed balances after the run.
    pub total_balance: Rational,
    /// Expected sum (initial funding) — transfers conserve money.
    pub expected_balance: Rational,
    /// Deadlock victims chosen by the detector.
    pub deadlock_victims: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn account_mix_commits_everything() {
        let m = account_mix(Scheme::Hybrid, 4, 25, 3, Mix::standard());
        assert_eq!(m.committed, 100);
    }

    #[test]
    fn hybrid_beats_rw_on_conflicts() {
        let mix = Mix { credit_pct: 50, debit_pct: 40, post_pct: 10, overdraft_pct: 0 };
        let hybrid = account_mix(Scheme::Hybrid, 4, 100, 3, mix);
        let rw = account_mix(Scheme::Rw2pl, 4, 100, 3, mix);
        assert!(
            hybrid.conflicts < rw.conflicts,
            "hybrid {} < rw {}",
            hybrid.conflicts,
            rw.conflicts
        );
    }

    #[test]
    fn transfers_conserve_money() {
        let r = transfers(Scheme::Hybrid, 4, 4, 10);
        assert_eq!(r.total_balance, r.expected_balance);
        assert_eq!(r.metrics.committed, 40);
    }

    #[test]
    #[should_panic(expected = "mix must sum to 100")]
    fn bad_mix_is_rejected() {
        account_mix(
            Scheme::Hybrid,
            1,
            1,
            1,
            Mix { credit_pct: 50, debit_pct: 50, post_pct: 50, overdraft_pct: 0 },
        );
    }
}
