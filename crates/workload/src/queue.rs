//! Queue workloads: enqueue-only producers (E7) and producer/consumer
//! pipelines, including the Semiqueue comparison (E10).

use crate::metrics::Metrics;
use crate::scheme::{make_queue, make_semiqueue, Scheme};
use hcc_core::runtime::{BlockPolicy, RuntimeOptions};
use hcc_txn::TxnManager;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Blocking options tuned for benchmark runs: fast wake-ups, short
/// timeout, deadlock detection via the manager.
pub fn bench_options(mgr: &Arc<TxnManager>) -> RuntimeOptions {
    let mut opts = mgr.object_options();
    opts.block = BlockPolicy {
        wait_slice: Duration::from_micros(200),
        timeout: Some(Duration::from_millis(500)),
    };
    opts
}

/// E7: `threads` producers each run `txns_per_thread` transactions of
/// `ops_per_txn` enqueues against one shared queue.
///
/// Under hybrid (Table II) locking the producers never conflict; under
/// commutativity (Table III) and RW-2PL they serialize.
pub fn enqueue_only(
    scheme: Scheme,
    threads: usize,
    txns_per_thread: usize,
    ops_per_txn: usize,
) -> Metrics {
    let mgr = TxnManager::new();
    let q = Arc::new(make_queue(scheme, "q", bench_options(&mgr)));
    let aborted = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(threads));
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..threads {
            let (mgr, q, aborted) = (mgr.clone(), q.clone(), aborted.clone());
            let barrier = barrier.clone();
            s.spawn(move || {
                barrier.wait();
                for i in 0..txns_per_thread {
                    loop {
                        let t = mgr.begin();
                        let mut ok = true;
                        for k in 0..ops_per_txn {
                            let item = (w * 1_000_000 + i * 1_000 + k) as i64;
                            if q.enq(&t, item).is_err() {
                                ok = false;
                                break;
                            }
                            // Encourage interleaving on low core counts so
                            // transactions genuinely overlap.
                            std::thread::yield_now();
                        }
                        if ok && mgr.commit(t.clone()).is_ok() {
                            break;
                        }
                        mgr.abort(t);
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    // Conflicts and waits come from the manager's metric registry (one
    // `lock.refusals.*` / `lock.waits.*` counter per type and conflict
    // -class pair), not from per-object plumbing.
    let snap = mgr.metrics().snapshot();
    Metrics {
        scenario: "queue-enq".into(),
        scheme,
        threads,
        committed: mgr.committed_count(),
        aborted: aborted.load(Ordering::Relaxed),
        conflicts: snap.sum_prefix("lock.refusals."),
        waits: snap.sum_prefix("lock.waits."),
        elapsed: start.elapsed(),
    }
}

/// Producer/consumer pipeline over a FIFO queue: `producers` threads each
/// commit `items_per_producer` single-enqueue transactions while
/// `consumers` threads dequeue everything in single-dequeue transactions.
pub fn producer_consumer(
    scheme: Scheme,
    producers: usize,
    consumers: usize,
    items_per_producer: usize,
) -> Metrics {
    let mgr = TxnManager::new();
    let q = Arc::new(make_queue(scheme, "q", bench_options(&mgr)));
    run_pipeline(
        "queue-pipeline",
        scheme,
        &mgr,
        producers,
        consumers,
        items_per_producer,
        {
            let q = q.clone();
            move |mgr, item| {
                let t = mgr.begin();
                q.enq(&t, item).is_ok() && mgr.commit(t).is_ok()
            }
        },
        {
            let q = q.clone();
            move |mgr| {
                let t = mgr.begin();
                q.deq(&t).is_ok() && mgr.commit(t).is_ok()
            }
        },
    )
}

/// The same pipeline over a Semiqueue (E10): removers take different
/// items instead of conflicting.
pub fn semiqueue_producer_consumer(
    scheme: Scheme,
    producers: usize,
    consumers: usize,
    items_per_producer: usize,
) -> Metrics {
    let mgr = TxnManager::new();
    let sq = Arc::new(make_semiqueue(scheme, "sq", bench_options(&mgr)));
    run_pipeline(
        "semiqueue-pipeline",
        scheme,
        &mgr,
        producers,
        consumers,
        items_per_producer,
        {
            let sq = sq.clone();
            move |mgr, item| {
                let t = mgr.begin();
                sq.ins(&t, item).is_ok() && mgr.commit(t).is_ok()
            }
        },
        {
            let sq = sq.clone();
            move |mgr| {
                let t = mgr.begin();
                sq.rem(&t).is_ok() && mgr.commit(t).is_ok()
            }
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn run_pipeline(
    scenario: &str,
    scheme: Scheme,
    mgr: &Arc<TxnManager>,
    producers: usize,
    consumers: usize,
    items_per_producer: usize,
    produce: impl Fn(&Arc<TxnManager>, i64) -> bool + Send + Sync,
    consume: impl Fn(&Arc<TxnManager>) -> bool + Send + Sync,
) -> Metrics {
    let total = producers * items_per_producer;
    let consumed = Arc::new(AtomicU64::new(0));
    let aborted = Arc::new(AtomicU64::new(0));
    let produce = &produce;
    let consume = &consume;
    let barrier = Arc::new(Barrier::new(producers + consumers));
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..producers {
            let (mgr, aborted) = (mgr.clone(), aborted.clone());
            let barrier = barrier.clone();
            s.spawn(move || {
                barrier.wait();
                for i in 0..items_per_producer {
                    let item = (w * 1_000_000 + i) as i64;
                    while !produce(&mgr, item) {
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        for _ in 0..consumers {
            let (mgr, aborted, consumed) = (mgr.clone(), aborted.clone(), consumed.clone());
            let barrier = barrier.clone();
            s.spawn(move || {
                barrier.wait();
                loop {
                    // Claim an item slot before consuming.
                    if consumed.fetch_add(1, Ordering::Relaxed) >= total as u64 {
                        consumed.fetch_sub(1, Ordering::Relaxed);
                        break;
                    }
                    while !consume(&mgr) {
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let snap = mgr.metrics().snapshot();
    Metrics {
        scenario: scenario.into(),
        scheme,
        threads: producers + consumers,
        committed: mgr.committed_count(),
        aborted: aborted.load(Ordering::Relaxed),
        conflicts: snap.sum_prefix("lock.refusals."),
        waits: snap.sum_prefix("lock.waits."),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_enqueue_only_has_no_conflicts() {
        let m = enqueue_only(Scheme::Hybrid, 4, 5, 4);
        assert_eq!(m.committed, 20);
        assert_eq!(m.conflicts, 0, "concurrent enqueues never conflict");
        assert_eq!(m.aborted, 0);
    }

    #[test]
    fn commutativity_enqueue_only_conflicts() {
        let m = enqueue_only(Scheme::Commutativity, 4, 100, 4);
        assert_eq!(m.committed, 400, "all transactions eventually commit");
        assert!(m.conflicts > 0, "enqueues of distinct items conflict");
    }

    #[test]
    fn pipeline_moves_every_item() {
        for scheme in [Scheme::Hybrid, Scheme::Commutativity] {
            let m = producer_consumer(scheme, 2, 2, 10);
            // 20 produce txns + 20 consume txns.
            assert_eq!(m.committed, 40, "{scheme}");
        }
    }

    #[test]
    fn semiqueue_pipeline_moves_every_item() {
        let m = semiqueue_producer_consumer(Scheme::Hybrid, 2, 2, 10);
        assert_eq!(m.committed, 40);
    }
}
