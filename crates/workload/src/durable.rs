//! End-to-end durable banking throughput: manager, self-logging objects,
//! and the striped WAL together — the whole write path the `durable_mix`
//! bench sweeps over Fsync/Buffered × stripe counts × thread counts.
//!
//! Unlike `bank::account_mix` (pure in-memory concurrency-control cost),
//! every mutating operation here serializes its redo record into the WAL
//! and every commit pays the configured durability. Each worker thread
//! drives its own account (thread-affine, `accounts ≥ threads`), so the
//! measured contention is the *log's* — append routing, group-commit
//! batching, fsync scheduling — not lock conflicts at one hot object;
//! that is exactly the axis the stripe sweep varies.
//!
//! The optional mid-run fuzzy checkpoint measures the checkpoint stall:
//! how long the commit gate was held exclusively (the
//! `ckpt.last_gate_nanos` gauge in the system's metric registry) and the
//! longest gap any worker saw between consecutive commit completions
//! while the checkpoint was in flight.

use hcc_adts::account::{AccountHybrid, AccountObject};
use hcc_adts::counter::{CounterDef, CounterInv, CounterObject};
use hcc_adts::define::SpecObject;
use hcc_adts::set::{SetDef, SetInv, SetObject};
use hcc_core::runtime::Durability;
use hcc_db::Db;
use hcc_spec::Rational;
use hcc_storage::{CompactionPolicy, StorageOptions};
use hcc_txn::registry::Registry;
use hcc_txn::TxnManager;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Which API surface the workers drive — the measured subject of the
/// facade-overhead comparison in `durable_mix`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MixApi {
    /// Manual `TxnManager::begin`/`commit` calls (the low-level escape
    /// hatch).
    #[default]
    Raw,
    /// Closure-scoped [`Db::transact`] through the facade.
    Facade,
}

/// Options for one [`durable_account_mix`] run.
#[derive(Clone, Copy, Debug)]
pub struct DurableMixOptions {
    /// Worker threads.
    pub threads: usize,
    /// Transactions per worker.
    pub txns_per_thread: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Account objects (clamped up to `threads` so each worker has its
    /// own).
    pub accounts: usize,
    /// Commit durability.
    pub durability: Durability,
    /// WAL stripes.
    pub stripes: usize,
    /// Leader-based group commit (disable for the classical
    /// one-fsync-per-commit discipline, where the stripe lock is held
    /// across the fsync — the serialization striping decomposes).
    pub group_commit: bool,
    /// Issue one fuzzy checkpoint when roughly half the commits are in.
    pub checkpoint_mid_run: bool,
    /// Drive workers through the raw manager or the `Db` facade.
    pub api: MixApi,
}

impl Default for DurableMixOptions {
    fn default() -> Self {
        DurableMixOptions {
            threads: 8,
            txns_per_thread: 200,
            ops_per_txn: 4,
            accounts: 16,
            durability: Durability::Fsync,
            stripes: 1,
            group_commit: true,
            checkpoint_mid_run: false,
            api: MixApi::default(),
        }
    }
}

/// What one run measured.
#[derive(Clone, Debug)]
pub struct DurableMixReport {
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted (conflicts/timeouts — near zero by design).
    pub aborted: u64,
    /// Wall-clock time of the commit phase.
    pub elapsed: Duration,
    /// Committed transactions per second.
    pub commits_per_sec: f64,
    /// Nanoseconds the mid-run checkpoint held the commit gate
    /// exclusively (0 when no checkpoint ran).
    pub checkpoint_gate_nanos: u64,
    /// Longest gap between two consecutive commit completions observed
    /// by any worker while the checkpoint was in flight (0 when no
    /// checkpoint ran).
    pub checkpoint_max_commit_gap_nanos: u64,
    /// Final committed balance per account (the recovery oracle).
    pub final_balances: Vec<Rational>,
}

/// One transaction's operations, shared by both API paths so the
/// facade-overhead comparison measures the API, not the workload.
fn txn_ops(
    acct: &AccountObject,
    t: &Arc<hcc_core::runtime::TxnHandle>,
    w: usize,
    i: usize,
    ops_per_txn: usize,
) -> Result<(), hcc_core::runtime::ExecError> {
    for k in 0..ops_per_txn {
        let v = Rational::from_int(((w + i + k) % 40 + 1) as i64);
        if k % 4 == 3 {
            acct.debit(t, v)?;
        } else {
            acct.credit(t, v)?;
        }
    }
    Ok(())
}

/// The measurement harness both API paths run under: barrier start,
/// per-worker commit-gap tracking, optional mid-run checkpoint thread.
/// `run_txn(worker, i)` commits one transaction and reports success;
/// `checkpoint()` takes the mid-run checkpoint.
fn drive_mix(
    opts: &DurableMixOptions,
    run_txn: impl Fn(usize, usize) -> bool + Sync,
    checkpoint: impl FnOnce() + Send,
) -> (Duration, u64, u64) {
    let aborted = AtomicU64::new(0);
    let committed_so_far = AtomicU64::new(0);
    let ckpt_running = AtomicBool::new(false);
    let max_gap_in_ckpt = AtomicU64::new(0);
    let barrier = Barrier::new(opts.threads + usize::from(opts.checkpoint_mid_run));
    let total_target = (opts.threads * opts.txns_per_thread) as u64;

    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..opts.threads {
            let (run_txn, barrier) = (&run_txn, &barrier);
            let (aborted, committed_so_far) = (&aborted, &committed_so_far);
            let (ckpt_running, max_gap_in_ckpt) = (&ckpt_running, &max_gap_in_ckpt);
            s.spawn(move || {
                barrier.wait();
                let mut last_commit = Instant::now();
                for i in 0..opts.txns_per_thread {
                    if run_txn(w, i) {
                        committed_so_far.fetch_add(1, Ordering::Relaxed);
                        let now = Instant::now();
                        if ckpt_running.load(Ordering::Relaxed) {
                            let gap = now.duration_since(last_commit).as_nanos() as u64;
                            max_gap_in_ckpt.fetch_max(gap, Ordering::Relaxed);
                        }
                        last_commit = now;
                    } else {
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        if opts.checkpoint_mid_run {
            let (barrier, committed_so_far, ckpt_running) =
                (&barrier, &committed_so_far, &ckpt_running);
            s.spawn(move || {
                barrier.wait();
                while committed_so_far.load(Ordering::Relaxed) < total_target / 2 {
                    std::thread::yield_now();
                }
                ckpt_running.store(true, Ordering::Relaxed);
                checkpoint();
                ckpt_running.store(false, Ordering::Relaxed);
            });
        }
    });
    (start.elapsed(), aborted.load(Ordering::Relaxed), max_gap_in_ckpt.load(Ordering::Relaxed))
}

/// Drive the workload against a fresh store at `dir` and report, through
/// the API surface `opts.api` selects.
pub fn durable_account_mix(dir: &Path, opts: DurableMixOptions) -> DurableMixReport {
    let accounts = opts.accounts.max(opts.threads);
    let storage = StorageOptions {
        durability: opts.durability,
        stripes: opts.stripes,
        group_commit: opts.group_commit,
        policy: CompactionPolicy::never(), // the mid-run checkpoint is explicit
        ..StorageOptions::default()
    };
    match opts.api {
        MixApi::Raw => mix_raw(dir, &opts, accounts, storage),
        MixApi::Facade => mix_facade(dir, &opts, accounts, storage),
    }
}

/// The low-level path: manual manager wiring, explicit begin/commit —
/// the documented escape hatch, kept as the facade-overhead baseline.
fn mix_raw(
    dir: &Path,
    opts: &DurableMixOptions,
    accounts: usize,
    storage: StorageOptions,
) -> DurableMixReport {
    let mgr = TxnManager::with_storage(dir, storage).expect("open durable store");
    let accts: Vec<Arc<AccountObject>> = (0..accounts)
        .map(|i| {
            Arc::new(AccountObject::with(
                format!("acct-{i}"),
                Arc::new(AccountHybrid),
                mgr.object_options(),
            ))
        })
        .collect();
    let mut registry = Registry::new();
    for a in &accts {
        registry.register(a.clone());
    }

    let (elapsed, aborted, max_gap) = drive_mix(
        opts,
        |w, i| {
            let acct = &accts[w % accounts];
            let t = mgr.begin();
            if txn_ops(acct, &t, w, i, opts.ops_per_txn).is_ok() && mgr.commit(t.clone()).is_ok() {
                true
            } else {
                mgr.abort(t);
                false
            }
        },
        || {
            mgr.checkpoint_registry(&registry).expect("mid-run checkpoint").expect("store");
        },
    );

    let committed = mgr.committed_count();
    DurableMixReport {
        committed,
        aborted,
        elapsed,
        commits_per_sec: committed as f64 / elapsed.as_secs_f64(),
        checkpoint_gate_nanos: if opts.checkpoint_mid_run {
            mgr.metrics().snapshot().gauge("ckpt.last_gate_nanos") as u64
        } else {
            0
        },
        checkpoint_max_commit_gap_nanos: max_gap,
        final_balances: accts.iter().map(|a| a.committed_balance()).collect(),
    }
}

/// The facade path: `Db::open`, typed handles, `Db::transact` scopes —
/// zero manual registration or begin/commit calls.
fn mix_facade(
    dir: &Path,
    opts: &DurableMixOptions,
    accounts: usize,
    storage: StorageOptions,
) -> DurableMixReport {
    let db = Db::builder().storage_options(storage).open(dir).expect("open database");
    let accts: Vec<Arc<AccountObject>> = (0..accounts)
        .map(|i| db.object::<AccountObject>(&format!("acct-{i}")).expect("typed handle"))
        .collect();

    let (elapsed, aborted, max_gap) = drive_mix(
        opts,
        |w, i| {
            let acct = &accts[w % accounts];
            db.transact(|tx| txn_ops(acct, tx, w, i, opts.ops_per_txn).map_err(Into::into)).is_ok()
        },
        || {
            db.checkpoint().expect("mid-run checkpoint").expect("store");
        },
    );

    let committed = db.committed_count();
    DurableMixReport {
        committed,
        aborted,
        elapsed,
        commits_per_sec: committed as f64 / elapsed.as_secs_f64(),
        checkpoint_gate_nanos: if opts.checkpoint_mid_run {
            db.stats().gauge("ckpt.last_gate_nanos") as u64
        } else {
            0
        },
        checkpoint_max_commit_gap_nanos: max_gap,
        final_balances: accts.iter().map(|a| a.committed_balance()).collect(),
    }
}

/// Which ADT implementation flavor [`defined_adt_mix`] drives — the
/// declarative-surface overhead comparison: the same Counter + Set
/// workload through the hand-written twins (tuned `RuntimeAdt` +
/// pattern-matched `LockSpec`) or through the generic
/// `SpecObject<CounterDef>` / `SpecObject<SetDef>` path (view
/// materialization by replay, lock tests through the derived class
/// table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MixAdts {
    /// `CounterObject` / `SetObject` — the hand-written baseline.
    HandWritten,
    /// The ported `AdtDef` definitions under the derived lock relation.
    Defined,
}

/// What one [`defined_adt_mix`] run measured.
#[derive(Clone, Debug)]
pub struct DefinedMixReport {
    /// Transactions committed.
    pub committed: u64,
    /// Wall-clock time of the commit phase.
    pub elapsed: Duration,
    /// Committed transactions per second.
    pub commits_per_sec: f64,
    /// Final committed counter value per worker (the recovery oracle —
    /// identical across flavors for identical options).
    pub counter_totals: Vec<i64>,
}

/// Drive a Counter + Set workload (thread-affine object pairs, identical
/// op script) through either ADT flavor against a fresh store at `dir`.
/// Only `threads`, `txns_per_thread`, `ops_per_txn`, `durability`,
/// `stripes`, and `group_commit` of `opts` apply.
pub fn defined_adt_mix(dir: &Path, opts: DurableMixOptions, flavor: MixAdts) -> DefinedMixReport {
    enum Pair {
        Hand(Arc<CounterObject>, Arc<SetObject<i64>>),
        Defined(Arc<SpecObject<CounterDef>>, Arc<SpecObject<SetDef<i64>>>),
    }

    impl Pair {
        fn run_ops(
            &self,
            tx: &Arc<hcc_core::runtime::TxnHandle>,
            w: usize,
            i: usize,
            ops_per_txn: usize,
        ) -> Result<(), hcc_core::runtime::ExecError> {
            for k in 0..ops_per_txn {
                let v = ((w + i + k) % 40 + 1) as i64;
                let c_inv = if k % 4 == 3 { CounterInv::Dec(v) } else { CounterInv::Inc(v) };
                let s_inv = if k % 2 == 0 { SetInv::Add(v % 16) } else { SetInv::Remove(v % 16) };
                match self {
                    Pair::Hand(c, s) => {
                        c.inner().execute(tx, c_inv)?;
                        s.inner().execute(tx, s_inv)?;
                    }
                    Pair::Defined(c, s) => {
                        c.execute(tx, c_inv)?;
                        s.execute(tx, s_inv)?;
                    }
                }
            }
            Ok(())
        }

        fn counter_total(&self) -> i64 {
            match self {
                Pair::Hand(c, _) => c.committed_value(),
                Pair::Defined(c, _) => c.committed_state(),
            }
        }
    }

    let storage = StorageOptions {
        durability: opts.durability,
        stripes: opts.stripes,
        group_commit: opts.group_commit,
        policy: CompactionPolicy::never(),
        ..StorageOptions::default()
    };
    let db = Db::builder().storage_options(storage).open(dir).expect("open database");
    let pairs: Vec<Pair> = (0..opts.threads)
        .map(|w| match flavor {
            MixAdts::HandWritten => Pair::Hand(
                db.object::<CounterObject>(&format!("cnt-{w}")).expect("counter handle"),
                db.object::<SetObject<i64>>(&format!("set-{w}")).expect("set handle"),
            ),
            MixAdts::Defined => Pair::Defined(
                db.object::<SpecObject<CounterDef>>(&format!("cnt-{w}")).expect("counter handle"),
                db.object::<SpecObject<SetDef<i64>>>(&format!("set-{w}")).expect("set handle"),
            ),
        })
        .collect();

    let (elapsed, _aborted, _gap) = drive_mix(
        &DurableMixOptions { checkpoint_mid_run: false, ..opts },
        |w, i| {
            db.transact(|tx| pairs[w].run_ops(tx, w, i, opts.ops_per_txn).map_err(Into::into))
                .is_ok()
        },
        || {},
    );

    let committed = db.committed_count();
    DefinedMixReport {
        committed,
        elapsed,
        commits_per_sec: committed as f64 / elapsed.as_secs_f64(),
        counter_totals: pairs.iter().map(Pair::counter_total).collect(),
    }
}

/// Options for one [`read_heavy_mix`] run: a skewed 95/5 read/write
/// workload over a shared account population, followed by a pure-read
/// phase that proves the read path never touches the lock manager.
#[derive(Clone, Copy, Debug)]
pub struct ReadHeavyOptions {
    /// Worker threads (readers and writers are the same workers — each
    /// op flips a biased coin).
    pub threads: usize,
    /// Mixed-phase operations per worker.
    pub ops_per_thread: usize,
    /// Pure-read-phase snapshot reads per worker.
    pub pure_reads_per_thread: usize,
    /// Account objects; access is zipfian-skewed, so a handful are hot.
    pub accounts: usize,
    /// Probability an op is a snapshot read (the "95" in 95/5).
    pub read_fraction: f64,
    /// Zipf exponent of the access skew (1.0 ≈ classic web-style skew).
    pub zipf_exponent: f64,
    /// Commit durability for the write slice.
    pub durability: Durability,
    /// WAL stripes.
    pub stripes: usize,
    /// Leader-based group commit.
    pub group_commit: bool,
}

impl Default for ReadHeavyOptions {
    fn default() -> Self {
        ReadHeavyOptions {
            threads: 8,
            ops_per_thread: 400,
            pure_reads_per_thread: 200,
            accounts: 64,
            read_fraction: 0.95,
            zipf_exponent: 1.0,
            durability: Durability::Fsync,
            stripes: 4,
            group_commit: true,
        }
    }
}

/// What one [`read_heavy_mix`] run measured.
#[derive(Clone, Debug)]
pub struct ReadHeavyReport {
    /// Snapshot reads completed in the mixed phase.
    pub reads: u64,
    /// Write transactions committed in the mixed phase.
    pub writes_committed: u64,
    /// Wall-clock time of the mixed phase.
    pub elapsed: Duration,
    /// Mixed-phase operations (reads + writes) per second.
    pub ops_per_sec: f64,
    /// Snapshot reads completed in the pure-read phase.
    pub pure_reads: u64,
    /// Wall-clock time of the pure-read phase.
    pub pure_read_elapsed: Duration,
    /// Pure-read-phase reads per second — the headline the Fsync vs
    /// Buffered comparison runs on (durability should not move it).
    pub pure_reads_per_sec: f64,
    /// Sum of all `lock.grants.*` + `lock.refusals.*` + `lock.waits.*`
    /// counter deltas across the pure-read phase. The wait-free-read
    /// guarantee is exactly: this is zero.
    pub pure_read_lock_delta: u64,
}

/// Deterministic splitmix-style generator so runs are reproducible
/// without an RNG dependency.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Precomputed zipfian CDF over `n` ranks with exponent `s` — sampling
/// is then one uniform draw plus a binary search, cheap enough that the
/// generator never shows up next to a WAL append.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0;
    for rank in 1..=n {
        total += 1.0 / (rank as f64).powf(s);
        cdf.push(total);
    }
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

fn zipf_pick(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Drive a zipfian-skewed 95/5 read/write mix through the facade against
/// a fresh store at `dir`, then a pure-read phase bracketed by metric
/// snapshots.
///
/// The mixed phase is the decoupling measurement: snapshot reads ride
/// [`Db::transact_read`] while the 5% write slice pays the configured
/// durability, so read throughput under `Fsync` and `Buffered` should be
/// within noise of each other. The pure-read phase is the proof: its
/// reported `pure_read_lock_delta` sums every lock-manager counter
/// movement while only readers run, and the wait-free guarantee is that
/// it is exactly zero.
pub fn read_heavy_mix(dir: &Path, opts: ReadHeavyOptions) -> ReadHeavyReport {
    let storage = StorageOptions {
        durability: opts.durability,
        stripes: opts.stripes,
        group_commit: opts.group_commit,
        policy: CompactionPolicy::never(),
        ..StorageOptions::default()
    };
    let db = Db::builder().storage_options(storage).open(dir).expect("open database");
    let accts: Vec<Arc<AccountObject>> = (0..opts.accounts)
        .map(|i| db.object::<AccountObject>(&format!("acct-{i}")).expect("typed handle"))
        .collect();
    // Seed every account so the hottest ranks have committed history to
    // read before the first write of the run lands.
    for (i, a) in accts.iter().enumerate() {
        db.transact(|tx| a.credit(tx, Rational::from_int((i % 7 + 1) as i64)).map_err(Into::into))
            .expect("seed credit");
    }

    let cdf = zipf_cdf(opts.accounts, opts.zipf_exponent);
    let reads = AtomicU64::new(0);
    let writes = AtomicU64::new(0);
    let barrier = Barrier::new(opts.threads);
    let mixed_start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..opts.threads {
            let (db, accts, cdf, barrier) = (&db, &accts, &cdf, &barrier);
            let (reads, writes) = (&reads, &writes);
            s.spawn(move || {
                let mut rng = Rng(0x5eed ^ (w as u64));
                barrier.wait();
                for _ in 0..opts.ops_per_thread {
                    let acct = &accts[zipf_pick(cdf, rng.next_f64())];
                    if rng.next_f64() < opts.read_fraction {
                        let balance = db
                            .transact_read(|rtx| rtx.view_of(acct.as_ref()))
                            .expect("snapshot read");
                        assert!(balance >= Rational::from_int(0), "negative committed balance");
                        reads.fetch_add(1, Ordering::Relaxed);
                    } else if db
                        .transact(|tx| acct.credit(tx, Rational::from_int(1)).map_err(Into::into))
                        .is_ok()
                    {
                        writes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed = mixed_start.elapsed();

    let before = db.stats();
    let pure_start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..opts.threads {
            let (db, accts, cdf, barrier) = (&db, &accts, &cdf, &barrier);
            s.spawn(move || {
                let mut rng = Rng(0xfeed ^ (w as u64));
                barrier.wait();
                for _ in 0..opts.pure_reads_per_thread {
                    let acct = &accts[zipf_pick(cdf, rng.next_f64())];
                    db.transact_read(|rtx| rtx.view_of(acct.as_ref())).expect("pure read");
                }
            });
        }
    });
    let pure_read_elapsed = pure_start.elapsed();
    let delta = db.stats().delta(&before);
    let pure_read_lock_delta = delta.sum_prefix("lock.grants")
        + delta.sum_prefix("lock.refusals")
        + delta.sum_prefix("lock.waits");

    let reads = reads.load(Ordering::Relaxed);
    let pure_reads = (opts.threads * opts.pure_reads_per_thread) as u64;
    ReadHeavyReport {
        reads,
        writes_committed: writes.load(Ordering::Relaxed),
        elapsed,
        ops_per_sec: (opts.threads * opts.ops_per_thread) as f64 / elapsed.as_secs_f64(),
        pure_reads,
        pure_read_elapsed,
        pure_reads_per_sec: pure_reads as f64 / pure_read_elapsed.as_secs_f64(),
        pure_read_lock_delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hcc-durablemix-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn durable_mix_commits_everything_striped() {
        let dir = tmp("mix");
        let report = durable_account_mix(
            &dir,
            DurableMixOptions {
                threads: 4,
                txns_per_thread: 30,
                durability: Durability::Buffered,
                stripes: 4,
                checkpoint_mid_run: false,
                ..Default::default()
            },
        );
        assert_eq!(report.committed, 120);
        assert_eq!(report.aborted, 0, "thread-affine accounts should not conflict");
    }

    #[test]
    fn mid_run_checkpoint_does_not_stall_or_lose_commits() {
        let dir = tmp("ckpt");
        let report = durable_account_mix(
            &dir,
            DurableMixOptions {
                threads: 4,
                txns_per_thread: 60,
                durability: Durability::Fsync,
                stripes: 4,
                checkpoint_mid_run: true,
                ..Default::default()
            },
        );
        assert_eq!(report.committed, 240);
        assert!(report.checkpoint_gate_nanos > 0, "checkpoint ran");
        // The fuzzy gate holds no I/O: generously, under 50ms even on a
        // loaded CI box (the old stop-the-world path held it across
        // rotation fsyncs plus every snapshot).
        assert!(
            report.checkpoint_gate_nanos < 50_000_000,
            "gate held {} ns",
            report.checkpoint_gate_nanos
        );
    }

    /// The facade path commits everything the raw path does, and a bare
    /// `Db::open` + typed handles recovers its exact final state — no
    /// Registry, no replay loop.
    #[test]
    fn facade_mix_commits_and_recovers_through_db_open_alone() {
        let dir = tmp("facade");
        let opts = DurableMixOptions {
            threads: 4,
            txns_per_thread: 30,
            durability: Durability::Buffered,
            stripes: 4,
            api: MixApi::Facade,
            ..Default::default()
        };
        let report = durable_account_mix(&dir, opts);
        assert_eq!(report.committed, 120);
        assert_eq!(report.aborted, 0, "thread-affine accounts should not conflict");

        let db = Db::open(&dir).expect("reopen");
        for (i, expected) in report.final_balances.iter().enumerate() {
            let acct = db.object::<AccountObject>(&format!("acct-{i}")).expect("handle");
            assert_eq!(acct.committed_balance(), *expected, "account {i} diverged");
        }
    }

    /// Both ADT flavors of the defined-mix commit everything, agree on
    /// final state, and the defined flavor recovers through `Db::open`
    /// alone.
    #[test]
    fn defined_mix_flavors_agree_and_recover() {
        let opts = DurableMixOptions {
            threads: 4,
            txns_per_thread: 25,
            durability: Durability::Buffered,
            ..Default::default()
        };
        let dir_h = tmp("mix-hand");
        let hand = defined_adt_mix(&dir_h, opts, MixAdts::HandWritten);
        let dir_d = tmp("mix-defined");
        let defined = defined_adt_mix(&dir_d, opts, MixAdts::Defined);
        assert_eq!(hand.committed, 100);
        assert_eq!(defined.committed, 100);
        assert_eq!(hand.counter_totals, defined.counter_totals, "flavors agree on state");

        let db = Db::open(&dir_d).expect("reopen defined store");
        for (w, expected) in defined.counter_totals.iter().enumerate() {
            let c = db.object::<SpecObject<CounterDef>>(&format!("cnt-{w}")).expect("handle");
            assert_eq!(c.committed_state(), *expected, "worker {w} counter diverged");
        }
    }

    /// The read-heavy mix's pure-read phase never touches the lock
    /// manager: every `lock.grants.*` / `lock.refusals.*` /
    /// `lock.waits.*` counter is flat while only readers run — the
    /// wait-free-read guarantee, asserted on live metrics rather than
    /// code inspection.
    #[test]
    fn read_heavy_mix_pure_read_phase_takes_zero_locks() {
        let dir = tmp("readheavy");
        let report = read_heavy_mix(
            &dir,
            ReadHeavyOptions {
                threads: 4,
                ops_per_thread: 80,
                pure_reads_per_thread: 60,
                accounts: 16,
                durability: Durability::Buffered,
                stripes: 2,
                ..Default::default()
            },
        );
        assert_eq!(report.pure_read_lock_delta, 0, "pure-read phase moved a lock-manager counter");
        assert_eq!(report.pure_reads, 240);
        assert!(report.reads > 0, "mixed phase read nothing");
        assert!(report.writes_committed > 0, "mixed phase wrote nothing");
        // The deterministic generator makes the split reproducible: with
        // read_fraction 0.95 the write slice stays a small minority.
        assert!(
            report.reads > report.writes_committed * 5,
            "skew inverted: {} reads vs {} writes",
            report.reads,
            report.writes_committed
        );
    }

    /// Every commit acknowledged during a striped, fuzz-checkpointed,
    /// multi-threaded run is recoverable: fresh objects rebuilt from the
    /// checkpoint + ticket-merged tail match the live final balances
    /// (replay pins every logged response, so divergence would panic).
    #[test]
    fn striped_checkpointed_run_recovers_every_commit() {
        let dir = tmp("recover");
        let report = durable_account_mix(
            &dir,
            DurableMixOptions {
                threads: 4,
                txns_per_thread: 40,
                durability: Durability::Buffered,
                stripes: 8,
                checkpoint_mid_run: true,
                ..Default::default()
            },
        );
        assert_eq!(report.committed, 160);
        let recovered = hcc_storage::DurableStore::recover(&dir).unwrap();
        let ckpt = recovered.checkpoint.as_ref().expect("mid-run checkpoint present");
        assert!(ckpt.last_ts > 0);
        assert!(recovered.incomplete.is_empty(), "clean close loses nothing");

        let accounts = report.final_balances.len();
        let fresh: Vec<Arc<AccountObject>> =
            (0..accounts).map(|i| Arc::new(AccountObject::hybrid(format!("acct-{i}")))).collect();
        let mut registry = Registry::new();
        for a in &fresh {
            registry.register(a.clone());
        }
        registry.restore_and_replay(&recovered).expect("fuzzy image + tail replays");
        for (i, a) in fresh.iter().enumerate() {
            assert_eq!(
                a.committed_balance(),
                report.final_balances[i],
                "account {i} diverged after recovery"
            );
        }
    }
}
