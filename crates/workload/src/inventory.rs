//! The inventory: the second bundled `define_adt!` type, promoted from
//! `examples/custom_adt.rs` into the library so `adtcheck` audits it
//! alongside the leaderboard and the built-ins. The example keeps its
//! own self-contained copy (it is the "define your own ADT from
//! scratch" walkthrough); this module is the *library* definition the
//! static checks and workloads share.
//!
//! `restock(item, n)` adds stock, `take(item, n)` claims it (responding
//! whether the stock sufficed), `check(item)` reads the level. The
//! derived relation comes out per-item and response-sensitive: restocks
//! commute with each other, successful takes of one item compete, a
//! refused take is invalidated by that item's restock, and checks
//! conflict with same-item stock changes.

use hcc_adts::define::{Bounds, ConflictSpec, DeriveSpec, OpClass, SpecObject};
use hcc_adts::define_adt;
use hcc_spec::adt::{Adt, SharedAdt, SpecState};
use hcc_spec::{Inv, Operation, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Inventory as a dynamic state machine over `item → stock` tables
/// (zero-stock entries dropped, so states compare canonically).
pub struct InventorySpec;

fn entries(state: &SpecState) -> Vec<(String, i64)> {
    match &state.0 {
        Value::List(es) => es
            .iter()
            .map(|e| match e {
                Value::Pair(k, v) => (k.as_str().to_string(), v.as_int()),
                other => unreachable!("inventory entries are pairs, got {other:?}"),
            })
            .collect(),
        other => unreachable!("inventory state is a list, got {other:?}"),
    }
}

fn state_of(mut es: Vec<(String, i64)>) -> SpecState {
    es.retain(|(_, n)| *n > 0);
    es.sort();
    SpecState(Value::List(
        es.into_iter()
            .map(|(k, n)| Value::Pair(Box::new(Value::Str(k)), Box::new(Value::Int(n))))
            .collect(),
    ))
}

impl Adt for InventorySpec {
    fn initial(&self) -> SpecState {
        SpecState(Value::List(Vec::new()))
    }

    fn step(&self, state: &SpecState, inv: &Inv) -> Vec<(Value, SpecState)> {
        let mut es = entries(state);
        let item = inv.args[0].as_str().to_string();
        let stock = es.iter().find(|(k, _)| *k == item).map(|(_, n)| *n).unwrap_or(0);
        match inv.op {
            "restock" => {
                let n = inv.args[1].as_int();
                es.retain(|(k, _)| *k != item);
                es.push((item, stock + n));
                vec![(Value::Unit, state_of(es))]
            }
            "take" => {
                let n = inv.args[1].as_int();
                if stock >= n {
                    es.retain(|(k, _)| *k != item);
                    es.push((item, stock - n));
                    vec![(Value::Bool(true), state_of(es))]
                } else {
                    vec![(Value::Bool(false), state.clone())]
                }
            }
            "check" => vec![(Value::Int(stock), state.clone())],
            _ => vec![],
        }
    }

    fn type_name(&self) -> &'static str {
        "Inventory"
    }
}

/// The shared specification handle.
pub fn spec() -> SharedAdt {
    Arc::new(InventorySpec)
}

/// Inventory invocations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum InvOp {
    /// Add `n` units of `item`.
    Restock(String, i64),
    /// Take `n` units; responds whether the stock sufficed.
    Take(String, i64),
    /// Read an item's stock level.
    Check(String),
}

/// Inventory responses.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum InvRes {
    /// Restock acknowledgement.
    Ok,
    /// Did the take succeed?
    Taken(bool),
    /// The stock level read.
    Level(i64),
}

/// The inventory's operation classifier — public so `adtcheck` audits
/// exactly what the runtime lock classifies.
pub fn inv_classify(op: &Operation) -> OpClass {
    OpClass::new(match (op.inv.op, &op.res) {
        ("restock", _) => "Restock",
        ("take", Value::Bool(true)) => "Take-Ok",
        ("take", _) => "Take-Out",
        _ => "Check",
    })
}

/// The derivation alphabet: items a/b × counts 1/2 for restock and both
/// take outcomes, plus check levels 0..2.
pub fn inv_alphabet() -> Vec<Operation> {
    let mut ops = Vec::new();
    for item in ["a", "b"] {
        for n in [1i64, 2] {
            ops.push(Operation::new(Inv::binary("restock", item, n), Value::Unit));
            ops.push(Operation::new(Inv::binary("take", item, n), true));
            ops.push(Operation::new(Inv::binary("take", item, n), false));
        }
        for level in [0i64, 1, 2] {
            ops.push(Operation::new(Inv::unary("check", item), level));
        }
    }
    ops
}

/// The full derivation spec exactly as [`InventoryDef`]'s `conflicts`
/// states it.
pub fn inv_derive_spec() -> DeriveSpec {
    DeriveSpec {
        adt: spec(),
        alphabet: inv_alphabet(),
        classify: inv_classify,
        bounds: Bounds { max_h1: 2, max_h2: 2 },
    }
}

define_adt! {
    /// The inventory's runtime definition: state + ops + executable
    /// semantics + the spec to derive locking from.
    pub struct InventoryDef {
        name: "Inventory",
        state: BTreeMap<String, i64>,
        op: InvOp,
        res: InvRes,
        initial: BTreeMap::new,
        respond: |state: &BTreeMap<String, i64>, op: &InvOp| {
            let stock = |item: &String| state.get(item).copied().unwrap_or(0);
            match op {
                InvOp::Restock(..) => vec![InvRes::Ok],
                InvOp::Take(item, n) => vec![InvRes::Taken(stock(item) >= *n)],
                InvOp::Check(item) => vec![InvRes::Level(stock(item))],
            }
        },
        apply: |state: &mut BTreeMap<String, i64>, op: &InvOp, res: &InvRes| match (op, res) {
            (InvOp::Restock(item, n), _) => {
                *state.entry(item.clone()).or_insert(0) += n;
            }
            (InvOp::Take(item, n), InvRes::Taken(true)) => {
                let left = state.get(item).copied().unwrap_or(0) - n;
                if left > 0 {
                    state.insert(item.clone(), left);
                } else {
                    state.remove(item);
                }
            }
            _ => {}
        },
        read: |op: &InvOp, _res: &InvRes| matches!(op, InvOp::Check(_)),
        spec_op: |op: &InvOp, res: &InvRes| match (op, res) {
            (InvOp::Restock(item, n), _) => {
                Operation::new(Inv::binary("restock", item.as_str(), *n), Value::Unit)
            }
            (InvOp::Take(item, n), InvRes::Taken(ok)) => {
                Operation::new(Inv::binary("take", item.as_str(), *n), *ok)
            }
            (InvOp::Check(item), InvRes::Level(v)) => {
                Operation::new(Inv::unary("check", item.as_str()), *v)
            }
            other => unreachable!("ill-typed inventory op {other:?}"),
        },
        conflicts: || ConflictSpec::Derived(inv_derive_spec()),
    }
}

/// The typed handle.
pub type Inventory = SpecObject<InventoryDef>;

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::runtime::{LockSpec, SpecLock};

    /// The derived relation, pinned: per-item and response-sensitive.
    #[test]
    fn derived_relation_is_per_item() {
        let lock = SpecLock::<InventoryDef>::from_def();
        let restock = |i: &str, n: i64| (InvOp::Restock(i.into(), n), InvRes::Ok);
        let take = |i: &str, n: i64, ok: bool| (InvOp::Take(i.into(), n), InvRes::Taken(ok));
        let check = |i: &str, v: i64| (InvOp::Check(i.into()), InvRes::Level(v));
        assert!(!lock.conflicts(&restock("a", 1), &restock("a", 2)), "suppliers commute");
        assert!(lock.conflicts(&take("a", 1, true), &take("a", 1, true)), "takes compete");
        assert!(lock.conflicts(&take("a", 2, false), &restock("a", 1)), "restock unblocks refusal");
        assert!(lock.conflicts(&check("a", 1), &restock("a", 1)), "reads see stock changes");
        assert!(!lock.conflicts(&take("a", 1, true), &take("b", 1, true)), "items independent");
        assert_eq!(lock.name(), "hybrid-derived");
    }

    /// The ROADMAP's debug-build self-check for the second bundled
    /// user-defined type: doubling the stated bounds derives the same
    /// atoms.
    #[cfg(debug_assertions)]
    #[test]
    fn inventory_bounds_are_invariant_under_doubling() {
        hcc_adts::define::check_bounds_invariance(&inv_derive_spec())
            .expect("inventory derivation bounds have converged");
    }
}
