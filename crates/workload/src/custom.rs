//! The acceptance workload for the declarative ADT surface: a
//! **user-defined type written only against the public `define_adt!` /
//! `AdtDef` API** — no `RuntimeAdt`, `LockSpec`, `Snapshot`, or
//! `DbObject` impl anywhere in this module — driven through the [`Db`]
//! facade under the randomized kill-point crash scenario, with the
//! recovered history verified **hybrid atomic** against the same serial
//! specification the lock relation was derived from.
//!
//! The type is a *leaderboard* (a shape the paper never analyzed):
//! `submit(player, score)` reports whether it raised the player's best,
//! `best(player)` reads it. The derived conflict relation comes out
//! per-player and response-sensitive — winning submits of one player
//! conflict with each other and with that player's reads; *losing*
//! submits and cross-player operations run concurrently — which the
//! `derived_relation_is_per_player` test pins down.

use hcc_adts::define::{AdtDef, ConflictSpec, DeriveSpec, OpClass, SpecObject};
use hcc_adts::define_adt;
use hcc_db::{Db, HccError};
use hcc_spec::adt::{Adt, SharedAdt, SpecState};
use hcc_spec::history::HistoryBuilder;
use hcc_spec::{Inv, ObjectId, Operation, Value};
use hcc_storage::{CompactionPolicy, DurableStore, StorageOptions};
use hcc_verify::{hybrid_atomic, SystemSpecs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

// ---- the serial specification (what the user states once) --------------

/// The leaderboard's serial specification as a dynamic state machine:
/// state is the sorted `player → best` table, `submit` answers whether
/// it improved the best, `best` reads it (0 for unknown players).
pub struct LeaderboardSpec;

fn spec_entries(state: &SpecState) -> Vec<(String, i64)> {
    match &state.0 {
        Value::List(entries) => entries
            .iter()
            .map(|e| match e {
                Value::Pair(p, s) => (p.as_str().to_string(), s.as_int()),
                other => unreachable!("leaderboard entries are pairs, got {other:?}"),
            })
            .collect(),
        other => unreachable!("leaderboard state is a list, got {other:?}"),
    }
}

fn spec_state(entries: &[(String, i64)]) -> SpecState {
    SpecState(Value::List(
        entries
            .iter()
            .map(|(p, s)| Value::Pair(Box::new(Value::str(p)), Box::new(Value::Int(*s))))
            .collect(),
    ))
}

impl Adt for LeaderboardSpec {
    fn initial(&self) -> SpecState {
        SpecState(Value::List(Vec::new()))
    }

    fn step(&self, state: &SpecState, inv: &Inv) -> Vec<(Value, SpecState)> {
        let mut entries = spec_entries(state);
        let player = inv.args[0].as_str().to_string();
        let best = entries.iter().find(|(p, _)| *p == player).map(|(_, s)| *s).unwrap_or(0);
        match inv.op {
            "submit" => {
                let score = inv.args[1].as_int();
                if score > best {
                    match entries.iter_mut().find(|(p, _)| *p == player) {
                        Some(entry) => entry.1 = score,
                        None => {
                            entries.push((player, score));
                            entries.sort();
                        }
                    }
                    vec![(Value::Bool(true), spec_state(&entries))]
                } else {
                    vec![(Value::Bool(false), state.clone())]
                }
            }
            "best" => vec![(Value::Int(best), state.clone())],
            _ => vec![],
        }
    }

    fn type_name(&self) -> &'static str {
        "Leaderboard"
    }
}

/// The shared specification handle (the verifier's ground truth).
pub fn spec() -> SharedAdt {
    Arc::new(LeaderboardSpec)
}

// ---- the typed definition (the whole public-API surface) ---------------

/// Leaderboard invocations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LbOp {
    /// Record `score` for `player`; responds whether it beat their best.
    Submit(String, i64),
    /// Read `player`'s best (0 when unknown).
    Best(String),
}

/// Leaderboard responses.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LbRes {
    /// Did the submit improve the player's best?
    Improved(bool),
    /// The best read.
    Best(i64),
}

/// The leaderboard's operation classifier — public so `adtcheck` can
/// audit the derived table exactly as the runtime classifies it.
pub fn lb_classify(op: &Operation) -> OpClass {
    OpClass::new(match (op.inv.op, &op.res) {
        ("submit", Value::Bool(true)) => "Submit-Win",
        ("submit", _) => "Submit-Lose",
        _ => "Best",
    })
}

/// The derivation alphabet (players a/b × scores 1/2, win/lose submits,
/// bests 0..2) — public for the same audit.
pub fn lb_alphabet() -> Vec<Operation> {
    let mut ops = Vec::new();
    for player in ["a", "b"] {
        for score in [1i64, 2] {
            for win in [true, false] {
                ops.push(Operation::new(Inv::binary("submit", player, score), win));
            }
        }
        for best in [0i64, 1, 2] {
            ops.push(Operation::new(Inv::unary("best", player), best));
        }
    }
    ops
}

/// The full derivation spec exactly as [`LeaderboardDef`]'s `conflicts`
/// states it — the single source `adtcheck` audits and the debug
/// bounds-invariance test doubles.
pub fn lb_derive_spec() -> DeriveSpec {
    DeriveSpec {
        adt: spec(),
        alphabet: lb_alphabet(),
        classify: lb_classify,
        bounds: hcc_adts::define::Bounds { max_h1: 2, max_h2: 2 },
    }
}

define_adt! {
    /// The leaderboard, stated once: types + executable semantics + the
    /// serial spec to derive locking from. Everything else is generic.
    pub struct LeaderboardDef {
        name: "Leaderboard",
        state: BTreeMap<String, i64>,
        op: LbOp,
        res: LbRes,
        initial: BTreeMap::new,
        respond: |state: &BTreeMap<String, i64>, op: &LbOp| {
            let best = |p: &String| state.get(p).copied().unwrap_or(0);
            match op {
                LbOp::Submit(p, s) => vec![LbRes::Improved(*s > best(p))],
                LbOp::Best(p) => vec![LbRes::Best(best(p))],
            }
        },
        apply: |state: &mut BTreeMap<String, i64>, op: &LbOp, res: &LbRes| {
            if let (LbOp::Submit(p, s), LbRes::Improved(true)) = (op, res) {
                state.insert(p.clone(), *s);
            }
        },
        read: |op: &LbOp, _res: &LbRes| matches!(op, LbOp::Best(_)),
        spec_op: |op: &LbOp, res: &LbRes| match (op, res) {
            (LbOp::Submit(p, s), LbRes::Improved(win)) => {
                Operation::new(Inv::binary("submit", p.as_str(), *s), *win)
            }
            (LbOp::Best(p), LbRes::Best(v)) => {
                Operation::new(Inv::unary("best", p.as_str()), *v)
            }
            other => unreachable!("ill-typed leaderboard op {other:?}"),
        },
        conflicts: || ConflictSpec::Derived(lb_derive_spec()),
    }
}

/// The typed handle the workload (and any user) asks the [`Db`] for.
pub type Leaderboard = SpecObject<LeaderboardDef>;

// ---- the randomized kill-point crash workload --------------------------

/// The boards the workload writes to (two objects: multi-object commits
/// and object-affine striping both get exercised).
pub const BOARDS: [&str; 2] = ["season", "alltime"];

/// One committed, logged effect: a submit on board `board` (reads are
/// not logged — they have no durable effect).
#[derive(Clone, Debug, PartialEq)]
pub struct Submitted {
    /// Index into [`BOARDS`].
    pub board: usize,
    /// Player name.
    pub player: String,
    /// Submitted score.
    pub score: i64,
    /// The response: did it improve the player's best?
    pub improved: bool,
}

/// Committed effects keyed by commit timestamp.
pub type Oracle = BTreeMap<u64, Vec<Submitted>>;

/// Options for one run.
#[derive(Clone, Copy, Debug)]
pub struct CustomScenarioOptions {
    /// RNG seed (the run is deterministic given the seed).
    pub seed: u64,
    /// Transactions to attempt.
    pub txns: usize,
    /// Checkpoint on the EveryN policy (`None` = never).
    pub checkpoint_every: Option<u64>,
    /// WAL stripes.
    pub stripes: usize,
}

impl Default for CustomScenarioOptions {
    fn default() -> Self {
        CustomScenarioOptions { seed: 0x1EAD, txns: 90, checkpoint_every: None, stripes: 1 }
    }
}

impl CustomScenarioOptions {
    /// Apply the CI matrix overrides (`HCC_WAL_STRIPES`; durability is
    /// taken straight from `HCC_DURABILITY` by the storage options).
    pub fn env_overrides(mut self) -> Self {
        if let Some(n) = hcc_storage::stripes_env_override() {
            self.stripes = n;
        }
        self
    }
}

/// Run the randomized leaderboard workload through a [`Db`] at `dir` and
/// close it (combine with [`crate::crash::truncate_tail`] to crash).
/// Returns the committed-effect oracle.
pub fn run_custom_workload(dir: &Path, opts: CustomScenarioOptions) -> Result<Oracle, HccError> {
    let storage = StorageOptions {
        segment_max_bytes: 2048,
        stripes: opts.stripes,
        policy: match opts.checkpoint_every {
            Some(n) => CompactionPolicy::every_n(n),
            None => CompactionPolicy::never(),
        },
        ..StorageOptions::default()
    }
    .durability_from_env();
    let db = Db::builder().storage_options(storage).open(dir)?;
    let boards: Vec<Arc<Leaderboard>> =
        BOARDS.iter().map(|name| db.object::<Leaderboard>(name)).collect::<Result<_, _>>()?;

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut oracle = Oracle::new();
    let players = ["ada", "bob", "cy", "dot"];
    for _ in 0..opts.txns {
        // 1–3 operations per transaction, mixing boards and players.
        let n_ops = rng.gen_range(1..4usize);
        let script: Vec<(usize, String, i64, bool)> = (0..n_ops)
            .map(|_| {
                (
                    rng.gen_range(0..BOARDS.len()),
                    players[rng.gen_range(0..players.len())].to_string(),
                    rng.gen_range(1..40i64),
                    rng.gen_range(0..10u32) < 2, // ~20% reads
                )
            })
            .collect();
        let mut effects = Vec::new();
        let committed = db.transact_ts(|tx| {
            effects.clear();
            for (board, player, score, is_read) in &script {
                if *is_read {
                    boards[*board].execute(tx, LbOp::Best(player.clone()))?;
                } else {
                    let res = boards[*board].execute(tx, LbOp::Submit(player.clone(), *score))?;
                    let LbRes::Improved(improved) = res else { unreachable!("submit improves") };
                    effects.push(Submitted {
                        board: *board,
                        player: player.clone(),
                        score: *score,
                        improved,
                    });
                }
            }
            Ok(())
        });
        if let Ok(((), ts)) = committed {
            oracle.insert(ts.0, std::mem::take(&mut effects));
        }
        if opts.checkpoint_every.is_some() {
            db.maybe_checkpoint()?;
        }
    }
    Ok(oracle)
}

/// Fold the oracle over the covered timestamp set into per-board state.
pub fn fold_oracle(oracle: &Oracle, covered: &[u64]) -> Vec<BTreeMap<String, i64>> {
    let mut boards = vec![BTreeMap::new(); BOARDS.len()];
    for ts in covered {
        for s in oracle.get(ts).into_iter().flatten() {
            if s.improved {
                boards[s.board].insert(s.player.clone(), s.score);
            }
        }
    }
    boards
}

/// What [`recover_and_verify`] rebuilt.
#[derive(Debug)]
pub struct RecoveredBoards {
    /// Per-board recovered state, indexed like [`BOARDS`].
    pub boards: Vec<BTreeMap<String, i64>>,
    /// The restored checkpoint's watermark (0 = none).
    pub checkpoint_ts: u64,
    /// Timestamps of the replayed tail commits, ascending.
    pub tail_ts: Vec<u64>,
}

/// Recover the database at `dir` through the facade alone — `Db::open` +
/// two typed handles, all generic machinery — and independently verify
/// the recovered raw history **hybrid atomic** against the leaderboard's
/// serial specification.
pub fn recover_and_verify(dir: &Path) -> Result<RecoveredBoards, HccError> {
    let def = LeaderboardDef;
    // The raw image feeds the verifier, independent of the facade path.
    let recovered = DurableStore::recover(dir)?;
    let db = Db::builder().storage_options(StorageOptions::default().env_overrides()).open(dir)?;
    let boards: Vec<Arc<Leaderboard>> =
        BOARDS.iter().map(|name| db.object::<Leaderboard>(name)).collect::<Result<_, _>>()?;
    let ckpt_ts = db.recovery_report().checkpoint_ts;

    // Rebuild the formal history: the checkpoint image enters as one
    // bootstrap transaction of winning submits (that is also how the
    // spec state reaches the snapshot's table), then the committed tail
    // decodes through the *definition's own codec* into spec operations.
    let boot = hcc_adts::snapshot::BOOTSTRAP_TXN;
    let mut hb = HistoryBuilder::new();
    if let Some(ckpt) = &recovered.checkpoint {
        let mut boot_touched = [false; BOARDS.len()];
        for (name, bytes) in &ckpt.objects {
            let board = BOARDS.iter().position(|b| b == name).expect("checkpointed board is known");
            let state = def.decode_state(bytes).expect("checkpoint state decodes");
            for (player, score) in &state {
                hb =
                    hb.op(board as u64, boot, Inv::binary("submit", player.as_str(), *score), true);
            }
            boot_touched[board] |= !state.is_empty();
        }
        for (board, touched) in boot_touched.iter().enumerate() {
            if *touched {
                hb = hb.commit(board as u64, boot, ckpt.last_ts);
            }
        }
    }
    let mut tail_ts = Vec::new();
    for committed in &recovered.committed {
        let mut touched = [false; BOARDS.len()];
        for (object, bytes) in &committed.ops {
            let board = BOARDS.iter().position(|b| b == object).expect("board is known");
            let (op, res) = def.decode_op(bytes).expect("logged op decodes");
            let spec_op = def.spec_op(&op, &res);
            hb = hb.op(board as u64, committed.txn, spec_op.inv, spec_op.res);
            touched[board] = true;
        }
        for (board, touched) in touched.iter().enumerate() {
            if *touched {
                hb = hb.commit(board as u64, committed.txn, committed.ts);
            }
        }
        tail_ts.push(committed.ts);
    }
    let history = hb.build();
    history.well_formed().expect("recovered history is well formed");
    let mut specs = SystemSpecs::new();
    for board in 0..BOARDS.len() {
        specs = specs.with(ObjectId(board as u64), spec());
    }
    assert!(
        hybrid_atomic(&history, &specs),
        "recovered custom-ADT history must be hybrid atomic:\n{history:?}"
    );

    let states = boards.iter().map(|b| b.committed_state()).collect();
    Ok(RecoveredBoards { boards: states, checkpoint_ts: ckpt_ts, tail_ts })
}

/// End-to-end property: run, cut `cut_bytes` off every stripe's tail,
/// recover, verify hybrid atomicity, and check the recovered boards
/// equal the oracle folded over the surviving coverage. Returns
/// `(committed, survived)` transaction counts.
pub fn custom_crash_point_holds(
    dir: &Path,
    opts: CustomScenarioOptions,
    cut_bytes: u64,
) -> Result<(usize, usize), HccError> {
    let oracle = run_custom_workload(dir, opts)?;
    crate::crash::truncate_tail(dir, cut_bytes)?;
    let recovered = recover_and_verify(dir)?;

    let mut covered: Vec<u64> = oracle
        .keys()
        .copied()
        .filter(|ts| *ts <= recovered.checkpoint_ts)
        .chain(recovered.tail_ts.iter().copied())
        .collect();
    covered.sort();
    covered.dedup();
    let expected = fold_oracle(&oracle, &covered);
    assert_eq!(recovered.boards, expected, "recovered boards diverge from the oracle fold");
    Ok((oracle.len(), covered.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::runtime::{LockSpec, SpecLock};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hcc-custom-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    /// The derived relation, pinned: per-player, response-sensitive —
    /// winning submits conflict with each other and with reads of the
    /// same player; losing submits and cross-player operations do not.
    #[test]
    fn derived_relation_is_per_player() {
        let lock = SpecLock::<LeaderboardDef>::from_def();
        let win = |p: &str, s: i64| (LbOp::Submit(p.into(), s), LbRes::Improved(true));
        let lose = |p: &str, s: i64| (LbOp::Submit(p.into(), s), LbRes::Improved(false));
        let best = |p: &str, v: i64| (LbOp::Best(p.into()), LbRes::Best(v));
        assert!(lock.conflicts(&win("ada", 5), &win("ada", 9)));
        assert!(lock.conflicts(&win("ada", 5), &best("ada", 3)));
        assert!(!lock.conflicts(&win("ada", 5), &win("bob", 5)), "players are independent");
        assert!(!lock.conflicts(&lose("ada", 2), &win("ada", 9)), "losing submits stay stable");
        assert!(!lock.conflicts(&best("ada", 3), &best("ada", 3)), "reads coexist");
        assert!(!lock.conflicts(&lose("ada", 1), &best("ada", 3)));
        assert_eq!(lock.name(), "hybrid-derived");
    }

    /// The ROADMAP's debug-build self-check, closed: the stated bounds
    /// (2+2) have converged — doubling them derives identical atoms.
    /// Release runs get the same guarantee from `adtcheck --all`.
    #[cfg(debug_assertions)]
    #[test]
    fn leaderboard_bounds_are_invariant_under_doubling() {
        hcc_adts::define::check_bounds_invariance(&lb_derive_spec())
            .expect("leaderboard derivation bounds have converged");
    }

    /// Constructing many leaderboards derives the relation once.
    #[test]
    fn derivation_is_cached_per_type() {
        let _warm = SpecLock::<LeaderboardDef>::from_def();
        let before = hcc_adts::define::derivations_performed();
        for i in 0..4 {
            let _ = Leaderboard::new(format!("lb-{i}"));
        }
        assert_eq!(
            hcc_adts::define::derivations_performed(),
            before,
            "later constructions reuse the cached derivation"
        );
    }

    #[test]
    fn clean_shutdown_recovers_everything() {
        let dir = tmp("clean");
        let (committed, survived) =
            custom_crash_point_holds(&dir, CustomScenarioOptions::default().env_overrides(), 0)
                .unwrap();
        assert!(committed > 40, "workload committed too little: {committed}");
        assert_eq!(survived, committed);
    }

    #[test]
    fn mid_log_crash_recovers_a_verified_prefix() {
        let dir = tmp("cut");
        let (committed, survived) =
            custom_crash_point_holds(&dir, CustomScenarioOptions::default().env_overrides(), 600)
                .unwrap();
        assert!(survived <= committed);
    }

    #[test]
    fn checkpointed_run_recovers_from_snapshot_plus_tail() {
        let dir = tmp("ckpt");
        let opts = CustomScenarioOptions {
            checkpoint_every: Some(12),
            ..CustomScenarioOptions::default()
        }
        .env_overrides();
        let (committed, survived) = custom_crash_point_holds(&dir, opts, 0).unwrap();
        assert_eq!(survived, committed);
    }

    /// The acceptance property: randomized kill points — random seeds,
    /// random cuts, checkpoints on — always recover to a hybrid-atomic,
    /// oracle-consistent state.
    #[test]
    fn randomized_kill_points_hold() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for round in 0..6 {
            let dir = tmp("kill");
            let opts = CustomScenarioOptions {
                seed: rng.gen_range(0..u64::MAX),
                txns: 60,
                checkpoint_every: if round % 2 == 0 { Some(15) } else { None },
                ..CustomScenarioOptions::default()
            }
            .env_overrides();
            let cut = rng.gen_range(0..1500u64);
            let (committed, survived) = custom_crash_point_holds(&dir, opts, cut).unwrap();
            assert!(survived <= committed, "round {round}");
        }
    }
}
