//! Concurrency-control scheme selection and object construction.

use hcc_adts::account::{AccountHybrid, AccountObject};
use hcc_adts::fifo_queue::{QueueObject, QueueTableII};
use hcc_adts::file::{FileHybrid, FileObject};
use hcc_adts::semiqueue::{SemiqueueHybrid, SemiqueueObject};
use hcc_baselines::{
    rw_account, rw_file, rw_queue, rw_semiqueue, AccountCommutativity, FileCommutativity,
    QueueCommutativity, SemiqueueCommutativity,
};
use hcc_core::runtime::RuntimeOptions;
use std::sync::Arc;

/// The three concurrency-control schemes under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// The paper's dependency-based locking (Tables I, II, IV, V).
    Hybrid,
    /// Weihl-style forward-commutativity locking (Table VI et al.).
    Commutativity,
    /// Untyped strict read/write two-phase locking.
    Rw2pl,
}

impl Scheme {
    /// All schemes, in presentation order.
    pub const ALL: [Scheme; 3] = [Scheme::Hybrid, Scheme::Commutativity, Scheme::Rw2pl];

    /// Scheme name for experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Hybrid => "hybrid",
            Scheme::Commutativity => "commutativity",
            Scheme::Rw2pl => "rw-2pl",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// An account under `scheme`.
pub fn make_account(scheme: Scheme, name: &str, opts: RuntimeOptions) -> AccountObject {
    match scheme {
        Scheme::Hybrid => AccountObject::with(name, Arc::new(AccountHybrid), opts),
        Scheme::Commutativity => AccountObject::with(name, Arc::new(AccountCommutativity), opts),
        Scheme::Rw2pl => AccountObject::with(name, Arc::new(rw_account()), opts),
    }
}

/// An `i64` FIFO queue under `scheme` (hybrid uses Table II).
pub fn make_queue(scheme: Scheme, name: &str, opts: RuntimeOptions) -> QueueObject<i64> {
    match scheme {
        Scheme::Hybrid => QueueObject::with(name, Arc::new(QueueTableII), opts),
        Scheme::Commutativity => QueueObject::with(name, Arc::new(QueueCommutativity), opts),
        Scheme::Rw2pl => QueueObject::with(name, Arc::new(rw_queue()), opts),
    }
}

/// An `i64` semiqueue under `scheme`.
pub fn make_semiqueue(scheme: Scheme, name: &str, opts: RuntimeOptions) -> SemiqueueObject<i64> {
    match scheme {
        Scheme::Hybrid => SemiqueueObject::with(name, Arc::new(SemiqueueHybrid), opts),
        Scheme::Commutativity => {
            SemiqueueObject::with(name, Arc::new(SemiqueueCommutativity), opts)
        }
        Scheme::Rw2pl => SemiqueueObject::with(name, Arc::new(rw_semiqueue()), opts),
    }
}

/// An `i64` register under `scheme`.
pub fn make_file(scheme: Scheme, name: &str, opts: RuntimeOptions) -> FileObject<i64> {
    match scheme {
        Scheme::Hybrid => FileObject::with(name, Arc::new(FileHybrid), opts),
        Scheme::Commutativity => FileObject::with(name, Arc::new(FileCommutativity), opts),
        Scheme::Rw2pl => FileObject::with(name, Arc::new(rw_file()), opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> = Scheme::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn constructors_apply_the_scheme() {
        let opts = RuntimeOptions::default;
        assert_eq!(make_account(Scheme::Hybrid, "a", opts()).inner().scheme(), "hybrid");
        assert_eq!(
            make_account(Scheme::Commutativity, "a", opts()).inner().scheme(),
            "commutativity"
        );
        assert_eq!(make_queue(Scheme::Rw2pl, "q", opts()).inner().scheme(), "rw-2pl");
        assert_eq!(make_file(Scheme::Hybrid, "f", opts()).inner().scheme(), "hybrid");
        assert_eq!(make_semiqueue(Scheme::Hybrid, "s", opts()).inner().scheme(), "hybrid");
    }
}
