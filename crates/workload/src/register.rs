//! Register (File) workloads: the generalized Thomas Write Rule
//! experiment (E9).

use crate::metrics::Metrics;
use crate::queue::bench_options;
use crate::scheme::{make_file, Scheme};
use hcc_txn::TxnManager;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// E9: `threads` workers run single-operation transactions against one
/// shared register; `write_pct` percent are blind writes of random values,
/// the rest reads.
///
/// Under hybrid locking writes never conflict (Thomas Write Rule); under
/// commutativity and RW-2PL concurrent writers serialize.
pub fn register_workload(
    scheme: Scheme,
    threads: usize,
    txns_per_thread: usize,
    write_pct: u32,
) -> Metrics {
    let mgr = TxnManager::new();
    let file = Arc::new(make_file(scheme, "reg", bench_options(&mgr)));
    let aborted = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(threads));
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..threads {
            let (mgr, file, aborted) = (mgr.clone(), file.clone(), aborted.clone());
            let barrier = barrier.clone();
            s.spawn(move || {
                barrier.wait();
                let mut rng = StdRng::seed_from_u64(0xF11E + w as u64);
                for _ in 0..txns_per_thread {
                    loop {
                        let t = mgr.begin();
                        let ok = if rng.gen_range(0..100u32) < write_pct {
                            file.write(&t, rng.gen_range(0..1_000_000)).is_ok()
                        } else {
                            file.read(&t).is_ok()
                        };
                        // Hold the transaction open across a yield so
                        // workers overlap even on one core.
                        std::thread::yield_now();
                        if ok && mgr.commit(t.clone()).is_ok() {
                            break;
                        }
                        mgr.abort(t);
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    // Read conflict/wait totals off the manager's metric registry — the
    // same counters `Db::stats` exposes — instead of per-object plumbing.
    let snap = mgr.metrics().snapshot();
    Metrics {
        scenario: format!("register-w{write_pct}"),
        scheme,
        threads,
        committed: mgr.committed_count(),
        aborted: aborted.load(Ordering::Relaxed),
        conflicts: snap.sum_prefix("lock.refusals."),
        waits: snap.sum_prefix("lock.waits."),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_writes_never_conflict_under_hybrid() {
        let m = register_workload(Scheme::Hybrid, 4, 150, 100);
        assert_eq!(m.committed, 600);
        assert_eq!(m.conflicts, 0, "Thomas Write Rule");
    }

    #[test]
    fn pure_writes_conflict_under_commutativity() {
        let m = register_workload(Scheme::Commutativity, 4, 150, 100);
        assert_eq!(m.committed, 600);
        assert!(m.conflicts > 0);
    }

    #[test]
    fn all_transactions_complete_under_rw() {
        let m = register_workload(Scheme::Rw2pl, 2, 10, 50);
        assert_eq!(m.committed, 20);
    }
}
