//! Operation classes, conditions, and instance-level relations.
//!
//! The paper's tables relate operation *classes* (`Enq`, `Deq`, `Debit-Ok`,
//! `Debit-Overdraft`, ...) under argument/response *conditions* (`true`,
//! `v = v′`, `v ≠ v′`). The derivation machinery works at the level of
//! concrete operation *instances* over a small value domain and is lifted to
//! classes afterwards.

use hcc_spec::{Operation, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A named class of operations, e.g. `Enq` or `Debit-Ok`.
///
/// A class corresponds to one row/column label of a paper table: the
/// operation name plus, when the lock mode is response-sensitive, a variant
/// tag derived from the response.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpClass(pub String);

impl OpClass {
    /// Construct a class from a name.
    pub fn new(name: impl Into<String>) -> OpClass {
        OpClass(name.into())
    }
}

impl fmt::Debug for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The condition under which a class pair is related, comparing the two
/// operations' *key values* (argument for `Enq(v)`, response for `Deq()→v`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Cond {
    /// Related when the key values are equal (`v = v′`).
    KeyEq,
    /// Related when the key values are distinct (`v ≠ v′`).
    KeyNeq,
}

/// An *atom*: "`row` depends on `col` when `cond` holds". Minimal relations
/// are sets of atoms; the paper's tables are renderings of atom sets.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// The dependent class (table row; the later operation `q`).
    pub row: OpClass,
    /// The depended-upon class (table column; the earlier operation `p`).
    pub col: OpClass,
    /// The key condition.
    pub cond: Cond,
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self.cond {
            Cond::KeyEq => "v=v'",
            Cond::KeyNeq => "v≠v'",
        };
        write!(f, "({} ⊦ {} [{}])", self.row, self.col, c)
    }
}

/// A relation over concrete operation instances, indexed into a fixed
/// alphabet. `pairs` contains `(q, p)` meaning *q depends on p* (or, for
/// commutativity, *q fails to commute with p*).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InstanceRelation {
    /// Ordered pairs of alphabet indices `(q, p)`.
    pub pairs: BTreeSet<(usize, usize)>,
}

impl InstanceRelation {
    /// The empty relation.
    pub fn new() -> InstanceRelation {
        InstanceRelation::default()
    }

    /// Insert the pair "`q` depends on `p`".
    pub fn insert(&mut self, q: usize, p: usize) {
        self.pairs.insert((q, p));
    }

    /// Membership test.
    pub fn contains(&self, q: usize, p: usize) -> bool {
        self.pairs.contains(&(q, p))
    }

    /// Number of instance pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The symmetric closure — the paper constructs lock *conflict*
    /// relations as the symmetric closure of a dependency relation.
    pub fn symmetric_closure(&self) -> InstanceRelation {
        let mut out = self.clone();
        for &(q, p) in &self.pairs {
            out.pairs.insert((p, q));
        }
        out
    }

    /// Is the relation symmetric?
    pub fn is_symmetric(&self) -> bool {
        self.pairs.iter().all(|&(q, p)| self.pairs.contains(&(p, q)))
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &InstanceRelation) -> bool {
        self.pairs.is_subset(&other.pairs)
    }

    /// The union of two relations.
    pub fn union(&self, other: &InstanceRelation) -> InstanceRelation {
        InstanceRelation { pairs: self.pairs.union(&other.pairs).copied().collect() }
    }
}

/// The *key value* of an operation instance: the value the paper's
/// conditions compare. By convention this is the first argument if the
/// operation has one, otherwise its response (e.g. `Deq()→v`); operations
/// with neither (unit response, no argument) have no key.
pub fn key_value(op: &Operation) -> Option<Value> {
    if let Some(a) = op.inv.args.first() {
        return Some(a.clone());
    }
    if op.res != Value::Unit {
        return Some(op.res.clone());
    }
    None
}

/// The condition bucket an instance pair falls into. Pairs where either
/// operation is keyless compare as [`Cond::KeyEq`] and [`Cond::KeyNeq`]
/// simultaneously; we put them in `KeyEq` (the rendering logic treats a
/// class pair present under every *populated* bucket as unconditionally
/// related, so the choice is immaterial for the bundled types).
pub fn pair_cond(q: &Operation, p: &Operation) -> Cond {
    match (key_value(q), key_value(p)) {
        (Some(a), Some(b)) if a != b => Cond::KeyNeq,
        _ => Cond::KeyEq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_spec::Inv;

    fn op(inv: Inv, res: impl Into<Value>) -> Operation {
        Operation::new(inv, res)
    }

    #[test]
    fn key_value_prefers_argument() {
        let enq = op(Inv::unary("enq", 3), Value::Unit);
        assert_eq!(key_value(&enq), Some(Value::Int(3)));
        let deq = op(Inv::nullary("deq"), 3);
        assert_eq!(key_value(&deq), Some(Value::Int(3)));
        let noop = op(Inv::nullary("tick"), Value::Unit);
        assert_eq!(key_value(&noop), None);
    }

    #[test]
    fn pair_cond_buckets() {
        let e1 = op(Inv::unary("enq", 1), Value::Unit);
        let e2 = op(Inv::unary("enq", 2), Value::Unit);
        let d1 = op(Inv::nullary("deq"), 1);
        assert_eq!(pair_cond(&e1, &e1), Cond::KeyEq);
        assert_eq!(pair_cond(&e1, &e2), Cond::KeyNeq);
        assert_eq!(pair_cond(&d1, &e1), Cond::KeyEq);
        assert_eq!(pair_cond(&d1, &e2), Cond::KeyNeq);
    }

    #[test]
    fn symmetric_closure_adds_mirror_pairs() {
        let mut r = InstanceRelation::new();
        r.insert(0, 1);
        assert!(!r.is_symmetric());
        let s = r.symmetric_closure();
        assert!(s.is_symmetric());
        assert_eq!(s.len(), 2);
        assert!(r.is_subset(&s));
    }

    #[test]
    fn union_and_subset() {
        let mut a = InstanceRelation::new();
        a.insert(0, 1);
        let mut b = InstanceRelation::new();
        b.insert(2, 3);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert!(a.is_subset(&u));
        assert!(b.is_subset(&u));
        assert!(!u.is_subset(&a));
    }
}
