//! Deriving **runtime** conflict relations from serial specifications —
//! the bridge between the paper's offline derivation (Sections 4–5) and
//! the live object runtime.
//!
//! A [`DeriveSpec`] bundles everything the bounded invalidated-by search
//! needs: the dynamic specification, a finite operation alphabet over a
//! small value domain, a classifier, and the search bounds.
//! [`conflict_atoms`] runs the search and lifts the instance-level
//! relation to class-level [`Atom`]s (class pairs under a key condition),
//! which generalize beyond the derivation domain: the runtime lock test
//! is "classify both executed operations, bucket their key condition,
//! look the atom up" — `hcc-core`'s `DerivedConflict`/`SpecLock` apply
//! the symmetric closure at lookup time, exactly as the paper constructs
//! conflict relations from dependency relations.
//!
//! Derivation is *bounded model checking* and costs milliseconds, not
//! nanoseconds, so [`cached_conflict_atoms`] memoizes the result per
//! type name: every object of one type — across databases, threads, and
//! repeated construction — shares one derivation. The raw entry points
//! stay public for benchmarking the derivation itself.

use crate::invalidated_by::{invalidated_by, Bounds};
use crate::relation::{pair_cond, Atom, Cond, InstanceRelation, OpClass};
use crate::tables::AdtConfig;
use hcc_spec::adt::SharedAdt;
use hcc_spec::Operation;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Everything needed to derive one type's conflict relation from its
/// serial specification. The runtime-facing sibling of
/// [`AdtConfig`](crate::tables::AdtConfig) (which adds table-rendering
/// presentation); [`From<AdtConfig>`] drops the presentation fields.
pub struct DeriveSpec {
    /// The serial specification (the paper's Section-3.1 object).
    pub adt: SharedAdt,
    /// Operation instances over a small derivation domain.
    pub alphabet: Vec<Operation>,
    /// Instance → class; also classifies *runtime* operations at lock
    /// time, so the derived relation generalizes beyond the domain.
    pub classify: fn(&Operation) -> OpClass,
    /// Bounded-search depths.
    pub bounds: Bounds,
}

impl From<AdtConfig> for DeriveSpec {
    fn from(cfg: AdtConfig) -> DeriveSpec {
        DeriveSpec {
            adt: cfg.adt,
            alphabet: cfg.alphabet,
            classify: cfg.classify,
            bounds: cfg.bounds,
        }
    }
}

/// Lift an instance-level relation over `alphabet` to class-level atoms,
/// bucketing each class pair's instance pairs by key condition (the
/// paper's table semantics, see `tables.rs`):
///
/// * a bucket with a related instance emits its atom — a *partially*
///   related bucket over-approximates to related, which is sound (a
///   superset of a dependency relation still hits every Definition-3
///   violation; the condition language simply cannot carve it finer);
/// * a bucket the derivation domain left **empty** generalizes from the
///   other bucket — `debit(m)` vs `post(p)` with `m = p` never arises
///   over the account alphabet, yet Table V states the dependency as
///   `Always`, so a related populated bucket carries into the empty one.
pub fn lift_to_atoms(
    alphabet: &[Operation],
    classify: fn(&Operation) -> OpClass,
    rel: &InstanceRelation,
) -> BTreeSet<Atom> {
    #[derive(Default)]
    struct Bucket {
        total: usize,
        related: usize,
    }
    let mut buckets: HashMap<(OpClass, OpClass), (Bucket, Bucket)> = HashMap::new();
    for (q, q_op) in alphabet.iter().enumerate() {
        for (p, p_op) in alphabet.iter().enumerate() {
            let entry = buckets.entry((classify(q_op), classify(p_op))).or_default();
            let bucket = match pair_cond(q_op, p_op) {
                Cond::KeyEq => &mut entry.0,
                Cond::KeyNeq => &mut entry.1,
            };
            bucket.total += 1;
            if rel.contains(q, p) {
                bucket.related += 1;
            }
        }
    }
    let mut atoms = BTreeSet::new();
    for ((row, col), (eq, neq)) in buckets {
        let eq_related = eq.related > 0 || (eq.total == 0 && neq.related > 0);
        let neq_related = neq.related > 0 || (neq.total == 0 && eq.related > 0);
        for (hit, cond) in [(eq_related, Cond::KeyEq), (neq_related, Cond::KeyNeq)] {
            if hit {
                atoms.insert(Atom { row: row.clone(), col: col.clone(), cond });
            }
        }
    }
    atoms
}

/// Derive the type's hybrid conflict atoms: the bounded invalidated-by
/// relation (Definitions 8–9, a dependency relation by Theorem 10),
/// lifted to class level. The symmetric closure — what the paper calls
/// the conflict relation — is applied by the consumer at lookup time.
pub fn conflict_atoms(spec: &DeriveSpec) -> BTreeSet<Atom> {
    let rel = invalidated_by(spec.adt.as_ref(), &spec.alphabet, spec.bounds);
    lift_to_atoms(&spec.alphabet, spec.classify, &rel)
}

/// The per-type derivation cache: type name → derived atoms.
fn cache() -> &'static Mutex<HashMap<String, Arc<BTreeSet<Atom>>>> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<BTreeSet<Atom>>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

static DERIVATIONS: AtomicU64 = AtomicU64::new(0);

/// [`conflict_atoms`], memoized per `key` (by convention the type name):
/// the first construction of an object of a given type pays the bounded
/// search once; every later construction — any thread, any database —
/// gets the shared result.
pub fn cached_conflict_atoms(key: &str, spec: &DeriveSpec) -> Arc<BTreeSet<Atom>> {
    if let Some(atoms) = lock_cache().get(key) {
        return atoms.clone();
    }
    // Derive outside the lock (milliseconds); first insert wins if two
    // threads race — both derived the same pure function of the spec.
    let atoms = Arc::new(conflict_atoms(spec));
    DERIVATIONS.fetch_add(1, Ordering::Relaxed);
    lock_cache().entry(key.to_string()).or_insert(atoms).clone()
}

fn lock_cache() -> std::sync::MutexGuard<'static, HashMap<String, Arc<BTreeSet<Atom>>>> {
    cache().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// How many actual (cache-missing) derivations have run in this process
/// — lets tests assert that repeated construction of one type derives
/// once.
pub fn derivations_performed() -> u64 {
    DERIVATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Cond;

    fn atom(row: &str, col: &str, cond: Cond) -> Atom {
        Atom { row: OpClass::new(row), col: OpClass::new(col), cond }
    }

    #[test]
    fn queue_atoms_are_table_ii() {
        let atoms = conflict_atoms(&AdtConfig::queue().into());
        let expected: BTreeSet<Atom> =
            [atom("Deq", "Enq", Cond::KeyNeq), atom("Deq", "Deq", Cond::KeyEq)].into();
        assert_eq!(atoms, expected);
    }

    #[test]
    fn file_atoms_are_table_i() {
        let atoms = conflict_atoms(&AdtConfig::file().into());
        let expected: BTreeSet<Atom> = [atom("Read", "Write", Cond::KeyNeq)].into();
        assert_eq!(atoms, expected);
    }

    #[test]
    fn cache_derives_each_key_once() {
        let before = derivations_performed();
        let a = cached_conflict_atoms("test-semiqueue", &AdtConfig::semiqueue().into());
        let after_first = derivations_performed();
        let b = cached_conflict_atoms("test-semiqueue", &AdtConfig::semiqueue().into());
        assert!(Arc::ptr_eq(&a, &b), "second lookup shares the derivation");
        assert_eq!(derivations_performed(), after_first, "no re-derivation");
        assert!(after_first > before, "first lookup derived");
        assert_eq!(*a, conflict_atoms(&AdtConfig::semiqueue().into()));
    }
}
