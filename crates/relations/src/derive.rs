//! Deriving **runtime** conflict relations from serial specifications —
//! the bridge between the paper's offline derivation (Sections 4–5) and
//! the live object runtime.
//!
//! A [`DeriveSpec`] bundles everything the bounded invalidated-by search
//! needs: the dynamic specification, a finite operation alphabet over a
//! small value domain, a classifier, and the search bounds.
//! [`conflict_atoms`] runs the search and lifts the instance-level
//! relation to class-level [`Atom`]s (class pairs under a key condition),
//! which generalize beyond the derivation domain: the runtime lock test
//! is "classify both executed operations, bucket their key condition,
//! look the atom up" — `hcc-core`'s `DerivedConflict`/`SpecLock` apply
//! the symmetric closure at lookup time, exactly as the paper constructs
//! conflict relations from dependency relations.
//!
//! Derivation is *bounded model checking* and costs milliseconds, not
//! nanoseconds, so [`cached_conflict_atoms`] memoizes the result per
//! (type name, [`derive_fingerprint`]): every object of one type —
//! across databases, threads, and repeated construction — shares one
//! derivation, while two specs that merely share a name (or one whose
//! bounds/alphabet changed) can never serve each other stale atoms. The
//! raw entry points stay public for benchmarking the derivation itself.

use crate::invalidated_by::{invalidated_by, Bounds};
use crate::relation::{pair_cond, Atom, Cond, InstanceRelation, OpClass};
use crate::tables::AdtConfig;
use hcc_spec::adt::SharedAdt;
use hcc_spec::{Frontier, Operation};
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Everything needed to derive one type's conflict relation from its
/// serial specification. The runtime-facing sibling of
/// [`AdtConfig`](crate::tables::AdtConfig) (which adds table-rendering
/// presentation); [`From<AdtConfig>`] drops the presentation fields.
#[derive(Clone)]
pub struct DeriveSpec {
    /// The serial specification (the paper's Section-3.1 object).
    pub adt: SharedAdt,
    /// Operation instances over a small derivation domain.
    pub alphabet: Vec<Operation>,
    /// Instance → class; also classifies *runtime* operations at lock
    /// time, so the derived relation generalizes beyond the domain.
    pub classify: fn(&Operation) -> OpClass,
    /// Bounded-search depths.
    pub bounds: Bounds,
}

impl From<AdtConfig> for DeriveSpec {
    fn from(cfg: AdtConfig) -> DeriveSpec {
        DeriveSpec {
            adt: cfg.adt,
            alphabet: cfg.alphabet,
            classify: cfg.classify,
            bounds: cfg.bounds,
        }
    }
}

/// Lift an instance-level relation over `alphabet` to class-level atoms,
/// bucketing each class pair's instance pairs by key condition (the
/// paper's table semantics, see `tables.rs`):
///
/// * a bucket with a related instance emits its atom — a *partially*
///   related bucket over-approximates to related, which is sound (a
///   superset of a dependency relation still hits every Definition-3
///   violation; the condition language simply cannot carve it finer);
/// * a bucket the derivation domain left **empty** generalizes from the
///   other bucket — `debit(m)` vs `post(p)` with `m = p` never arises
///   over the account alphabet, yet Table V states the dependency as
///   `Always`, so a related populated bucket carries into the empty one.
pub fn lift_to_atoms(
    alphabet: &[Operation],
    classify: fn(&Operation) -> OpClass,
    rel: &InstanceRelation,
) -> BTreeSet<Atom> {
    #[derive(Default)]
    struct Bucket {
        total: usize,
        related: usize,
    }
    let mut buckets: HashMap<(OpClass, OpClass), (Bucket, Bucket)> = HashMap::new();
    for (q, q_op) in alphabet.iter().enumerate() {
        for (p, p_op) in alphabet.iter().enumerate() {
            let entry = buckets.entry((classify(q_op), classify(p_op))).or_default();
            let bucket = match pair_cond(q_op, p_op) {
                Cond::KeyEq => &mut entry.0,
                Cond::KeyNeq => &mut entry.1,
            };
            bucket.total += 1;
            if rel.contains(q, p) {
                bucket.related += 1;
            }
        }
    }
    let mut atoms = BTreeSet::new();
    for ((row, col), (eq, neq)) in buckets {
        let eq_related = eq.related > 0 || (eq.total == 0 && neq.related > 0);
        let neq_related = neq.related > 0 || (neq.total == 0 && eq.related > 0);
        for (hit, cond) in [(eq_related, Cond::KeyEq), (neq_related, Cond::KeyNeq)] {
            if hit {
                atoms.insert(Atom { row: row.clone(), col: col.clone(), cond });
            }
        }
    }
    atoms
}

/// Derive the type's hybrid conflict atoms: the bounded invalidated-by
/// relation (Definitions 8–9, a dependency relation by Theorem 10),
/// lifted to class level. The symmetric closure — what the paper calls
/// the conflict relation — is applied by the consumer at lookup time.
pub fn conflict_atoms(spec: &DeriveSpec) -> BTreeSet<Atom> {
    let rel = invalidated_by(spec.adt.as_ref(), &spec.alphabet, spec.bounds);
    lift_to_atoms(&spec.alphabet, spec.classify, &rel)
}

/// A 64-bit fingerprint of everything the bounded search reads from a
/// [`DeriveSpec`]: the type name, the bounds, each alphabet instance and
/// its class, plus a shallow behavioural probe of the specification (the
/// initial state and each instance's single-step legality from it).
///
/// The classifier is captured by its *behaviour on the alphabet* — the
/// only way [`lift_to_atoms`] ever consults it — so two `fn` items that
/// classify identically fingerprint identically, which is exactly when
/// sharing a derivation is sound. The probe is deliberately shallow: it
/// distinguishes specs that differ near the initial state (the common
/// editing accident) without paying a full bounded search per lookup;
/// two *behaviourally different* specs that agree on name, alphabet,
/// classes, bounds, and every first step are out of scope.
pub fn derive_fingerprint(spec: &DeriveSpec) -> u64 {
    /// FNV-1a over everything `write_str` receives — lets the hash
    /// consume `Debug` renderings without intermediate allocation.
    struct Fnv(u64);
    impl std::fmt::Write for Fnv {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            for b in s.bytes() {
                self.0 ^= u64::from(b);
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
            Ok(())
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    let _ = write!(
        h,
        "{}|{}+{}|{:?}",
        spec.adt.type_name(),
        spec.bounds.max_h1,
        spec.bounds.max_h2,
        spec.adt.initial()
    );
    let initial = Frontier::initial(spec.adt.as_ref());
    for op in &spec.alphabet {
        let first_step_legal = !initial.advance(spec.adt.as_ref(), op).is_empty();
        let _ = write!(h, "|{:?}={}:{}", op, (spec.classify)(op), u8::from(first_step_legal));
    }
    h.0
}

/// The per-type derivation cache: type name → (fingerprint, atoms). The
/// inner list is effectively always length 1 — it only grows if distinct
/// specs share a type name, the collision the fingerprint exists to keep
/// harmless.
type CacheMap = HashMap<String, Vec<(u64, Arc<BTreeSet<Atom>>)>>;

fn cache() -> &'static Mutex<CacheMap> {
    static CACHE: OnceLock<Mutex<CacheMap>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

static DERIVATIONS: AtomicU64 = AtomicU64::new(0);

/// [`conflict_atoms`], memoized per `(key, fingerprint)` — `key` is by
/// convention the type name: the first construction of an object of a
/// given type pays the bounded search once; every later construction —
/// any thread, any database — gets the shared result. The
/// [`derive_fingerprint`] half of the cache key means a second def that
/// happens to share the name, or a def whose bounds or alphabet changed,
/// derives its own atoms instead of being served stale ones.
pub fn cached_conflict_atoms(key: &str, spec: &DeriveSpec) -> Arc<BTreeSet<Atom>> {
    let fp = derive_fingerprint(spec);
    if let Some(entries) = lock_cache().get(key) {
        if let Some((_, atoms)) = entries.iter().find(|(f, _)| *f == fp) {
            return atoms.clone();
        }
    }
    // Derive outside the lock (milliseconds); first insert wins if two
    // threads race — both derived the same pure function of the spec.
    let atoms = Arc::new(conflict_atoms(spec));
    DERIVATIONS.fetch_add(1, Ordering::Relaxed);
    let mut cache = lock_cache();
    let entries = cache.entry(key.to_string()).or_default();
    match entries.iter().find(|(f, _)| *f == fp) {
        Some((_, winner)) => winner.clone(),
        None => {
            entries.push((fp, atoms.clone()));
            atoms
        }
    }
}

fn lock_cache() -> std::sync::MutexGuard<'static, CacheMap> {
    cache().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// How the derived atom set moved when the search bounds doubled —
/// evidence that the configured bounds had *not* converged.
#[derive(Clone, Debug)]
pub struct BoundsDrift {
    /// The configured bounds.
    pub base: Bounds,
    /// The doubled bounds the check re-derived at.
    pub doubled: Bounds,
    /// Atoms the doubled search found that the configured one missed —
    /// dependencies the runtime table would silently lack.
    pub missing: BTreeSet<Atom>,
}

impl std::fmt::Display for BoundsDrift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "derivation bounds {}+{} have not converged: doubling to {}+{} adds atoms {:?}",
            self.base.max_h1,
            self.base.max_h2,
            self.doubled.max_h1,
            self.doubled.max_h2,
            self.missing
        )
    }
}

/// The bounds-invariance self-check: derive at the configured bounds `B`
/// and again at `2B`, and demand identical atom sets. Bounded search can
/// only *miss* witnesses, never invent them, so a bound that has
/// converged is indistinguishable from the unbounded relation on this
/// alphabet — while an under-sized bound shows up as atoms the doubled
/// search finds and the configured one lacks (returned as the error).
/// `adtcheck` runs this for every `define_adt!` type, and debug builds
/// of the bundled user-defined types assert it in their test suites,
/// like `larger_bounds_do_not_change_queue_relation`.
pub fn check_bounds_invariance(spec: &DeriveSpec) -> Result<BTreeSet<Atom>, Box<BoundsDrift>> {
    let base = conflict_atoms(spec);
    let doubled = Bounds { max_h1: spec.bounds.max_h1 * 2, max_h2: spec.bounds.max_h2 * 2 };
    let grown = conflict_atoms(&DeriveSpec { bounds: doubled, ..spec.clone() });
    // `grown ⊇ base` by monotonicity of the bounded search; anything in
    // `base` alone would be a search bug, so report it symmetrically.
    if grown == base {
        Ok(base)
    } else {
        let missing = grown.difference(&base).cloned().collect();
        Err(Box::new(BoundsDrift { base: spec.bounds, doubled, missing }))
    }
}

/// How many actual (cache-missing) derivations have run in this process
/// — lets tests assert that repeated construction of one type derives
/// once.
pub fn derivations_performed() -> u64 {
    DERIVATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Cond;

    fn atom(row: &str, col: &str, cond: Cond) -> Atom {
        Atom { row: OpClass::new(row), col: OpClass::new(col), cond }
    }

    #[test]
    fn queue_atoms_are_table_ii() {
        let atoms = conflict_atoms(&AdtConfig::queue().into());
        let expected: BTreeSet<Atom> =
            [atom("Deq", "Enq", Cond::KeyNeq), atom("Deq", "Deq", Cond::KeyEq)].into();
        assert_eq!(atoms, expected);
    }

    #[test]
    fn file_atoms_are_table_i() {
        let atoms = conflict_atoms(&AdtConfig::file().into());
        let expected: BTreeSet<Atom> = [atom("Read", "Write", Cond::KeyNeq)].into();
        assert_eq!(atoms, expected);
    }

    #[test]
    fn cache_derives_each_key_once() {
        let before = derivations_performed();
        let a = cached_conflict_atoms("test-semiqueue", &AdtConfig::semiqueue().into());
        let after_first = derivations_performed();
        let b = cached_conflict_atoms("test-semiqueue", &AdtConfig::semiqueue().into());
        assert!(Arc::ptr_eq(&a, &b), "second lookup shares the derivation");
        assert_eq!(derivations_performed(), after_first, "no re-derivation");
        assert!(after_first > before, "first lookup derived");
        assert_eq!(*a, conflict_atoms(&AdtConfig::semiqueue().into()));
    }

    /// The regression the fingerprinted key exists for: two different
    /// specs sharing one type name must not serve each other stale atoms
    /// (per-name-only memoization returned the queue's atoms for the
    /// file here).
    #[test]
    fn cache_key_distinguishes_specs_sharing_a_name() {
        let queue: DeriveSpec = AdtConfig::queue().into();
        let file: DeriveSpec = AdtConfig::file().into();
        let a = cached_conflict_atoms("test-name-collision", &queue);
        let b = cached_conflict_atoms("test-name-collision", &file);
        assert_eq!(*a, conflict_atoms(&queue));
        assert_eq!(*b, conflict_atoms(&file), "second spec derives its own atoms, not stale ones");
        assert_ne!(*a, *b);
        // And both stay individually cached under the shared name.
        let a2 = cached_conflict_atoms("test-name-collision", &queue);
        let b2 = cached_conflict_atoms("test-name-collision", &file);
        assert!(Arc::ptr_eq(&a, &a2) && Arc::ptr_eq(&b, &b2));
    }

    /// A bounds change alone must change the cache key: atoms derived at
    /// one bound can be stale for another.
    #[test]
    fn fingerprint_tracks_bounds_and_alphabet() {
        let base: DeriveSpec = AdtConfig::queue().into();
        let mut rebound = base.clone();
        rebound.bounds = Bounds { max_h1: base.bounds.max_h1 + 1, max_h2: base.bounds.max_h2 };
        assert_ne!(derive_fingerprint(&base), derive_fingerprint(&rebound));
        let mut trimmed = base.clone();
        trimmed.alphabet.pop();
        assert_ne!(derive_fingerprint(&base), derive_fingerprint(&trimmed));
        assert_eq!(derive_fingerprint(&base), derive_fingerprint(&base.clone()));
    }

    /// The carried ROADMAP self-check, closed: the bundled configs'
    /// bounds have converged — doubling them derives identical atoms.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "doubled-bounds sweep of all 7 types; covered per-type \
                                           in release CI by `adtcheck --all --invariance all`"
    )]
    fn builtin_bounds_are_invariant_under_doubling() {
        for cfg in [
            AdtConfig::file as fn() -> AdtConfig,
            AdtConfig::queue,
            AdtConfig::semiqueue,
            AdtConfig::account,
            AdtConfig::counter,
            AdtConfig::set,
            AdtConfig::directory,
        ] {
            let spec: DeriveSpec = cfg().into();
            let name = spec.adt.type_name();
            if let Err(drift) = check_bounds_invariance(&spec) {
                panic!("{name}: {drift}");
            }
        }
    }

    /// A meter that refuses `cap` past count 4: the `Cap ⊦ Inc`
    /// dependency is only witnessed by histories with four increments, so
    /// bounds 1+1 derive an empty relation and the doubled 2+2 search
    /// exposes the drift.
    struct Meter;

    impl hcc_spec::Adt for Meter {
        fn initial(&self) -> hcc_spec::adt::SpecState {
            hcc_spec::adt::SpecState(hcc_spec::Value::Int(0))
        }
        fn step(
            &self,
            state: &hcc_spec::adt::SpecState,
            inv: &hcc_spec::Inv,
        ) -> Vec<(hcc_spec::Value, hcc_spec::adt::SpecState)> {
            let n = state.0.as_int();
            match inv.op {
                "inc" => {
                    vec![(
                        hcc_spec::Value::Unit,
                        hcc_spec::adt::SpecState(hcc_spec::Value::Int(n + 1)),
                    )]
                }
                "cap" if n <= 4 => vec![(hcc_spec::Value::Bool(true), state.clone())],
                _ => vec![],
            }
        }
        fn type_name(&self) -> &'static str {
            "Meter"
        }
    }

    fn meter_spec(bounds: Bounds) -> DeriveSpec {
        fn classify(op: &Operation) -> OpClass {
            OpClass::new(if op.inv.op == "inc" { "Inc" } else { "Cap" })
        }
        DeriveSpec {
            adt: Arc::new(Meter),
            alphabet: vec![
                Operation::new(hcc_spec::Inv::nullary("inc"), hcc_spec::Value::Unit),
                Operation::new(hcc_spec::Inv::nullary("cap"), true),
            ],
            classify,
            bounds,
        }
    }

    #[test]
    fn bounds_invariance_reports_unconverged_bounds() {
        let drift = check_bounds_invariance(&meter_spec(Bounds { max_h1: 1, max_h2: 1 }))
            .expect_err("1+1 cannot witness the depth-4 dependency");
        // The depth-4 witness lands in the KeyEq bucket (`inc` is
        // keyless), and the lift's empty-bucket generalization promotes
        // it to the Always case — so doubling adds *both* conditions.
        assert_eq!(
            drift.missing.iter().collect::<Vec<_>>(),
            vec![&atom("Cap", "Inc", Cond::KeyEq), &atom("Cap", "Inc", Cond::KeyNeq)],
            "{drift}"
        );
        // At 2+2 the witness fits and doubling again changes nothing.
        check_bounds_invariance(&meter_spec(Bounds { max_h1: 2, max_h2: 2 }))
            .expect("2+2 has converged");
    }
}
