//! Forward commutativity and the *failure-to-commute* relation (Section 7,
//! Definitions 25–26, Theorem 28).
//!
//! Two operations `p`, `q` **commute** if for all sequences `h` where `h·p`
//! and `h·q` are both legal, `h·p·q` and `h·q·p` are legal and
//! equieffective. *Failure to commute* is the complement over such pairs and
//! is, by Theorem 28, a (generally non-minimal) dependency relation — this
//! is why commutativity-based locking admits no more concurrency than the
//! hybrid scheme.
//!
//! Equieffectiveness (Definition 25) is decided by comparing reachable
//! state *sets*: continuations observe only the state, so equal frontiers
//! cannot be distinguished by any future computation.

use crate::enumerate::legal_sequences;
use crate::invalidated_by::Bounds;
use crate::relation::InstanceRelation;
use hcc_spec::{Adt, Operation};

/// Compute the bounded failure-to-commute relation: `(q, p)` (and
/// symmetrically `(p, q)`) iff some legal `h` with `|h| ≤ max_h1 + max_h2`
/// witnesses that `p` and `q` do not forward-commute.
pub fn failure_to_commute(
    adt: &dyn Adt,
    alphabet: &[Operation],
    bounds: Bounds,
) -> InstanceRelation {
    let mut rel = InstanceRelation::new();
    let hs = legal_sequences(adt, alphabet, bounds.max_h1 + bounds.max_h2);
    for h in &hs {
        for (p, p_op) in alphabet.iter().enumerate() {
            let fp = h.frontier.advance(adt, p_op);
            if fp.is_empty() {
                continue;
            }
            // Only q ≥ p: commutation is symmetric in (p, q).
            for (q, q_op) in alphabet.iter().enumerate().skip(p) {
                if rel.contains(q, p) {
                    continue;
                }
                let fq = h.frontier.advance(adt, q_op);
                if fq.is_empty() {
                    continue;
                }
                let fpq = fp.advance(adt, q_op);
                let fqp = fq.advance(adt, p_op);
                // Both orders must be legal and equieffective.
                if fpq.is_empty() || fqp.is_empty() || fpq != fqp {
                    rel.insert(q, p);
                    rel.insert(p, q);
                }
            }
        }
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invalidated_by::invalidated_by;
    use crate::violations::is_dependency_relation;
    use hcc_spec::specs::{AccountSpec, FileSpec, QueueSpec, SemiqueueSpec};
    use hcc_spec::Value;

    fn dom() -> Vec<Value> {
        vec![Value::Int(1), Value::Int(2)]
    }

    #[test]
    fn queue_enqueues_do_not_commute() {
        let alpha = QueueSpec::alphabet(&dom());
        let r = failure_to_commute(&QueueSpec, &alpha, Bounds::default());
        let (e1, d1, e2, d2) = (0, 1, 2, 3);
        assert!(r.contains(e1, e2), "enq(1)/enq(2) do not commute");
        assert!(!r.contains(e1, e1), "enq(1) commutes with itself");
        assert!(r.contains(d1, d1), "deq→1 does not commute with itself");
        assert!(!r.contains(d1, d2), "deq→1 and deq→2 commute forward");
        assert!(!r.contains(d1, e1) && !r.contains(d1, e2), "deq commutes with enq forward");
    }

    #[test]
    fn file_blind_writes_do_not_commute() {
        // Unlike the dependency relation, commutativity forces distinct
        // writes to conflict — hybrid is strictly weaker here.
        let alpha = FileSpec::alphabet(&dom());
        let f = FileSpec::default();
        let r = failure_to_commute(&f, &alpha, Bounds::default());
        let (w1, r1, w2, _r2) = (0, 1, 2, 3);
        assert!(r.contains(w1, w2), "write(1)/write(2) do not commute");
        assert!(!r.contains(w1, w1), "write(1) commutes with itself");
        assert!(r.contains(r1, w2), "read→1 / write(2) do not commute");
        assert!(!r.contains(r1, w1), "read→1 / write(1) commute");
    }

    #[test]
    fn semiqueue_inserts_commute() {
        let alpha = SemiqueueSpec::alphabet(&dom());
        let r = failure_to_commute(&SemiqueueSpec, &alpha, Bounds::default());
        let (i1, r1, i2, _r2) = (0, 1, 2, 3);
        assert!(!r.contains(i1, i2), "ins(1)/ins(2) commute");
        assert!(!r.contains(r1, i1) && !r.contains(r1, i2), "rem commutes with ins");
        assert!(r.contains(r1, r1), "rem→1 does not commute with itself");
    }

    /// Theorem 28 (bounded): failure-to-commute is a dependency relation.
    #[test]
    fn failure_to_commute_is_a_dependency_relation() {
        let b = Bounds::default();
        let cases: Vec<(Box<dyn hcc_spec::Adt>, Vec<Operation>)> = vec![
            (Box::new(FileSpec::default()), FileSpec::alphabet(&dom())),
            (Box::new(QueueSpec), QueueSpec::alphabet(&dom())),
            (Box::new(SemiqueueSpec), SemiqueueSpec::alphabet(&dom())),
            (Box::new(AccountSpec), AccountSpec::alphabet(&[1, 2], &[5])),
        ];
        for (adt, alpha) in &cases {
            let ftc = failure_to_commute(adt.as_ref(), alpha, b);
            assert!(
                is_dependency_relation(adt.as_ref(), alpha, &ftc, b),
                "failure-to-commute must be a dependency relation for {}",
                adt.type_name()
            );
        }
    }

    /// Section 7: hybrid conflicts are weaker than commutativity conflicts
    /// for File and Account (the symmetric closure of invalidated-by is a
    /// strict subset of failure-to-commute).
    #[test]
    fn hybrid_conflicts_are_strictly_weaker_for_file_and_account() {
        let b = Bounds::default();
        let cases: Vec<(Box<dyn hcc_spec::Adt>, Vec<Operation>)> = vec![
            (Box::new(FileSpec::default()), FileSpec::alphabet(&dom())),
            (Box::new(AccountSpec), AccountSpec::alphabet(&[1, 2], &[5])),
        ];
        for (adt, alpha) in &cases {
            let hybrid = invalidated_by(adt.as_ref(), alpha, b).symmetric_closure();
            let comm = failure_to_commute(adt.as_ref(), alpha, b);
            assert!(hybrid.is_subset(&comm), "hybrid ⊆ commutativity for {}", adt.type_name());
            assert!(
                hybrid.len() < comm.len(),
                "hybrid ⊂ commutativity strictly for {}",
                adt.type_name()
            );
        }
    }

    #[test]
    fn failure_to_commute_is_symmetric() {
        let alpha = AccountSpec::alphabet(&[1, 2], &[5]);
        let r = failure_to_commute(&AccountSpec, &alpha, Bounds::default());
        assert!(r.is_symmetric());
    }
}
