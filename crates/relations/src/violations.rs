//! The Definition-3 violation structure and the bounded dependency-relation
//! check.
//!
//! Definition 3: `R` is a dependency relation iff for all sequences `h`,
//! `k` and operations `p` with `h·p` and `h·k` legal and no operation in `k`
//! depending on `p`, the sequence `h·p·k` is legal.
//!
//! Contrapositively: whenever `h·p` and `h·k` are legal but `h·p·k` is not
//! (a **violation**), `R` must contain `(q, p)` for *some* `q ∈ k`.
//! A relation is therefore a (bounded) dependency relation iff it **hits**
//! every violation, and the minimal dependency relations are exactly the
//! minimal hitting sets of the violation structure (see [`crate::minimal`]).

use crate::enumerate::legal_sequences;
use crate::invalidated_by::Bounds;
use crate::relation::InstanceRelation;
use hcc_spec::{Adt, Frontier, Operation};
use std::collections::BTreeSet;

/// One violation: inserting `p` before `k` broke legality, so some
/// operation of `k` must depend on `p`. `candidates` lists the distinct
/// `(q, p)` instance pairs, `q ∈ k`, that would license refusing the
/// interleaving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The inserted operation `p` (alphabet index).
    pub p: usize,
    /// Distinct `(q, p)` pairs with `q ∈ k` that hit this violation.
    pub candidates: BTreeSet<(usize, usize)>,
}

/// Enumerate the bounded violation structure of a specification: one
/// [`Violation`] per `(h, p, k)` triple (deduplicated by candidate set)
/// with `h` up to `bounds.max_h1` and `k` up to `bounds.max_h2`.
pub fn violations(adt: &dyn Adt, alphabet: &[Operation], bounds: Bounds) -> Vec<Violation> {
    let mut out: BTreeSet<(usize, BTreeSet<(usize, usize)>)> = BTreeSet::new();
    for h in legal_sequences(adt, alphabet, bounds.max_h1) {
        for (p, p_op) in alphabet.iter().enumerate() {
            let with_p = h.frontier.advance(adt, p_op);
            if with_p.is_empty() {
                continue;
            }
            let mut k = Vec::new();
            extend_k(adt, alphabet, bounds.max_h2, &with_p, &h.frontier, p, &mut k, &mut out);
        }
    }
    out.into_iter().map(|(p, candidates)| Violation { p, candidates }).collect()
}

/// Extend `k`, tracking frontiers after `h·p·k` (`with_p`) and `h·k`
/// (`without_p`). A violation is found when `h·k·q` stays legal but
/// `h·p·k·q` does not — i.e. appending `q` kills the `with_p` frontier.
#[allow(clippy::too_many_arguments)]
fn extend_k(
    adt: &dyn Adt,
    alphabet: &[Operation],
    depth: usize,
    with_p: &Frontier,
    without_p: &Frontier,
    p: usize,
    k: &mut Vec<usize>,
    out: &mut BTreeSet<(usize, BTreeSet<(usize, usize)>)>,
) {
    for (q, q_op) in alphabet.iter().enumerate() {
        let wo = without_p.advance(adt, q_op);
        if wo.is_empty() {
            continue; // h·k·q must be legal for a violation
        }
        let w = with_p.advance(adt, q_op);
        if w.is_empty() {
            // Violation: k' = k·q; candidates are {(q', p) : q' ∈ k·q}.
            let mut cands: BTreeSet<(usize, usize)> = k.iter().map(|&q2| (q2, p)).collect();
            cands.insert((q, p));
            out.insert((p, cands));
        } else if depth > 1 {
            k.push(q);
            extend_k(adt, alphabet, depth - 1, &w, &wo, p, k, out);
            k.pop();
        }
    }
}

/// Bounded Definition-3 check: is `rel` a dependency relation, i.e. does it
/// hit every violation within `bounds`?
pub fn is_dependency_relation(
    adt: &dyn Adt,
    alphabet: &[Operation],
    rel: &InstanceRelation,
    bounds: Bounds,
) -> bool {
    violations(adt, alphabet, bounds)
        .iter()
        .all(|v| v.candidates.iter().any(|&(q, p)| rel.contains(q, p)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invalidated_by::invalidated_by;
    use hcc_spec::specs::{AccountSpec, FileSpec, QueueSpec, SemiqueueSpec};
    use hcc_spec::Value;

    fn dom() -> Vec<Value> {
        vec![Value::Int(1), Value::Int(2)]
    }

    #[test]
    fn queue_has_violations() {
        let alpha = QueueSpec::alphabet(&dom());
        let v = violations(&QueueSpec, &alpha, Bounds::default());
        assert!(!v.is_empty());
        // The canonical one: p = enq(1), k = [enq(2), deq→2].
        let (e1, e2, d2) = (0, 2, 3);
        assert!(v.iter().any(|v| v.p == e1
            && v.candidates.contains(&(e2, e1))
            && v.candidates.contains(&(d2, e1))));
    }

    #[test]
    fn empty_relation_is_not_a_dependency_relation_for_queue() {
        let alpha = QueueSpec::alphabet(&dom());
        assert!(!is_dependency_relation(
            &QueueSpec,
            &alpha,
            &InstanceRelation::new(),
            Bounds::default()
        ));
    }

    #[test]
    fn universal_relation_is_a_dependency_relation() {
        let alpha = QueueSpec::alphabet(&dom());
        let mut all = InstanceRelation::new();
        for q in 0..alpha.len() {
            for p in 0..alpha.len() {
                all.insert(q, p);
            }
        }
        assert!(is_dependency_relation(&QueueSpec, &alpha, &all, Bounds::default()));
    }

    /// Theorem 10 (bounded): invalidated-by is a dependency relation, for
    /// every bundled paper type.
    #[test]
    fn invalidated_by_is_a_dependency_relation() {
        let b = Bounds::default();
        let cases: Vec<(Box<dyn hcc_spec::Adt>, Vec<hcc_spec::Operation>)> = vec![
            (Box::new(FileSpec::default()), FileSpec::alphabet(&dom())),
            (Box::new(QueueSpec), QueueSpec::alphabet(&dom())),
            (Box::new(SemiqueueSpec), SemiqueueSpec::alphabet(&dom())),
            (Box::new(AccountSpec), AccountSpec::alphabet(&[1, 2], &[5])),
        ];
        for (adt, alpha) in &cases {
            let ib = invalidated_by(adt.as_ref(), alpha, b);
            assert!(
                is_dependency_relation(adt.as_ref(), alpha, &ib, b),
                "invalidated-by must be a dependency relation for {}",
                adt.type_name()
            );
        }
    }

    /// Dropping a needed pair from invalidated-by breaks Definition 3 for
    /// the File: reads must depend on distinct writes.
    #[test]
    fn file_relation_without_read_write_pair_fails() {
        let alpha = FileSpec::alphabet(&dom());
        let f = FileSpec::default();
        let mut ib = invalidated_by(&f, &alpha, Bounds::default());
        // Remove (read→1, write(2)).
        ib.pairs.remove(&(1, 2));
        assert!(!is_dependency_relation(&f, &alpha, &ib, Bounds::default()));
    }
}
