//! The *invalidated-by* relation (Definitions 8–9, Theorem 10).
//!
//! Operation `p` **invalidates** `q` if there exist sequences `h₁`, `h₂`
//! such that `h₁·p·h₂` and `h₁·h₂·q` are legal but `h₁·p·h₂·q` is not.
//! `invalidated-by` contains all pairs `(q, p)` such that `p` invalidates
//! `q`; Theorem 10 shows it is a dependency relation (not necessarily
//! minimal).
//!
//! The search is bounded: `h₁` ranges over legal sequences up to
//! `max_h1` and `h₂` over extensions up to `max_h2`. Both frontiers —
//! after `h₁·p·h₂` and after `h₁·h₂` — are carried simultaneously so each
//! `(h₁, p)` pair explores its `h₂` tree once.

use crate::enumerate::legal_sequences;
use crate::relation::InstanceRelation;
use hcc_spec::{Adt, Frontier, Operation};
use std::collections::BTreeSet;
use std::collections::HashMap;

/// Search bounds for relation derivation.
#[derive(Clone, Copy, Debug)]
pub struct Bounds {
    /// Maximum length of the prefix `h₁` (and of `h` for Definition 3).
    pub max_h1: usize,
    /// Maximum length of the infix `h₂` (and of `k` for Definition 3).
    pub max_h2: usize,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds { max_h1: 3, max_h2: 3 }
    }
}

/// Compute the bounded invalidated-by relation over `alphabet`:
/// `(q, p) ∈ R` iff a witness `(h₁, h₂)` within `bounds` shows that `p`
/// invalidates `q`.
///
/// Whether a witness exists depends only on the *frontier* `h₁` leaves
/// behind, never on `h₁` itself, so distinct prefixes reaching the same
/// frontier are searched once; likewise each `(h₁, p)` extension tree
/// memoizes its `(with-p, without-p)` frontier pairs. Both collapses are
/// exact — the relation is identical to the naive enumeration — but they
/// turn the cost from the number of legal sequences into the (much
/// smaller) number of reachable frontiers, which is what makes doubled
/// bounds ([`crate::derive::check_bounds_invariance`]) affordable.
pub fn invalidated_by(adt: &dyn Adt, alphabet: &[Operation], bounds: Bounds) -> InstanceRelation {
    let mut rel = InstanceRelation::new();
    let frontiers: BTreeSet<Frontier> =
        legal_sequences(adt, alphabet, bounds.max_h1).into_iter().map(|s| s.frontier).collect();
    for h1 in &frontiers {
        for (p, p_op) in alphabet.iter().enumerate() {
            let with_p = h1.advance(adt, p_op);
            if with_p.is_empty() {
                continue; // h₁·p illegal: p cannot be inserted here
            }
            let mut seen = HashMap::new();
            extend_h2(adt, alphabet, bounds.max_h2, &with_p, h1, p, &mut rel, &mut seen);
        }
    }
    rel
}

/// Recursively extend `h₂`, tracking the frontier after `h₁·p·h₂`
/// (`with_p`) and after `h₁·h₂` (`without_p`). At every node, any `q` legal
/// without `p` but illegal with it is invalidated by `p`. A frontier pair
/// already explored with at least as much remaining depth contributes
/// nothing new and is pruned.
#[allow(clippy::too_many_arguments)]
fn extend_h2(
    adt: &dyn Adt,
    alphabet: &[Operation],
    depth: usize,
    with_p: &Frontier,
    without_p: &Frontier,
    p: usize,
    rel: &mut InstanceRelation,
    seen: &mut HashMap<(Frontier, Frontier), usize>,
) {
    match seen.get_mut(&(with_p.clone(), without_p.clone())) {
        Some(explored) if *explored >= depth => return,
        Some(explored) => *explored = depth,
        None => {
            seen.insert((with_p.clone(), without_p.clone()), depth);
        }
    }
    for (q, q_op) in alphabet.iter().enumerate() {
        if rel.contains(q, p) {
            continue; // already witnessed
        }
        if !without_p.advance(adt, q_op).is_empty() && with_p.advance(adt, q_op).is_empty() {
            rel.insert(q, p);
        }
    }
    if depth == 0 {
        return;
    }
    for op in alphabet {
        let w = with_p.advance(adt, op);
        if w.is_empty() {
            continue; // h₁·p·h₂ must stay legal
        }
        let wo = without_p.advance(adt, op);
        if wo.is_empty() {
            continue; // h₁·h₂·q requires h₁·h₂ legal
        }
        extend_h2(adt, alphabet, depth - 1, &w, &wo, p, rel, seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_spec::specs::{FileSpec, QueueSpec};
    use hcc_spec::Value;

    #[test]
    fn file_reads_invalidated_by_distinct_writes_only() {
        let dom = vec![Value::Int(1), Value::Int(2)];
        let alpha = FileSpec::alphabet(&dom);
        let f = FileSpec::default();
        let r = invalidated_by(&f, &alpha, Bounds::default());
        // Alphabet order: write(1), read→1, write(2), read→2.
        let (w1, r1, w2, r2) = (0, 1, 2, 3);
        assert!(r.contains(r1, w2), "read→1 invalidated by write(2)");
        assert!(r.contains(r2, w1));
        assert!(!r.contains(r1, w1), "read→1 not invalidated by write(1)");
        assert!(!r.contains(w1, w2), "writes never invalidated");
        assert!(!r.contains(w1, r1), "reads invalidate nothing");
        assert!(!r.contains(r1, r2), "reads do not invalidate reads");
    }

    #[test]
    fn queue_deq_invalidated_by_enq_of_other_item_and_deq_of_same() {
        let dom = vec![Value::Int(1), Value::Int(2)];
        let alpha = QueueSpec::alphabet(&dom);
        let q = QueueSpec;
        let r = invalidated_by(&q, &alpha, Bounds::default());
        // Alphabet order: enq(1), deq→1, enq(2), deq→2.
        let (e1, d1, e2, d2) = (0, 1, 2, 3);
        assert!(r.contains(d1, e2), "deq→1 invalidated by enq(2)");
        assert!(r.contains(d1, d1), "deq→1 invalidated by deq→1");
        assert!(!r.contains(d1, e1), "deq→1 not invalidated by enq(1)");
        assert!(!r.contains(d1, d2), "deq→1 not invalidated by deq→2");
        assert!(!r.contains(e1, e2), "enq never invalidated");
        assert!(!r.contains(e1, d1));
        let _ = (e1, d2);
    }

    #[test]
    fn larger_bounds_do_not_change_queue_relation() {
        let dom = vec![Value::Int(1), Value::Int(2)];
        let alpha = QueueSpec::alphabet(&dom);
        let q = QueueSpec;
        let small = invalidated_by(&q, &alpha, Bounds { max_h1: 2, max_h2: 2 });
        let large = invalidated_by(&q, &alpha, Bounds { max_h1: 4, max_h2: 3 });
        assert_eq!(small, large, "derivation has converged by bound 2+2");
    }
}
