//! Bounded enumeration of legal operation sequences.
//!
//! Derivation searches (Definitions 3, 8, 26) quantify over operation
//! sequences; we enumerate them over a fixed finite alphabet of operation
//! *instances* up to a length bound. Because serial specifications are
//! prefix-closed, legal sequences form a tree that we can grow
//! incrementally, carrying the specification [`Frontier`] to avoid
//! re-simulating prefixes.

use hcc_spec::{Adt, Frontier, Operation};

/// A legal sequence (as alphabet indices) together with the specification
/// frontier it leaves behind.
#[derive(Clone, Debug)]
pub struct LegalSeq {
    /// Alphabet indices of the operations, in order.
    pub ops: Vec<usize>,
    /// Frontier after executing the sequence from the initial state.
    pub frontier: Frontier,
}

/// Enumerate every legal sequence over `alphabet` of length `0..=max_len`,
/// in breadth-first (shortlex) order. The empty sequence is always first.
pub fn legal_sequences(adt: &dyn Adt, alphabet: &[Operation], max_len: usize) -> Vec<LegalSeq> {
    let mut out = vec![LegalSeq { ops: Vec::new(), frontier: Frontier::initial(adt) }];
    let mut level_start = 0;
    for _ in 0..max_len {
        let level_end = out.len();
        for i in level_start..level_end {
            for (j, op) in alphabet.iter().enumerate() {
                let f = out[i].frontier.advance(adt, op);
                if !f.is_empty() {
                    let mut ops = out[i].ops.clone();
                    ops.push(j);
                    out.push(LegalSeq { ops, frontier: f });
                }
            }
        }
        if out.len() == level_end {
            break; // no legal extensions remain
        }
        level_start = level_end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_spec::specs::QueueSpec;
    use hcc_spec::Value;

    fn alphabet() -> Vec<Operation> {
        QueueSpec::alphabet(&[Value::Int(1), Value::Int(2)])
    }

    #[test]
    fn empty_sequence_is_enumerated_first() {
        let seqs = legal_sequences(&QueueSpec, &alphabet(), 2);
        assert!(seqs[0].ops.is_empty());
    }

    #[test]
    fn only_legal_sequences_appear() {
        let a = alphabet();
        let seqs = legal_sequences(&QueueSpec, &a, 2);
        // Sequences starting with a deq are illegal on the empty queue.
        for s in &seqs {
            if let Some(&first) = s.ops.first() {
                assert_eq!(a[first].inv.op, "enq", "sequence {:?} should start with enq", s.ops);
            }
        }
    }

    #[test]
    fn counts_match_hand_enumeration() {
        // Alphabet: enq(1), deq→1, enq(2), deq→2.
        // Length 1: enq(1), enq(2)                                => 2
        // Length 2: enq(i);enq(j) (4) + enq(i);deq→i (2)          => 6
        let seqs = legal_sequences(&QueueSpec, &alphabet(), 2);
        assert_eq!(seqs.iter().filter(|s| s.ops.len() == 1).count(), 2);
        assert_eq!(seqs.iter().filter(|s| s.ops.len() == 2).count(), 6);
        assert_eq!(seqs.len(), 1 + 2 + 6);
    }

    #[test]
    fn frontier_is_consistent_with_replay() {
        let a = alphabet();
        for s in legal_sequences(&QueueSpec, &a, 3) {
            let ops: Vec<Operation> = s.ops.iter().map(|&i| a[i].clone()).collect();
            let replay = Frontier::initial(&QueueSpec).advance_seq(&QueueSpec, &ops);
            assert_eq!(replay, s.frontier);
        }
    }
}
