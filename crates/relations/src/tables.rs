//! Rendering derived relations in the paper's tabular format, ground-truth
//! constants for Tables I–VI, and per-type derivation configurations.

use crate::invalidated_by::Bounds;
use crate::relation::{key_value, InstanceRelation, OpClass};
use hcc_spec::adt::SharedAdt;
use hcc_spec::specs::{
    AccountSpec, CounterSpec, DirectorySpec, FileSpec, QueueSpec, SemiqueueSpec, SetSpec,
};
use hcc_spec::{Operation, Rational, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A cell of a relation table: the condition under which the row class
/// depends on (or conflicts with) the column class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellCond {
    /// Unrelated (blank in the paper).
    Never,
    /// Related unconditionally (`true` in the paper).
    Always,
    /// Related when the key values are equal (`v = v′`).
    Eq,
    /// Related when the key values are distinct (`v ≠ v′`).
    Neq,
    /// The instance pattern fits none of the paper's three conditions
    /// (never arises for the bundled types; kept for honesty).
    Mixed,
}

impl CellCond {
    fn render(self) -> &'static str {
        match self {
            CellCond::Never => "",
            CellCond::Always => "true",
            CellCond::Eq => "v=v'",
            CellCond::Neq => "v≠v'",
            CellCond::Mixed => "?",
        }
    }
}

/// A class-level relation table in the paper's row/column format: the row
/// operation depends on the column operation when the cell condition holds.
#[derive(Clone, PartialEq, Eq)]
pub struct RelationTable {
    /// Table caption, e.g. `"Table I: Minimal Dependency Relation for File"`.
    pub title: String,
    /// Row/column classes, in presentation order.
    pub classes: Vec<OpClass>,
    /// Cells, keyed by `(row, col)`. Absent means [`CellCond::Never`].
    pub cells: BTreeMap<(OpClass, OpClass), CellCond>,
}

impl RelationTable {
    /// Look up a cell.
    pub fn cell(&self, row: &OpClass, col: &OpClass) -> CellCond {
        self.cells.get(&(row.clone(), col.clone())).copied().unwrap_or(CellCond::Never)
    }

    /// Build a class-level table from an instance relation by bucketing the
    /// instance pairs of each class pair by key condition.
    ///
    /// A bucket with no instances is ignored; a class pair related in every
    /// populated bucket renders as `true`.
    pub fn from_instance_relation(
        title: impl Into<String>,
        alphabet: &[Operation],
        classify: &dyn Fn(&Operation) -> OpClass,
        classes: &[OpClass],
        rel: &InstanceRelation,
    ) -> RelationTable {
        #[derive(Default)]
        struct Bucket {
            total: usize,
            related: usize,
        }
        let mut buckets: BTreeMap<(OpClass, OpClass), (Bucket, Bucket)> = BTreeMap::new();
        for (q, q_op) in alphabet.iter().enumerate() {
            for (p, p_op) in alphabet.iter().enumerate() {
                let entry = buckets
                    .entry((classify(q_op), classify(p_op)))
                    .or_insert_with(|| (Bucket::default(), Bucket::default()));
                let eq = match (key_value(q_op), key_value(p_op)) {
                    (Some(a), Some(b)) => a == b,
                    _ => true,
                };
                let bucket = if eq { &mut entry.0 } else { &mut entry.1 };
                bucket.total += 1;
                if rel.contains(q, p) {
                    bucket.related += 1;
                }
            }
        }
        let mut cells = BTreeMap::new();
        for ((row, col), (eq, neq)) in buckets {
            let eq_state = bucket_state(eq.total, eq.related);
            let neq_state = bucket_state(neq.total, neq.related);
            let cond = match (eq_state, neq_state) {
                (BucketState::Empty, BucketState::Empty) => CellCond::Never,
                (BucketState::None, BucketState::None)
                | (BucketState::None, BucketState::Empty)
                | (BucketState::Empty, BucketState::None) => CellCond::Never,
                (BucketState::All, BucketState::All)
                | (BucketState::All, BucketState::Empty)
                | (BucketState::Empty, BucketState::All) => CellCond::Always,
                (BucketState::All, BucketState::None) => CellCond::Eq,
                (BucketState::None, BucketState::All) => CellCond::Neq,
                _ => CellCond::Mixed,
            };
            if cond != CellCond::Never {
                cells.insert((row, col), cond);
            }
        }
        RelationTable { title: title.into(), classes: classes.to_vec(), cells }
    }

    /// Render the table as aligned plain text (the shape the paper prints).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.classes.iter().map(|c| c.0.len().max(5)).collect();
        let row_w = widths
            .iter()
            .copied()
            .max()
            .unwrap_or(5)
            .max(self.classes.iter().map(|c| c.0.len()).max().unwrap_or(5));
        for (j, col) in self.classes.iter().enumerate() {
            for row in &self.classes {
                widths[j] = widths[j].max(self.cell(row, col).render().len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&format!("{:row_w$}", ""));
        for (j, col) in self.classes.iter().enumerate() {
            out.push_str(&format!("  {:>w$}", col.0, w = widths[j]));
        }
        out.push('\n');
        for row in &self.classes {
            out.push_str(&format!("{:row_w$}", row.0));
            for (j, col) in self.classes.iter().enumerate() {
                out.push_str(&format!("  {:>w$}", self.cell(row, col).render(), w = widths[j]));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Debug for RelationTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum BucketState {
    Empty,
    None,
    All,
    Partial,
}

fn bucket_state(total: usize, related: usize) -> BucketState {
    if total == 0 {
        BucketState::Empty
    } else if related == 0 {
        BucketState::None
    } else if related == total {
        BucketState::All
    } else {
        BucketState::Partial
    }
}

/// Everything needed to derive relations for one data type: the
/// specification, a finite operation alphabet over a small domain, a
/// classifier, and the presentation order of classes.
pub struct AdtConfig {
    /// The serial specification.
    pub adt: SharedAdt,
    /// Operation instances over the derivation domain.
    pub alphabet: Vec<Operation>,
    /// Instance → class.
    pub classify: fn(&Operation) -> OpClass,
    /// Row/column presentation order.
    pub classes: Vec<OpClass>,
    /// Derivation bounds.
    pub bounds: Bounds,
}

fn cls(names: &[&str]) -> Vec<OpClass> {
    names.iter().map(|n| OpClass::new(*n)).collect()
}

fn domain() -> Vec<Value> {
    vec![Value::Int(1), Value::Int(2)]
}

impl AdtConfig {
    /// File over values {1, 2}.
    pub fn file() -> AdtConfig {
        fn classify(op: &Operation) -> OpClass {
            OpClass::new(if op.inv.op == "read" { "Read" } else { "Write" })
        }
        AdtConfig {
            adt: Arc::new(FileSpec::default()),
            alphabet: FileSpec::alphabet(&domain()),
            classify,
            classes: cls(&["Read", "Write"]),
            bounds: Bounds::default(),
        }
    }

    /// FIFO queue over items {1, 2}.
    pub fn queue() -> AdtConfig {
        fn classify(op: &Operation) -> OpClass {
            OpClass::new(if op.inv.op == "enq" { "Enq" } else { "Deq" })
        }
        AdtConfig {
            adt: Arc::new(QueueSpec),
            alphabet: QueueSpec::alphabet(&domain()),
            classify,
            classes: cls(&["Enq", "Deq"]),
            bounds: Bounds::default(),
        }
    }

    /// Semiqueue over items {1, 2}.
    pub fn semiqueue() -> AdtConfig {
        fn classify(op: &Operation) -> OpClass {
            OpClass::new(if op.inv.op == "ins" { "Ins" } else { "Rem" })
        }
        AdtConfig {
            adt: Arc::new(SemiqueueSpec),
            alphabet: SemiqueueSpec::alphabet(&domain()),
            classify,
            classes: cls(&["Ins", "Rem"]),
            bounds: Bounds::default(),
        }
    }

    /// Account over debit amounts {1, 2} and posting rate {5%}.
    ///
    /// Credit amounts additionally include the fractional witnesses 39/20
    /// and 24/25: `post(5)` invalidates `debit(m)→Overdraft` only from a
    /// balance in `[20m/21, m)`, which integer credits cannot reach (see
    /// [`AccountSpec::alphabet_ext`]).
    pub fn account() -> AdtConfig {
        fn classify(op: &Operation) -> OpClass {
            OpClass::new(match (op.inv.op, &op.res) {
                ("credit", _) => "Credit",
                ("post", _) => "Post",
                ("debit", Value::Bool(true)) => "Debit-Ok",
                ("debit", Value::Bool(false)) => "Debit-Overdraft",
                other => panic!("unexpected account op {other:?}"),
            })
        }
        let r = Rational::new;
        AdtConfig {
            adt: Arc::new(AccountSpec),
            alphabet: AccountSpec::alphabet_ext(
                &[r(1, 1), r(2, 1), r(39, 20), r(24, 25)],
                &[r(1, 1), r(2, 1)],
                &[r(5, 1)],
            ),
            classify,
            classes: cls(&["Credit", "Post", "Debit-Ok", "Debit-Overdraft"]),
            bounds: Bounds { max_h1: 3, max_h2: 1 },
        }
    }

    /// Counter with deltas {0, 1, 2} and read outcomes {0, 1, 2, 3}.
    ///
    /// Zero-delta updates are their own class, `Touch`: `inc(0)` is a
    /// state-level no-op, so lumping it into `Inc` would smear the
    /// `Read ⊦ Inc` dependency (witnessed only by non-zero deltas) into a
    /// condition the table language cannot express ("delta ≠ 0" is not a
    /// key comparison between the two operations). Derivation confirms
    /// `Touch` participates in no dependency — which is exactly what the
    /// hand-written hybrid relation encodes by ignoring zero updates.
    pub fn counter() -> AdtConfig {
        fn classify(op: &Operation) -> OpClass {
            OpClass::new(match op.inv.op {
                "inc" | "dec" if op.inv.args[0] == Value::Int(0) => "Touch",
                "inc" => "Inc",
                "dec" => "Dec",
                _ => "Read",
            })
        }
        AdtConfig {
            adt: Arc::new(CounterSpec),
            alphabet: CounterSpec::alphabet(&[0, 1, 2], &[0, 1, 2, 3]),
            classify,
            classes: cls(&["Inc", "Dec", "Touch", "Read"]),
            bounds: Bounds { max_h1: 2, max_h2: 2 },
        }
    }

    /// Set over elements {1, 2}.
    pub fn set() -> AdtConfig {
        fn classify(op: &Operation) -> OpClass {
            OpClass::new(match (op.inv.op, op.res.as_bool()) {
                ("add", true) => "Add-New",
                ("add", false) => "Add-Dup",
                ("remove", true) => "Remove-Hit",
                ("remove", false) => "Remove-Miss",
                ("contains", true) => "Contains-T",
                (_, _) => "Contains-F",
            })
        }
        AdtConfig {
            adt: Arc::new(SetSpec),
            alphabet: SetSpec::alphabet(&domain()),
            classify,
            classes: cls(&[
                "Add-New",
                "Add-Dup",
                "Remove-Hit",
                "Remove-Miss",
                "Contains-T",
                "Contains-F",
            ]),
            bounds: Bounds { max_h1: 2, max_h2: 2 },
        }
    }

    /// Directory over keys {"a", "b"} and values {1, 2}.
    pub fn directory() -> AdtConfig {
        fn classify(op: &Operation) -> OpClass {
            OpClass::new(match (op.inv.op, &op.res) {
                ("insert", Value::Bool(true)) => "Insert-New",
                ("insert", _) => "Insert-Dup",
                ("remove", Value::Null) => "Remove-Miss",
                ("remove", _) => "Remove-Hit",
                ("lookup", Value::Null) => "Lookup-Miss",
                (_, _) => "Lookup-Hit",
            })
        }
        AdtConfig {
            adt: Arc::new(DirectorySpec),
            alphabet: DirectorySpec::alphabet(
                &[Value::str("a"), Value::str("b")],
                &[Value::Int(1)],
            ),
            classify,
            classes: cls(&[
                "Insert-New",
                "Insert-Dup",
                "Remove-Hit",
                "Remove-Miss",
                "Lookup-Hit",
                "Lookup-Miss",
            ]),
            bounds: Bounds { max_h1: 2, max_h2: 2 },
        }
    }

    /// Derive this type's invalidated-by relation as a rendered table.
    pub fn derive_invalidated_by(&self, title: impl Into<String>) -> RelationTable {
        let rel =
            crate::invalidated_by::invalidated_by(self.adt.as_ref(), &self.alphabet, self.bounds);
        RelationTable::from_instance_relation(
            title,
            &self.alphabet,
            &self.classify,
            &self.classes,
            &rel,
        )
    }

    /// Derive this type's failure-to-commute relation as a rendered table.
    pub fn derive_failure_to_commute(&self, title: impl Into<String>) -> RelationTable {
        let rel = crate::commutativity::failure_to_commute(
            self.adt.as_ref(),
            &self.alphabet,
            self.bounds,
        );
        RelationTable::from_instance_relation(
            title,
            &self.alphabet,
            &self.classify,
            &self.classes,
            &rel,
        )
    }
}

fn table(title: &str, classes: &[&str], entries: &[(&str, &str, CellCond)]) -> RelationTable {
    RelationTable {
        title: title.to_string(),
        classes: cls(classes),
        cells: entries
            .iter()
            .map(|(r, c, cond)| ((OpClass::new(*r), OpClass::new(*c)), *cond))
            .collect(),
    }
}

/// Ground truth: Table I — minimal dependency relation for File.
pub fn paper_table_i() -> RelationTable {
    table(
        "Table I: Minimal Dependency Relation for File",
        &["Read", "Write"],
        &[("Read", "Write", CellCond::Neq)],
    )
}

/// Ground truth: Table II — first minimal dependency relation for Queue
/// (the invalidated-by relation).
pub fn paper_table_ii() -> RelationTable {
    table(
        "Table II: First Minimal Dependency Relation for Queue",
        &["Enq", "Deq"],
        &[("Deq", "Enq", CellCond::Neq), ("Deq", "Deq", CellCond::Eq)],
    )
}

/// Ground truth: Table III — second minimal dependency relation for Queue.
pub fn paper_table_iii() -> RelationTable {
    table(
        "Table III: Second Minimal Dependency Relation for Queue",
        &["Enq", "Deq"],
        &[("Enq", "Enq", CellCond::Neq), ("Deq", "Deq", CellCond::Eq)],
    )
}

/// Ground truth: Table IV — minimal dependency relation for Semiqueue.
pub fn paper_table_iv() -> RelationTable {
    table(
        "Table IV: Minimal Dependency Relation for Semiqueue",
        &["Ins", "Rem"],
        &[("Rem", "Rem", CellCond::Eq)],
    )
}

/// Ground truth: Table V — minimal dependency relation for Account.
pub fn paper_table_v() -> RelationTable {
    table(
        "Table V: Minimal Dependency Relation for Account",
        &["Credit", "Post", "Debit-Ok", "Debit-Overdraft"],
        &[
            ("Debit-Ok", "Debit-Ok", CellCond::Always),
            ("Debit-Overdraft", "Credit", CellCond::Always),
            ("Debit-Overdraft", "Post", CellCond::Always),
        ],
    )
}

/// Ground truth: Table VI — the "failure to commute" relation for Account.
pub fn paper_table_vi() -> RelationTable {
    table(
        "Table VI: \"Failure to Commute\" Relation for Account",
        &["Credit", "Post", "Debit-Ok", "Debit-Overdraft"],
        &[
            ("Credit", "Post", CellCond::Always),
            ("Post", "Credit", CellCond::Always),
            ("Credit", "Debit-Overdraft", CellCond::Always),
            ("Debit-Overdraft", "Credit", CellCond::Always),
            ("Post", "Debit-Ok", CellCond::Always),
            ("Debit-Ok", "Post", CellCond::Always),
            ("Post", "Debit-Overdraft", CellCond::Always),
            ("Debit-Overdraft", "Post", CellCond::Always),
            ("Debit-Ok", "Debit-Ok", CellCond::Always),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_table_eq(derived: &RelationTable, expected: &RelationTable) {
        assert_eq!(derived.classes, expected.classes);
        for row in &expected.classes {
            for col in &expected.classes {
                assert_eq!(
                    derived.cell(row, col),
                    expected.cell(row, col),
                    "cell ({row}, {col}) differs:\nderived:\n{}\nexpected:\n{}",
                    derived.render(),
                    expected.render()
                );
            }
        }
    }

    #[test]
    fn file_matches_paper_table_i() {
        let derived = AdtConfig::file().derive_invalidated_by("derived");
        assert_table_eq(&derived, &paper_table_i());
    }

    #[test]
    fn queue_invalidated_by_matches_paper_table_ii() {
        let derived = AdtConfig::queue().derive_invalidated_by("derived");
        assert_table_eq(&derived, &paper_table_ii());
    }

    #[test]
    fn semiqueue_matches_paper_table_iv() {
        let derived = AdtConfig::semiqueue().derive_invalidated_by("derived");
        assert_table_eq(&derived, &paper_table_iv());
    }

    #[test]
    fn account_matches_paper_table_v() {
        let derived = AdtConfig::account().derive_invalidated_by("derived");
        assert_table_eq(&derived, &paper_table_v());
    }

    #[test]
    fn account_commutativity_matches_paper_table_vi() {
        let derived = AdtConfig::account().derive_failure_to_commute("derived");
        assert_table_eq(&derived, &paper_table_vi());
    }

    #[test]
    fn queue_minimal_relations_match_tables_ii_and_iii() {
        let cfg = AdtConfig::queue();
        let rels = crate::minimal::minimal_dependency_relations(
            cfg.adt.as_ref(),
            &cfg.alphabet,
            &cfg.classify,
            cfg.bounds,
        );
        assert_eq!(rels.len(), 2);
        let tables: Vec<RelationTable> = rels
            .iter()
            .map(|atoms| {
                let rel =
                    crate::minimal::atoms_to_instance_relation(&cfg.alphabet, &cfg.classify, atoms);
                RelationTable::from_instance_relation(
                    "derived",
                    &cfg.alphabet,
                    &cfg.classify,
                    &cfg.classes,
                    &rel,
                )
            })
            .collect();
        let matches_ii = tables
            .iter()
            .filter(|t| t.cell(&OpClass::new("Deq"), &OpClass::new("Enq")) == CellCond::Neq);
        let matches_iii = tables
            .iter()
            .filter(|t| t.cell(&OpClass::new("Enq"), &OpClass::new("Enq")) == CellCond::Neq);
        assert_eq!(matches_ii.count(), 1);
        assert_eq!(matches_iii.count(), 1);
    }

    #[test]
    fn render_is_stable_and_readable() {
        let t = paper_table_ii();
        let s = t.render();
        assert!(s.contains("Enq"));
        assert!(s.contains("v≠v'"));
        assert!(s.contains("v=v'"));
    }

    #[test]
    fn extension_types_derive_without_mixed_cells() {
        for cfg in [AdtConfig::counter(), AdtConfig::set(), AdtConfig::directory()] {
            let t = cfg.derive_invalidated_by("derived");
            for row in &t.classes {
                for col in &t.classes {
                    assert_ne!(
                        t.cell(row, col),
                        CellCond::Mixed,
                        "{}: mixed cell at ({row}, {col})\n{}",
                        cfg.adt.type_name(),
                        t.render()
                    );
                }
            }
        }
    }

    #[test]
    fn counter_updates_never_depend_on_each_other() {
        let t = AdtConfig::counter().derive_invalidated_by("derived");
        for a in ["Inc", "Dec"] {
            for b in ["Inc", "Dec"] {
                assert_eq!(t.cell(&OpClass::new(a), &OpClass::new(b)), CellCond::Never);
            }
        }
        // Reads are invalidated by updates.
        assert_ne!(t.cell(&OpClass::new("Read"), &OpClass::new("Inc")), CellCond::Never);
    }
}
