//! # hcc-relations — deriving lock-conflict constraints from specifications
//!
//! Section 4 of the paper derives "necessary and sufficient constraints on
//! lock conflicts directly from a data type specification". This crate
//! mechanizes that derivation:
//!
//! * [`relation`] — operation classes, instance-level relations, and the
//!   argument/response conditions (`v = v′`, `v ≠ v′`) the paper's tables
//!   are phrased in.
//! * [`enumerate`] — bounded enumeration of legal operation sequences over
//!   a finite alphabet of operation instances.
//! * [`invalidated_by`] — the constructive *invalidated-by* dependency
//!   relation of Definitions 8–9 (Theorem 10), computed by bounded search.
//! * [`violations`] — the Definition-3 *violation structure*: a relation is
//!   a dependency relation iff it "hits" every violation; this yields both a
//!   bounded dependency-relation checker and, via minimal hitting sets
//!   ([`minimal`]), the enumeration of **all minimal dependency relations**
//!   (rediscovering that the FIFO queue has exactly two: Tables II and III).
//! * [`commutativity`] — forward commutativity (Definitions 25–26) and the
//!   *failure-to-commute* relation of Section 7 (Theorem 28).
//! * [`tables`] — rendering of derived relations in the paper's tabular
//!   format, the ground-truth Tables I–VI, and per-type derivation
//!   configurations.
//! * [`derive`] — the runtime bridge: derive a type's conflict atoms from
//!   its [`DeriveSpec`] and memoize them per type name, so constructing a
//!   live object under a *derived* lock relation pays the bounded search
//!   once per process (`hcc-core::runtime::SpecLock` does the lifting).
//!
//! ## Boundedness
//!
//! Definitions 3, 8 and 26 quantify over *all* operation sequences; we
//! enumerate sequences up to a configurable bound (default 3+3) over a small
//! value domain. The unit tests assert exact agreement with the paper's
//! tables, and candidate relations are re-validated against an independent
//! bounded Definition-3 check, so the bounds are empirically adequate for
//! every bundled type.

pub mod commutativity;
pub mod derive;
pub mod enumerate;
pub mod invalidated_by;
pub mod minimal;
pub mod relation;
pub mod tables;
pub mod violations;

pub use commutativity::failure_to_commute;
pub use derive::{cached_conflict_atoms, conflict_atoms, DeriveSpec};
pub use invalidated_by::invalidated_by;
pub use minimal::minimal_dependency_relations;
pub use relation::{Atom, Cond, InstanceRelation, OpClass};
pub use tables::{AdtConfig, RelationTable};
pub use violations::{is_dependency_relation, violations, Violation};
