//! Enumerating **all minimal dependency relations** of a specification.
//!
//! Section 4.2 observes that "an object may have several distinct minimal
//! dependency relations" and Section 4.3 exhibits two for the FIFO queue
//! (Tables II and III). We make that observation algorithmic:
//!
//! 1. Compute the bounded Definition-3 violation structure
//!    ([`crate::violations`]): each violation lists the instance pairs that
//!    could license refusing the offending interleaving.
//! 2. Lift instance pairs to *atoms* — class pairs under a key condition —
//!    because the paper's relations are uniform in the value domain.
//! 3. A relation (set of atoms) is a bounded dependency relation iff it
//!    *hits* every violation; the minimal dependency relations are exactly
//!    the **minimal hitting sets** of the violation structure.

use crate::invalidated_by::Bounds;
use crate::relation::{pair_cond, Atom, InstanceRelation, OpClass};
use crate::violations::violations;
use hcc_spec::{Adt, Operation};
use std::collections::BTreeSet;

/// Convert a set of atoms into the instance relation it denotes over
/// `alphabet`.
pub fn atoms_to_instance_relation(
    alphabet: &[Operation],
    classify: &dyn Fn(&Operation) -> OpClass,
    atoms: &BTreeSet<Atom>,
) -> InstanceRelation {
    let mut rel = InstanceRelation::new();
    for (q, q_op) in alphabet.iter().enumerate() {
        for (p, p_op) in alphabet.iter().enumerate() {
            let atom =
                Atom { row: classify(q_op), col: classify(p_op), cond: pair_cond(q_op, p_op) };
            if atoms.contains(&atom) {
                rel.insert(q, p);
            }
        }
    }
    rel
}

/// Enumerate all minimal dependency relations (as atom sets) of a
/// specification, within the given bounds.
///
/// The result is sorted lexicographically; for the FIFO queue it contains
/// exactly the two relations of Tables II and III.
pub fn minimal_dependency_relations(
    adt: &dyn Adt,
    alphabet: &[Operation],
    classify: &dyn Fn(&Operation) -> OpClass,
    bounds: Bounds,
) -> Vec<BTreeSet<Atom>> {
    // Lift each violation's candidate instance pairs to atom sets.
    let mut sets: BTreeSet<BTreeSet<Atom>> = BTreeSet::new();
    for v in violations(adt, alphabet, bounds) {
        let atoms: BTreeSet<Atom> = v
            .candidates
            .iter()
            .map(|&(q, p)| Atom {
                row: classify(&alphabet[q]),
                col: classify(&alphabet[p]),
                cond: pair_cond(&alphabet[q], &alphabet[p]),
            })
            .collect();
        sets.insert(atoms);
    }
    // Keep only ⊆-minimal violation atom-sets (hitting a subset hits its
    // supersets).
    let sets: Vec<BTreeSet<Atom>> = {
        let all: Vec<BTreeSet<Atom>> = sets.into_iter().collect();
        all.iter()
            .filter(|s| !all.iter().any(|t| t.len() < s.len() && t.is_subset(s)))
            .cloned()
            .collect()
    };
    // Enumerate hitting sets by branching on the first unhit violation.
    let mut found: Vec<BTreeSet<Atom>> = Vec::new();
    let mut chosen: BTreeSet<Atom> = BTreeSet::new();
    hit(&sets, &mut chosen, &mut found);
    // Filter to minimal hitting sets and sort.
    let mut minimal: Vec<BTreeSet<Atom>> = found
        .iter()
        .filter(|s| !found.iter().any(|t| t.len() < s.len() && t.is_subset(s)))
        .cloned()
        .collect();
    minimal.sort();
    minimal.dedup();
    minimal
}

fn hit(sets: &[BTreeSet<Atom>], chosen: &mut BTreeSet<Atom>, found: &mut Vec<BTreeSet<Atom>>) {
    match sets.iter().find(|s| s.is_disjoint(chosen)) {
        None => found.push(chosen.clone()),
        Some(unhit) => {
            for atom in unhit {
                let added = chosen.insert(atom.clone());
                hit(sets, chosen, found);
                if added {
                    chosen.remove(atom);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Cond;
    use crate::violations::is_dependency_relation;
    use hcc_spec::specs::{FileSpec, QueueSpec, SemiqueueSpec};
    use hcc_spec::Value;

    fn dom() -> Vec<Value> {
        vec![Value::Int(1), Value::Int(2)]
    }

    fn classify_queue(op: &Operation) -> OpClass {
        OpClass::new(if op.inv.op == "enq" { "Enq" } else { "Deq" })
    }

    fn classify_file(op: &Operation) -> OpClass {
        OpClass::new(if op.inv.op == "read" { "Read" } else { "Write" })
    }

    fn classify_semiqueue(op: &Operation) -> OpClass {
        OpClass::new(if op.inv.op == "ins" { "Ins" } else { "Rem" })
    }

    fn atom(row: &str, col: &str, cond: Cond) -> Atom {
        Atom { row: OpClass::new(row), col: OpClass::new(col), cond }
    }

    #[test]
    fn queue_has_exactly_two_minimal_relations() {
        let alpha = QueueSpec::alphabet(&dom());
        let rels =
            minimal_dependency_relations(&QueueSpec, &alpha, &classify_queue, Bounds::default());
        // Table II: Deq depends on Enq (v≠v') and on Deq (v=v').
        let table2: BTreeSet<Atom> =
            [atom("Deq", "Enq", Cond::KeyNeq), atom("Deq", "Deq", Cond::KeyEq)].into();
        // Table III: Enq depends on Enq (v≠v'), Deq depends on Deq (v=v').
        let table3: BTreeSet<Atom> =
            [atom("Enq", "Enq", Cond::KeyNeq), atom("Deq", "Deq", Cond::KeyEq)].into();
        assert!(rels.contains(&table2), "Table II missing from {rels:#?}");
        assert!(rels.contains(&table3), "Table III missing from {rels:#?}");
        assert_eq!(rels.len(), 2, "queue has exactly two minimal relations: {rels:#?}");
    }

    #[test]
    fn file_has_a_unique_minimal_relation() {
        let alpha = FileSpec::alphabet(&dom());
        let f = FileSpec::default();
        let rels = minimal_dependency_relations(&f, &alpha, &classify_file, Bounds::default());
        let table1: BTreeSet<Atom> = [atom("Read", "Write", Cond::KeyNeq)].into();
        assert_eq!(rels, vec![table1]);
    }

    #[test]
    fn semiqueue_has_a_unique_minimal_relation() {
        let alpha = SemiqueueSpec::alphabet(&dom());
        let rels = minimal_dependency_relations(
            &SemiqueueSpec,
            &alpha,
            &classify_semiqueue,
            Bounds::default(),
        );
        let table4: BTreeSet<Atom> = [atom("Rem", "Rem", Cond::KeyEq)].into();
        assert_eq!(rels, vec![table4]);
    }

    #[test]
    fn minimal_relations_pass_the_independent_def3_check() {
        let alpha = QueueSpec::alphabet(&dom());
        for atoms in
            minimal_dependency_relations(&QueueSpec, &alpha, &classify_queue, Bounds::default())
        {
            let rel = atoms_to_instance_relation(&alpha, &classify_queue, &atoms);
            assert!(is_dependency_relation(&QueueSpec, &alpha, &rel, Bounds::default()));
        }
    }

    #[test]
    fn removing_any_atom_breaks_minimality() {
        let alpha = QueueSpec::alphabet(&dom());
        for atoms in
            minimal_dependency_relations(&QueueSpec, &alpha, &classify_queue, Bounds::default())
        {
            for a in &atoms {
                let mut smaller = atoms.clone();
                smaller.remove(a);
                let rel = atoms_to_instance_relation(&alpha, &classify_queue, &smaller);
                assert!(
                    !is_dependency_relation(&QueueSpec, &alpha, &rel, Bounds::default()),
                    "removing {a:?} should break Definition 3"
                );
            }
        }
    }
}
