//! The primary's side of log shipping: a replication listener and one
//! shipper thread per connected follower.
//!
//! Each shipper owns its own [`WalTailer`] over the primary's live WAL
//! directory, resumed at the ticket the follower's `Hello` reported
//! durable — so a reconnecting follower re-receives exactly the suffix
//! it lost, and two followers at different positions stream
//! independently. Frames ship raw (still in their WAL envelope) in
//! global ticket order, chunked under the wire payload bound; every
//! batch carries a freshly sampled `(watermark, ticket)` pair, and an
//! empty batch is a heartbeat pushing new positions when no frames are
//! flowing (that is what lets an idle follower's watermark converge —
//! and its lag reach 0 — without new commits).
//!
//! The shipper never reads transaction state: its only inputs are the
//! WAL bytes and the position sampler. Losing the primary process
//! therefore loses nothing the log didn't already hold — the exact
//! guarantee promotion is specified against.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hcc_obs::{Counter, Gauge, Registry};
use hcc_storage::{TailOptions, WalTailer};
use hcc_wire::conn::{self, Listener, RecvHalf, SendHalf};
use hcc_wire::repl::{ReplMsg, REPL_PROTOCOL_VERSION};
use hcc_wire::MAX_WIRE_PAYLOAD;

/// Samples the primary's `(stable_watermark, last_issued_ticket)` — in
/// that order, which is what makes the pair safe for follower reads (see
/// the crate docs). Typically built from a `TxnManager` + `DurableStore`
/// pair; the server front door wires it up for you.
pub type PositionSampler = Arc<dyn Fn() -> (u64, u64) + Send + Sync>;

/// Tunables for a [`Primary`].
#[derive(Clone, Debug)]
pub struct PrimaryOptions {
    /// When set, follower `Hello`s must present exactly this token.
    pub token: Option<String>,
    /// Soft cap on one `ReplBatch`'s frame bytes (kept well under the
    /// wire's 1 MiB payload bound).
    pub batch_max_bytes: usize,
    /// How long a shipper sleeps when the tail is dry and positions are
    /// unchanged.
    pub poll_interval: Duration,
    /// Tailer patience before a never-appended ticket (an aborted
    /// reservation) is skipped. Generous: a skip of a ticket that was
    /// merely slow would ship a log with a real hole.
    pub gap_patience: u32,
}

impl Default for PrimaryOptions {
    fn default() -> PrimaryOptions {
        PrimaryOptions {
            token: None,
            batch_max_bytes: 512 << 10,
            poll_interval: Duration::from_millis(2),
            gap_patience: 500,
        }
    }
}

struct Instruments {
    batches: Arc<Counter>,
    frames: Arc<Counter>,
    bytes: Arc<Counter>,
    heartbeats: Arc<Counter>,
    faults: Arc<Counter>,
    followers: Arc<Gauge>,
    shipped: Arc<Gauge>,
    acked: Arc<Gauge>,
}

impl Instruments {
    fn resolve(metrics: &Registry) -> Instruments {
        Instruments {
            batches: metrics.counter("repl.batches.shipped"),
            frames: metrics.counter("repl.frames.shipped"),
            bytes: metrics.counter("repl.bytes.shipped"),
            heartbeats: metrics.counter("repl.heartbeats"),
            faults: metrics.counter("repl.faults"),
            followers: metrics.gauge("repl.followers"),
            shipped: metrics.gauge("repl.shipped.ticket"),
            acked: metrics.gauge("repl.acked.ticket"),
        }
    }
}

struct PrimaryShared {
    wal_dir: PathBuf,
    sample: PositionSampler,
    ins: Instruments,
    opts: PrimaryOptions,
    stop: AtomicBool,
}

/// The replication listener: accepts followers and ships them the log.
/// Dropped or [`Primary::stop`]ped, it closes every stream; followers
/// reconnect elsewhere (or get promoted).
pub struct Primary {
    addr: SocketAddr,
    shared: Arc<PrimaryShared>,
    accept: Option<JoinHandle<()>>,
    shippers: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
}

impl Primary {
    /// Bind `addr` (port 0 for an OS-assigned port) and start accepting
    /// followers, shipping the WAL under `wal_dir`. `sample` must read
    /// the stable watermark **before** the last issued ticket; `metrics`
    /// receives the `repl.*` primary-side family.
    pub fn start(
        addr: &str,
        wal_dir: impl AsRef<Path>,
        sample: PositionSampler,
        metrics: &Registry,
        opts: PrimaryOptions,
    ) -> std::io::Result<Primary> {
        let listener = Listener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(PrimaryShared {
            wal_dir: wal_dir.as_ref().to_path_buf(),
            sample,
            ins: Instruments::resolve(metrics),
            opts,
            stop: AtomicBool::new(false),
        });
        let shippers = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let accept = {
            let shared = shared.clone();
            let shippers = shippers.clone();
            std::thread::spawn(move || {
                while let Ok((conn, _peer)) = listener.accept() {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let shared = shared.clone();
                    let handle = std::thread::spawn(move || {
                        if let Ok((tx, rx)) = conn.split() {
                            ship(&shared, tx, rx);
                        }
                    });
                    shippers.lock().push(handle);
                }
            })
        };
        Ok(Primary { addr: local, shared, accept: Some(accept), shippers })
    }

    /// The listener's bound address (for followers to dial).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, close every shipper, and join the threads.
    /// Idempotent.
    pub fn stop(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = conn::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.shippers.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Primary {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Receive the follower's `Hello` (bounded wait), check version and
/// token, answer `Welcome` with the tailer already positioned at its
/// resume ticket. `None` = refuse/close.
fn handshake(
    shared: &PrimaryShared,
    tx: &mut SendHalf,
    rx: &mut RecvHalf,
) -> Option<(WalTailer, u64)> {
    rx.set_read_timeout(Some(Duration::from_millis(200))).ok()?;
    let hello = loop {
        match rx.recv::<ReplMsg>() {
            Ok(Some((_, msg, _))) => break msg,
            Ok(None) => return None,
            Err(e) if e.is_timeout() => {
                if shared.stop.load(Ordering::SeqCst) {
                    return None;
                }
            }
            Err(_) => return None,
        }
    };
    let ReplMsg::Hello { version, token, last_ticket } = hello else {
        refuse(shared, tx, "expected ReplHello");
        return None;
    };
    if version != REPL_PROTOCOL_VERSION {
        refuse(shared, tx, &format!("unsupported replication protocol version {version}"));
        return None;
    }
    if let Some(expected) = &shared.opts.token {
        if &token != expected {
            refuse(shared, tx, "bad token");
            return None;
        }
    }
    let tailer = match WalTailer::new(
        &shared.wal_dir,
        last_ticket,
        TailOptions { gap_patience: shared.opts.gap_patience },
    ) {
        Ok(t) => t,
        Err(e) => {
            refuse(shared, tx, &format!("cannot tail log: {e}"));
            return None;
        }
    };
    let welcome = ReplMsg::Welcome { version: REPL_PROTOCOL_VERSION, frontier: tailer.frontier() };
    tx.send(0, &welcome).ok()?;
    Some((tailer, last_ticket))
}

fn refuse(shared: &PrimaryShared, tx: &mut SendHalf, detail: &str) {
    shared.ins.faults.inc();
    let _ = tx.send(0, &ReplMsg::Fault { detail: detail.to_string() });
}

/// One follower's stream, to disconnection or shutdown.
fn ship(shared: &PrimaryShared, mut tx: SendHalf, mut rx: RecvHalf) {
    let Some((mut tailer, resume)) = handshake(shared, &mut tx, &mut rx) else {
        return;
    };
    shared.ins.followers.adjust(1);
    let mut seq = 0u64;
    let mut shipped = resume;
    let mut last_positions = (u64::MAX, u64::MAX);
    // Frames held over from the previous poll that didn't fit the batch.
    let mut backlog: std::collections::VecDeque<(u64, Vec<u8>)> = Default::default();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if backlog.is_empty() {
            match tailer.poll() {
                Ok(frames) => backlog.extend(frames),
                Err(e) => {
                    refuse(shared, &mut tx, &format!("tail failed: {e}"));
                    break;
                }
            }
        }
        let positions = (shared.sample)();
        if backlog.is_empty() {
            if positions != last_positions {
                // Heartbeat: new positions, no frames.
                let beat =
                    ReplMsg::Batch { watermark: positions.0, ticket: positions.1, frames: vec![] };
                seq += 1;
                if tx.send(seq, &beat).is_err() || !await_ack(shared, &mut rx) {
                    break;
                }
                shared.ins.heartbeats.inc();
                last_positions = positions;
            } else {
                std::thread::park_timeout(shared.opts.poll_interval);
            }
            continue;
        }
        // Assemble one batch from the backlog, respecting the byte cap.
        let mut frames = Vec::new();
        let mut count = 0u64;
        while let Some((ticket, bytes)) = backlog.front() {
            if bytes.len() > MAX_WIRE_PAYLOAD as usize - 64 {
                // A single WAL frame beyond the wire bound cannot ship
                // (known limitation — see docs/REPLICATION.md).
                refuse(
                    shared,
                    &mut tx,
                    &format!(
                        "frame {ticket} is {} bytes, beyond the wire payload bound",
                        bytes.len()
                    ),
                );
                shared.ins.followers.adjust(-1);
                return;
            }
            if !frames.is_empty() && frames.len() + bytes.len() > shared.opts.batch_max_bytes {
                break;
            }
            let (ticket, bytes) = backlog.pop_front().expect("front checked");
            shipped = ticket;
            frames.extend_from_slice(&bytes);
            count += 1;
        }
        let batch_bytes = frames.len() as u64;
        let batch = ReplMsg::Batch { watermark: positions.0, ticket: positions.1, frames };
        seq += 1;
        if tx.send(seq, &batch).is_err() || !await_ack(shared, &mut rx) {
            break;
        }
        last_positions = positions;
        shared.ins.batches.inc();
        shared.ins.frames.add(count);
        shared.ins.bytes.add(batch_bytes);
        shared.ins.shipped.set(shipped as i64);
    }
    shared.ins.followers.adjust(-1);
}

/// Block (with stop checks) for the follower's `Ack`; false = stream over.
fn await_ack(shared: &PrimaryShared, rx: &mut RecvHalf) -> bool {
    loop {
        match rx.recv::<ReplMsg>() {
            Ok(Some((_, ReplMsg::Ack { ticket }, _))) => {
                shared.ins.acked.set(ticket as i64);
                return true;
            }
            Ok(Some(_)) => return false,
            Ok(None) => return false,
            Err(e) if e.is_timeout() => {
                if shared.stop.load(Ordering::SeqCst) {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
}
