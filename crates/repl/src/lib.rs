//! # hcc-repl — log-shipping replication
//!
//! Replication here is *log shipping with no second apply path*: the
//! primary tails its own striped WAL ([`hcc_storage::WalTailer`]),
//! merges frames into global **ticket order**, and streams the raw
//! `len|crc|seq|payload` envelopes over the network protocol
//! ([`hcc_wire::repl`]). The follower appends the verified frames into
//! its own striped replica log ([`hcc_storage::ReplicaLog`]) — on disk,
//! byte-compatible with a primary WAL — and applies committed
//! transactions through the **recovery replay path**
//! ([`hcc_txn::TxnManager::apply_replicated`], i.e. the same
//! `replay_object_ops` that crash recovery uses). Pinned-response replay
//! is what makes applying in ticket order sound: conflicting
//! transactions can never invert ticket order against timestamp order
//! (the hybrid lock dependency forces the dependent op's ticket above
//! the dependency's commit ticket), and commuting operations — the one
//! case where the orders may disagree — replay to the same state in
//! either order with their original responses pinned.
//!
//! ## The watermark pair
//!
//! A lagging follower serves **consistent-prefix** snapshot reads with
//! zero locks. The primary samples `(stable_watermark, last_issued
//! ticket)` *in that order* and ships the pair in every batch: a commit
//! with timestamp ≤ the watermark has already retired, so its commit
//! record was ticketed at or below the later-read ticket. Once the
//! follower has applied every ticket up to the sample's ticket, exposing
//! the sample's watermark to readers can never show a later transaction
//! without an earlier one. [`Follower`] feeds applicable samples into
//! [`hcc_txn::TxnManager::witness_replicated_watermark`]; reads on the
//! follower's [`hcc_db::Db`] then go through the ordinary wait-free
//! snapshot read path at that mark.
//!
//! ## Promotion
//!
//! [`Follower::promote`] turns the replica directory into a primary:
//! stop the stream, walk the commit chain (`Commit.prev` links every
//! commit to the previous commit ticket store-wide), truncate the log
//! above the last chain-linkable commit, and reopen the directory with
//! ordinary recovery — which re-anchors the transaction-id space and the
//! logical clock above everything durable. Every fsync-acked commit the
//! follower had durably acked survives.
//!
//! Metrics land in the `repl.*` family (primary side in the primary
//! `Db`'s registry, follower side in the follower's); `obscheck`
//! enforces `repl.follower.lag ≥ 0`, acked ≤ shipped, and a converged
//! follower ending at lag 0. See `docs/REPLICATION.md` for the stream
//! format, lag semantics, and what each durability mode promises about
//! acked-but-unshipped commits.

#![warn(missing_docs)]

mod follower;
mod primary;

pub use follower::{Follower, FollowerOptions, ObjectResolver};
pub use primary::{PositionSampler, Primary, PrimaryOptions};

/// Anything that can go wrong starting or running a replication role.
#[derive(Debug)]
pub enum ReplError {
    /// A socket or file-system failure.
    Io(std::io::Error),
    /// The storage layer refused (corrupt replica log, failed append).
    Storage(hcc_storage::StorageError),
    /// The peer refused the stream (version or token mismatch, or a
    /// protocol violation it reported before closing).
    Refused(String),
    /// Applying a replicated transaction failed (unknown object name,
    /// replay divergence) — the replica cannot continue.
    Apply(String),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Io(e) => write!(f, "replication I/O error: {e}"),
            ReplError::Storage(e) => write!(f, "replication storage error: {e}"),
            ReplError::Refused(detail) => write!(f, "replication stream refused: {detail}"),
            ReplError::Apply(detail) => write!(f, "replicated apply failed: {detail}"),
        }
    }
}

impl std::error::Error for ReplError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplError::Io(e) => Some(e),
            ReplError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReplError {
    fn from(e: std::io::Error) -> ReplError {
        ReplError::Io(e)
    }
}

impl From<hcc_storage::StorageError> for ReplError {
    fn from(e: hcc_storage::StorageError) -> ReplError {
        ReplError::Storage(e)
    }
}
