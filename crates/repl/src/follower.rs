//! The follower: a read replica built by replaying the shipped log, and
//! the promotion path that turns its directory into a primary.
//!
//! A [`Follower`] owns three things:
//!
//! * a [`ReplicaLog`] — the shipped frames, durable on its own disk
//!   under its own durability level (what its `ReplAck`s attest);
//! * an in-memory [`Db`] — the *materialized* replica, built by feeding
//!   every record through the recovery replay path
//!   ([`TxnManager::apply_replicated`]) as it arrives. Restart rebuilds
//!   it from the replica log with the **same** function — there is no
//!   separate bootstrap code;
//! * the stream thread — dials the primary, appends + applies batches,
//!   acks its durable position, and reconnects with `Hello{last_ticket}`
//!   after any disconnect, so a mid-batch kill resumes exactly at the
//!   last durable frame (re-deliveries are skipped idempotently).
//!
//! Reads go through the follower `Db`'s ordinary wait-free snapshot
//! path: [`TxnManager::witness_replicated_watermark`] raises the stable
//! watermark only when a shipped `(watermark, ticket)` sample has been
//! fully applied, so a lagging replica always serves a consistent
//! prefix of the primary's commit order — never a later transaction
//! without an earlier one, and never a partially applied one.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hcc_db::{Db, DbBuilder};
use hcc_obs::{Counter, Gauge};
use hcc_storage::wal::read_records;
use hcc_storage::{Durability, DurableObject, LogRecord, ReplicaLog, ReplicaOptions};
use hcc_wire::conn;
use hcc_wire::repl::{ReplMsg, REPL_PROTOCOL_VERSION};

use crate::ReplError;

/// Maps a durable object *name* from the shipped log to a live handle on
/// the follower's `Db` — the same role the typed registry plays during
/// recovery. Deployments know their schema: the resolver typically
/// matches on a name prefix and calls `db.object::<T>(name)`.
pub type ObjectResolver =
    Arc<dyn Fn(&Db, &str) -> Result<Arc<dyn DurableObject>, String> + Send + Sync>;

/// Tunables for a [`Follower`].
#[derive(Clone, Debug)]
pub struct FollowerOptions {
    /// Token presented in `ReplHello`.
    pub token: String,
    /// Replica log stripe count (fresh directories only).
    pub stripes: usize,
    /// Replica log segment rotation threshold.
    pub segment_max_bytes: u64,
    /// Replica log flush mode: `Fsync` makes every `ReplAck` a promise
    /// that survives power loss, anything else a promise that survives a
    /// process crash.
    pub durability: Durability,
    /// Pause between reconnect attempts.
    pub reconnect_backoff: Duration,
}

impl Default for FollowerOptions {
    fn default() -> FollowerOptions {
        FollowerOptions {
            token: String::new(),
            stripes: 1,
            segment_max_bytes: 4 * 1024 * 1024,
            durability: Durability::default(),
            reconnect_backoff: Duration::from_millis(50),
        }
    }
}

struct Instruments {
    batches: Arc<Counter>,
    applied_frames: Arc<Counter>,
    reconnects: Arc<Counter>,
    apply_faults: Arc<Counter>,
    promotions: Arc<Counter>,
    applied: Arc<Gauge>,
    durable: Arc<Gauge>,
    lag: Arc<Gauge>,
    watermark: Arc<Gauge>,
}

impl Instruments {
    fn resolve(metrics: &hcc_obs::Registry) -> Instruments {
        Instruments {
            batches: metrics.counter("repl.follower.batches"),
            applied_frames: metrics.counter("repl.follower.applied.frames"),
            reconnects: metrics.counter("repl.follower.reconnects"),
            apply_faults: metrics.counter("repl.follower.apply.faults"),
            promotions: metrics.counter("repl.follower.promotions"),
            applied: metrics.gauge("repl.follower.applied.ticket"),
            durable: metrics.gauge("repl.follower.durable.ticket"),
            lag: metrics.gauge("repl.follower.lag"),
            watermark: metrics.gauge("repl.follower.watermark"),
        }
    }
}

/// Replay state: everything the apply path needs under one lock, so the
/// stream thread and `promote` never see each other's partial work.
struct Core {
    log: ReplicaLog,
    /// In-progress transactions: ops in arrival (= ticket = execution)
    /// order, keyed by transaction id.
    pending: HashMap<u64, Vec<(u64, Vec<u8>)>>,
    /// Registry id → object name bindings seen so far.
    names: HashMap<u64, String>,
    /// Last ticket fed through the apply path.
    applied: u64,
    /// Ticket of the last applied commit record (chain check).
    last_commit: u64,
    /// Latest `(watermark, ticket)` sample from the primary, applied or
    /// not yet.
    sample: Option<(u64, u64)>,
}

struct Inner {
    db: Arc<Db>,
    dir: PathBuf,
    resolver: ObjectResolver,
    core: parking_lot::Mutex<Core>,
    ins: Instruments,
    opts: FollowerOptions,
    stop: AtomicBool,
    /// Set when the apply path hit a non-recoverable fault (the stream
    /// thread has exited; reads still serve the last good watermark).
    poisoned: AtomicBool,
}

/// A live read replica. See the module docs.
pub struct Follower {
    inner: Arc<Inner>,
    stream: Option<JoinHandle<()>>,
}

impl Follower {
    /// Open (or reopen) the replica log at `dir`, rebuild the in-memory
    /// replica from it, and start streaming from the primary at `addr`.
    pub fn start(
        dir: impl AsRef<Path>,
        addr: &str,
        resolver: ObjectResolver,
        opts: FollowerOptions,
    ) -> Result<Follower, ReplError> {
        let dir = dir.as_ref().to_path_buf();
        let log = ReplicaLog::open(
            &dir,
            ReplicaOptions {
                stripes: opts.stripes,
                segment_max_bytes: opts.segment_max_bytes,
                durability: opts.durability,
            },
        )?;
        let db = Arc::new(Db::in_memory());
        let ins = Instruments::resolve(db.metrics());
        let mut core = Core {
            log,
            pending: HashMap::new(),
            names: HashMap::new(),
            applied: 0,
            last_commit: 0,
            sample: None,
        };
        // Restart catch-up: everything already durable replays through
        // the same apply path the live stream uses. The watermark stays
        // 0 until the first applicable sample arrives — locally there is
        // no way to know which of these commits the primary had fully
        // applied.
        let (records, _torn) = read_records(&dir)?;
        for (seq, rec) in records {
            apply_record(&db, &resolver, &mut core, seq, rec).map_err(ReplError::Apply)?;
        }
        ins.applied.set(core.applied as i64);
        ins.durable.set(core.log.last_ticket() as i64);
        let inner = Arc::new(Inner {
            db,
            dir,
            resolver,
            core: parking_lot::Mutex::new(core),
            ins,
            opts,
            stop: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        });
        let stream = {
            let inner = inner.clone();
            let addr = addr.to_string();
            std::thread::spawn(move || stream_loop(&inner, &addr))
        };
        Ok(Follower { inner, stream: Some(stream) })
    }

    /// The follower's database — serve reads from it (in process or via
    /// `hcc-server`); every snapshot is a consistent prefix at
    /// [`Follower::watermark`].
    pub fn db(&self) -> &Arc<Db> {
        &self.inner.db
    }

    /// The replica directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// The readable watermark the primary proved safe (0 until the first
    /// applicable sample after a start/restart).
    pub fn watermark(&self) -> u64 {
        self.inner.db.stable_watermark()
    }

    /// Tickets between the primary's last known position and this
    /// replica's applied position — 0 means converged as of the latest
    /// sample.
    pub fn lag(&self) -> u64 {
        let core = self.inner.core.lock();
        match core.sample {
            Some((_, ticket)) => ticket.saturating_sub(core.applied),
            None => 0,
        }
    }

    /// The last ticket durable in the replica log.
    pub fn durable_ticket(&self) -> u64 {
        self.inner.core.lock().log.last_ticket()
    }

    /// Did the apply path hit a non-recoverable fault? (The stream has
    /// stopped; the replica still serves its last good prefix.)
    pub fn poisoned(&self) -> bool {
        self.inner.poisoned.load(Ordering::SeqCst)
    }

    /// Stop streaming (idempotent; also called by drop and promote).
    pub fn stop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.stream.take() {
            let _ = h.join();
        }
    }

    /// Promote this replica to a primary: stop the stream, truncate the
    /// replica log after the last chain-linkable commit, and reopen the
    /// directory with `builder` — ordinary crash recovery, which
    /// re-anchors tickets, transaction ids, and the logical clock above
    /// everything that survived. Returns the promoted, writable `Db`.
    ///
    /// Every commit that was durable *and* dependency-closed in the
    /// replica log survives; a commit whose chain predecessor never
    /// arrived is cut with everything after it (it could depend on state
    /// this replica never saw).
    pub fn promote_with(mut self, builder: DbBuilder) -> Result<Db, ReplError> {
        self.stop();
        let mut core = self.inner.core.lock();
        let (records, _torn) = read_records(&self.inner.dir)?;
        let mut cut = 0u64;
        let mut prev_commit = 0u64;
        for (seq, rec) in &records {
            if let LogRecord::Commit { prev, .. } = rec {
                if *prev != prev_commit {
                    break;
                }
                cut = *seq;
                prev_commit = *seq;
            }
        }
        core.log.truncate_above(cut)?;
        self.inner.ins.promotions.inc();
        drop(core);
        let dir = self.inner.dir.clone();
        drop(self); // close replica log handles before the store reopens
        builder.open(dir).map_err(|e| ReplError::Refused(format!("promotion open failed: {e}")))
    }

    /// [`Follower::promote_with`] using default builder settings plus
    /// `HCC_DURABILITY` / `HCC_WAL_STRIPES` overrides — how the crash
    /// harness promotes under its matrix.
    pub fn promote(self) -> Result<Db, ReplError> {
        self.promote_with(Db::builder().env_overrides())
    }
}

impl Drop for Follower {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Apply one shipped record to the in-memory replica. Commits go through
/// the recovery replay path; everything else is bookkeeping.
fn apply_record(
    db: &Db,
    resolver: &ObjectResolver,
    core: &mut Core,
    seq: u64,
    rec: LogRecord,
) -> Result<(), String> {
    match rec {
        LogRecord::Register { id, name } => {
            core.names.insert(id, name);
        }
        LogRecord::Begin { txn } => {
            core.pending.entry(txn).or_default();
        }
        LogRecord::Op { txn, obj, op } => {
            core.pending.entry(txn).or_default().push((obj, op));
        }
        LogRecord::Abort { txn } => {
            core.pending.remove(&txn);
        }
        LogRecord::Commit { txn, ts, ops, prev } => {
            if prev != core.last_commit {
                return Err(format!(
                    "commit {txn} links to predecessor ticket {prev}, but the last applied \
                     commit here is {} — the stream skipped a commit",
                    core.last_commit
                ));
            }
            let logged = core.pending.remove(&txn).unwrap_or_default();
            if logged.len() != ops as usize {
                return Err(format!(
                    "commit {txn} expects {ops} ops, {} arrived — the stream skipped an op",
                    logged.len()
                ));
            }
            // Group ops per object, preserving arrival (= execution)
            // order within each object.
            let mut groups: Vec<(u64, Vec<Vec<u8>>)> = Vec::new();
            for (obj, op) in logged {
                match groups.iter_mut().find(|(id, _)| *id == obj) {
                    Some((_, ops)) => ops.push(op),
                    None => groups.push((obj, vec![op])),
                }
            }
            let mut resolved: Vec<hcc_txn::ReplicatedOps> = Vec::new();
            for (id, ops) in groups {
                let name = core
                    .names
                    .get(&id)
                    .ok_or_else(|| format!("op of txn {txn} references unregistered id {id}"))?;
                let obj = resolver(db, name)?;
                resolved.push((obj, ops));
            }
            db.manager()
                .apply_replicated(txn, ts, &resolved)
                .map_err(|e| format!("replay of txn {txn} failed: {e}"))?;
            core.last_commit = seq;
        }
    }
    core.applied = core.applied.max(seq);
    Ok(())
}

/// Dial → handshake → stream, reconnecting until stopped or poisoned.
fn stream_loop(inner: &Arc<Inner>, addr: &str) {
    let mut first_attempt = true;
    while !inner.stop.load(Ordering::SeqCst) {
        if !first_attempt {
            inner.ins.reconnects.inc();
            std::thread::park_timeout(inner.opts.reconnect_backoff);
        }
        first_attempt = false;
        match stream_once(inner, addr) {
            Ok(()) => {}
            Err(ReplError::Apply(detail)) => {
                // Re-dialing cannot help: the fault is in what is already
                // durable here. Stop and leave the replica readable.
                inner.ins.apply_faults.inc();
                inner.poisoned.store(true, Ordering::SeqCst);
                let _ = detail;
                return;
            }
            Err(_) => {}
        }
    }
}

/// One connection's lifetime. `Ok` = clean disconnect (reconnect),
/// `Err(Apply)` = poison, other errors = reconnect.
fn stream_once(inner: &Arc<Inner>, addr: &str) -> Result<(), ReplError> {
    let conn = conn::connect(addr)?;
    let (mut tx, mut rx) = conn.split()?;
    let hello = ReplMsg::Hello {
        version: REPL_PROTOCOL_VERSION,
        token: inner.opts.token.clone(),
        last_ticket: inner.core.lock().log.last_ticket(),
    };
    tx.send(0, &hello)?;
    rx.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut seq = 0u64;
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let msg = match rx.recv::<ReplMsg>() {
            Ok(Some((_, msg, _))) => msg,
            Ok(None) => return Ok(()),
            Err(e) if e.is_timeout() => continue,
            Err(e) => return Err(ReplError::Refused(format!("stream broke: {e}"))),
        };
        match msg {
            ReplMsg::Welcome { .. } => {}
            ReplMsg::Fault { detail } => return Err(ReplError::Refused(detail)),
            ReplMsg::Batch { watermark, ticket, frames } => {
                let durable = {
                    let mut core = inner.core.lock();
                    // Durable first, then applied: an ack never promises
                    // more than the disk holds.
                    let durable = core.log.append_frames(&frames)?;
                    let mut at = 0usize;
                    while at < frames.len() {
                        let (fseq, rec, end) = hcc_storage::record::decode_at(&frames, at)
                            .map_err(|e| ReplError::Apply(format!("undecodable frame: {e:?}")))?;
                        if fseq > core.applied {
                            apply_record(&inner.db, &inner.resolver, &mut core, fseq, rec)
                                .map_err(ReplError::Apply)?;
                        }
                        at = end;
                    }
                    core.sample = Some((watermark, ticket));
                    if core.applied >= ticket {
                        inner.db.manager().witness_replicated_watermark(watermark);
                        inner.ins.watermark.set(watermark as i64);
                    }
                    inner.ins.applied.set(core.applied as i64);
                    inner.ins.durable.set(durable as i64);
                    inner.ins.lag.set(ticket.saturating_sub(core.applied) as i64);
                    durable
                };
                inner.ins.batches.inc();
                inner.ins.applied_frames.add(count_frames(&frames));
                seq += 1;
                tx.send(seq, &ReplMsg::Ack { ticket: durable })?;
            }
            ReplMsg::Hello { .. } | ReplMsg::Ack { .. } => {
                return Err(ReplError::Refused("peer sent a follower-side message".into()));
            }
        }
    }
}

fn count_frames(frames: &[u8]) -> u64 {
    let mut n = 0u64;
    let mut at = 0usize;
    while at < frames.len() {
        match hcc_storage::record::decode_meta_at(frames, at) {
            Ok((_, next)) => {
                n += 1;
                at = next;
            }
            Err(_) => break,
        }
    }
    n
}
