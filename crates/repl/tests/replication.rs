//! End-to-end replication pair tests: convergence with a byte-identical
//! log prefix, crash/torn-tail resume, and promotion.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hcc_adts::counter::CounterObject;
use hcc_db::Db;
use hcc_repl::{Follower, FollowerOptions, ObjectResolver, Primary, PrimaryOptions};
use hcc_storage::record;
use hcc_storage::wal::read_records;
use hcc_storage::DurableObject;

fn tmp(name: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "hcc-repl-{}-{}-{}",
        std::process::id(),
        name,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn resolver() -> ObjectResolver {
    Arc::new(|db: &Db, name: &str| {
        let obj = db.object::<CounterObject>(name).map_err(|e| e.to_string())?;
        Ok(obj as Arc<dyn DurableObject>)
    })
}

fn sampler(db: &Db) -> hcc_repl::PositionSampler {
    let mgr = db.manager().clone();
    let store = db.storage().expect("durable db").clone();
    Arc::new(move || {
        // Watermark FIRST, ticket second — the order the soundness
        // argument in hcc_wire::repl depends on.
        let wm = mgr.stable_watermark();
        let tk = store.last_issued_ticket();
        (wm, tk)
    })
}

fn fast_primary_opts() -> PrimaryOptions {
    PrimaryOptions { poll_interval: Duration::from_millis(1), ..PrimaryOptions::default() }
}

fn follower_opts(stripes: usize) -> FollowerOptions {
    FollowerOptions {
        stripes,
        segment_max_bytes: 4096,
        reconnect_backoff: Duration::from_millis(10),
        ..FollowerOptions::default()
    }
}

/// Wait until the follower's durable log holds everything the primary
/// issued and its lag (per the latest sample) is 0.
fn await_convergence(db: &Db, follower: &Follower) {
    let target = || db.storage().unwrap().last_issued_ticket();
    let deadline = Instant::now() + Duration::from_secs(20);
    while follower.durable_ticket() < target() || follower.lag() != 0 {
        assert!(!follower.poisoned(), "follower poisoned while converging");
        assert!(
            Instant::now() < deadline,
            "no convergence: durable {} lag {} target {}",
            follower.durable_ticket(),
            follower.lag(),
            target()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The ticket-sorted records of `dir` up to `ticket`, re-framed — the
/// canonical byte form of the log prefix, independent of stripe layout.
fn log_prefix_bytes(dir: &std::path::Path, ticket: u64) -> Vec<u8> {
    let (records, _) = read_records(dir).unwrap();
    let mut out = Vec::new();
    for (seq, rec) in &records {
        if *seq <= ticket {
            out.extend_from_slice(&record::encode(rec, *seq));
        }
    }
    out
}

fn run_counter_load(db: &Db, txns: u64) {
    let c1 = db.object::<CounterObject>("c1").unwrap();
    let c2 = db.object::<CounterObject>("c2").unwrap();
    for i in 0..txns {
        db.transact(|tx| {
            c1.inc(tx, 1)?;
            if i % 3 == 0 {
                c2.inc(tx, 2)?;
            }
            Ok(())
        })
        .unwrap();
    }
}

#[test]
fn follower_converges_with_byte_identical_log_prefix() {
    let pdir = tmp("conv-primary");
    let rdir = tmp("conv-replica");
    let db = Db::builder().segment_max_bytes(4096).open(&pdir).unwrap();
    let mut primary = Primary::start(
        "127.0.0.1:0",
        db.storage().unwrap().dir(),
        sampler(&db),
        db.metrics(),
        fast_primary_opts(),
    )
    .unwrap();
    let follower =
        Follower::start(&rdir, &primary.local_addr().to_string(), resolver(), follower_opts(2))
            .unwrap();

    run_counter_load(&db, 40);
    db.storage().unwrap().sync().unwrap();
    await_convergence(&db, &follower);

    // The replica's log is byte-identical to the primary's prefix.
    let cut = follower.durable_ticket();
    assert_eq!(log_prefix_bytes(&pdir, cut), log_prefix_bytes(&rdir, cut));

    // The replicated watermark converges to the primary's (heartbeats
    // push positions even with no new commits), and snapshot reads on
    // the follower see the full committed state.
    let deadline = Instant::now() + Duration::from_secs(10);
    let target = db.manager().stable_watermark();
    while follower.watermark() < target {
        assert!(Instant::now() < deadline, "watermark stuck at {}", follower.watermark());
        std::thread::sleep(Duration::from_millis(5));
    }
    let fc1 = follower.db().object::<CounterObject>("c1").unwrap();
    let fc2 = follower.db().object::<CounterObject>("c2").unwrap();
    assert_eq!(fc1.value_at(follower.watermark()).unwrap(), 40);
    assert_eq!(fc2.value_at(follower.watermark()).unwrap(), 28);

    // Shipped/acked accounting: acked never exceeds shipped.
    let stats = db.stats();
    let shipped = stats.gauge("repl.shipped.ticket");
    let acked = stats.gauge("repl.acked.ticket");
    assert!(acked <= shipped, "acked {acked} > shipped {shipped}");

    drop(follower);
    primary.stop();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn torn_tail_and_disconnect_resume_byte_identically() {
    let pdir = tmp("torn-primary");
    let rdir = tmp("torn-replica");
    let db = Db::builder().segment_max_bytes(4096).open(&pdir).unwrap();
    let mut primary = Primary::start(
        "127.0.0.1:0",
        db.storage().unwrap().dir(),
        sampler(&db),
        db.metrics(),
        fast_primary_opts(),
    )
    .unwrap();
    let addr = primary.local_addr().to_string();

    // Phase 1: converge on some history, then kill the follower
    // (stop + hand-tear its replica log tail, simulating a SIGKILL
    // mid-`ReplBatch` append).
    let follower = Follower::start(&rdir, &addr, resolver(), follower_opts(2)).unwrap();
    run_counter_load(&db, 20);
    db.storage().unwrap().sync().unwrap();
    await_convergence(&db, &follower);
    drop(follower);

    let sdir = hcc_storage::wal::stripe_dirs(&rdir)
        .unwrap()
        .into_iter()
        .map(|(_, d)| d)
        .find(|d| hcc_storage::wal::list_segments(d).map(|s| !s.is_empty()).unwrap_or(false))
        .expect("a non-empty stripe");
    let (_, seg) = hcc_storage::wal::list_segments(&sdir).unwrap().pop().unwrap();
    let len = std::fs::metadata(&seg).unwrap().len();
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new().append(true).open(&seg).unwrap();
    f.write_all(&record::encode(&hcc_storage::LogRecord::Begin { txn: 424242 }, 999_999)[..7])
        .unwrap();
    drop(f);
    assert!(std::fs::metadata(&seg).unwrap().len() > len, "tear appended");

    // More history lands while the follower is down.
    run_counter_load(&db, 15);
    db.storage().unwrap().sync().unwrap();

    // Phase 2: restart on the same directory. Open repairs the torn
    // tail, `Hello{last_ticket}` re-requests from the durable position,
    // and the stream converges byte-identically.
    let follower = Follower::start(&rdir, &addr, resolver(), follower_opts(2)).unwrap();
    await_convergence(&db, &follower);
    let cut = follower.durable_ticket();
    assert_eq!(log_prefix_bytes(&pdir, cut), log_prefix_bytes(&rdir, cut));
    let deadline = Instant::now() + Duration::from_secs(10);
    while follower.watermark() < db.manager().stable_watermark() {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(5));
    }
    let fc1 = follower.db().object::<CounterObject>("c1").unwrap();
    assert_eq!(fc1.value_at(follower.watermark()).unwrap(), 35);

    drop(follower);
    primary.stop();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn promotion_preserves_replicated_commits_and_accepts_writes() {
    let pdir = tmp("promote-primary");
    let rdir = tmp("promote-replica");
    let db = Db::builder().segment_max_bytes(4096).open(&pdir).unwrap();
    let mut primary = Primary::start(
        "127.0.0.1:0",
        db.storage().unwrap().dir(),
        sampler(&db),
        db.metrics(),
        fast_primary_opts(),
    )
    .unwrap();
    let follower =
        Follower::start(&rdir, &primary.local_addr().to_string(), resolver(), follower_opts(4))
            .unwrap();
    run_counter_load(&db, 30);
    db.storage().unwrap().sync().unwrap();
    await_convergence(&db, &follower);

    // Primary "fails".
    primary.stop();
    drop(db);

    // Promote: ordinary recovery over the replica directory.
    let promoted = follower.promote_with(Db::builder().segment_max_bytes(4096)).unwrap();
    let c1 = promoted.object::<CounterObject>("c1").unwrap();
    let c2 = promoted.object::<CounterObject>("c2").unwrap();
    assert_eq!(c1.committed_value(), 30, "every replicated commit survived promotion");
    assert_eq!(c2.committed_value(), 20);

    // The promoted node is writable, above the replicated history.
    promoted
        .transact(|tx| {
            c1.inc(tx, 5)?;
            Ok(())
        })
        .unwrap();
    assert_eq!(c1.committed_value(), 35);

    // And its log recovers again: the promotion cut left a clean prefix.
    drop(promoted);
    let reopened = Db::builder().segment_max_bytes(4096).open(&rdir).unwrap();
    let c1 = reopened.object::<CounterObject>("c1").unwrap();
    assert_eq!(c1.committed_value(), 35);
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}
