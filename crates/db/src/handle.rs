//! [`DbObject`]: the typed-handle trait behind [`crate::Db::object`].
//!
//! Every ADT wrapper in `hcc-adts` implements it, so
//! `db.object::<AccountObject>("checking")` constructs the object under
//! the database's runtime options (deadlock observer, durability, redo
//! sink), registers it for checkpointing and recovery, and materializes
//! any state the log already holds under that name — all in one call.
//! Forgetting to register is unrepresentable; custom durable types join
//! by implementing this one method.

use hcc_adts::account::{AccountHybrid, AccountObject};
use hcc_adts::counter::{CounterHybrid, CounterObject};
use hcc_adts::define::SpecObject;
use hcc_adts::directory::{DirectoryHybrid, DirectoryObject, Key, Val};
use hcc_adts::fifo_queue::{Item, QueueObject, QueueTableII};
use hcc_adts::file::{Content, FileHybrid, FileObject};
use hcc_adts::semiqueue::{self, SemiqueueHybrid, SemiqueueObject};
use hcc_adts::set::{Elem, SetHybrid, SetObject};
use hcc_core::runtime::{AdtDef, RuntimeOptions};
use hcc_storage::DurableObject;
use std::sync::Arc;

/// A durable type [`crate::Db`] can hand out as a typed handle.
///
/// `fresh` constructs an *empty* instance under `name` with the
/// database's runtime options — under the type's canonical hybrid
/// (paper-table) conflict relation. The `Db` then restores/replays the
/// log's state into it and registers it; callers never see the blank
/// instance when the name has durable history.
///
/// To use a non-default conflict relation (a baseline scheme, a custom
/// lock table), build the object yourself with
/// [`crate::Db::object_options`] and hand it to [`crate::Db::attach`].
pub trait DbObject: DurableObject + Sized + 'static {
    /// A fresh, empty instance named `name`, built with `opts`.
    fn fresh(name: &str, opts: RuntimeOptions) -> Arc<Self>;
}

/// Every declaratively defined type is a `Db` citizen with no further
/// impls: `db.object::<SpecObject<MyDef>>(name)` constructs the object
/// under the definition's canonical conflict source ([`AdtDef::
/// conflict_spec`] — derived from the serial specification or stated as
/// a table), registers it, and materializes its durable history, exactly
/// like the built-in wrappers.
impl<D: AdtDef> DbObject for SpecObject<D> {
    fn fresh(name: &str, opts: RuntimeOptions) -> Arc<Self> {
        Arc::new(SpecObject::with_options(name, opts))
    }
}

impl DbObject for AccountObject {
    fn fresh(name: &str, opts: RuntimeOptions) -> Arc<Self> {
        Arc::new(AccountObject::with(name, Arc::new(AccountHybrid), opts))
    }
}

impl DbObject for CounterObject {
    fn fresh(name: &str, opts: RuntimeOptions) -> Arc<Self> {
        Arc::new(CounterObject::with(name, Arc::new(CounterHybrid), opts))
    }
}

impl<T: Item + 'static> DbObject for QueueObject<T> {
    fn fresh(name: &str, opts: RuntimeOptions) -> Arc<Self> {
        Arc::new(QueueObject::with(name, Arc::new(QueueTableII), opts))
    }
}

impl<T: semiqueue::Item + 'static> DbObject for SemiqueueObject<T> {
    fn fresh(name: &str, opts: RuntimeOptions) -> Arc<Self> {
        Arc::new(SemiqueueObject::with(name, Arc::new(SemiqueueHybrid), opts))
    }
}

impl<T: Content + 'static> DbObject for FileObject<T> {
    fn fresh(name: &str, opts: RuntimeOptions) -> Arc<Self> {
        Arc::new(FileObject::with(name, Arc::new(FileHybrid), opts))
    }
}

impl<T: Elem + 'static> DbObject for SetObject<T> {
    fn fresh(name: &str, opts: RuntimeOptions) -> Arc<Self> {
        Arc::new(SetObject::with(name, Arc::new(SetHybrid), opts))
    }
}

impl<K: Key + 'static, V: Val + 'static> DbObject for DirectoryObject<K, V> {
    fn fresh(name: &str, opts: RuntimeOptions) -> Arc<Self> {
        Arc::new(DirectoryObject::with(name, Arc::new(DirectoryHybrid), opts))
    }
}
