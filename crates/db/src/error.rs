//! The unified error taxonomy: every way a `Db` interaction can fail,
//! classified **transient** (an expected, retriable outcome of the
//! paper's hybrid scheme — deadlock victims, refused prepare votes, lock
//! timeouts) or **fatal** (storage trouble, recovery divergence, misuse).
//!
//! The classification is the contract [`crate::Db::transact`] retries
//! on: a correct retry loop is impossible to write against four
//! unrelated error types, and trivial against one [`HccError`] with
//! [`HccError::is_transient`].

use hcc_core::runtime::{ExecError, ReplayError};
use hcc_storage::{SnapshotError, StorageError};
use hcc_txn::manager::CommitError;
use hcc_txn::registry::RecoveryError;

/// Anything that can go wrong talking to a [`crate::Db`].
///
/// Lower-layer errors convert in with `?` ([`From`] impls for
/// [`ExecError`], [`CommitError`], [`StorageError`], [`RecoveryError`],
/// [`ReplayError`], [`SnapshotError`], and `std::io::Error`), so a
/// `transact` closure can use the ADT methods directly.
#[derive(Debug)]
pub enum HccError {
    /// An operation execution was refused (deadlock doom, lock timeout,
    /// dead transaction handle).
    Exec(ExecError),
    /// A commit was refused; the transaction was aborted at every object.
    Commit(CommitError),
    /// The storage layer failed (I/O, corruption, refused checkpoint).
    Storage(StorageError),
    /// Recovery could not rebuild the durable state.
    Recovery(RecoveryError),
    /// A logged operation failed to replay at its object.
    Replay(ReplayError),
    /// [`crate::Db::object`] was asked for a name that is already open as
    /// a different type — handing out the same state under two types
    /// would fork its history.
    TypeMismatch {
        /// The contested object name.
        object: String,
        /// The type the caller requested.
        requested: &'static str,
    },
    /// [`crate::Db::attach`] was given an object whose name is already
    /// open.
    DuplicateObject {
        /// The already-registered name.
        object: String,
    },
    /// A previous [`crate::Db::attach`] for this name failed mid-
    /// materialization, leaving that caller-held instance partially
    /// recovered; re-applying the pending state through another attach
    /// could double its effects, so further attaches for the name are
    /// refused. Reopen the database (or use [`crate::Db::object`],
    /// which always builds a fresh instance) to retry the recovery.
    PoisonedRecovery {
        /// The name whose recovery is poisoned for `attach`.
        object: String,
    },
    /// The `transact` closure itself asked for the transaction to be
    /// rolled back — an application decision, not an infrastructure
    /// failure. Fatal by classification: the caller chose to abort, so
    /// retrying would be wrong.
    Rollback {
        /// The closure's stated reason.
        reason: String,
    },
    /// A snapshot read asked for a timestamp that compaction has already
    /// folded past: the requested image no longer exists anywhere, at
    /// this or any future attempt. Fatal — pick a newer timestamp.
    SnapshotCompacted {
        /// The watermark the reader asked for.
        requested: u64,
        /// The lowest timestamp still readable (the compaction floor).
        floor: u64,
    },
    /// A snapshot read's timestamp is not readable *right now*: either
    /// it lies above the stable watermark (commits at or below it are
    /// still in flight), or a concurrent fold overtook the watermark
    /// between choosing and pinning it. Transient — re-picking a fresh
    /// watermark (which any racing fold is below) succeeds;
    /// [`crate::Db::transact_read`] does so automatically.
    SnapshotContended {
        /// The timestamp that is not currently readable.
        requested: u64,
    },
    /// A `transact` closure kept failing transiently past the configured
    /// retry budget; `last` is the final attempt's error.
    RetriesExhausted {
        /// Attempts made (initial try included).
        attempts: u32,
        /// The error the final attempt died with.
        last: Box<HccError>,
    },
    /// Admission control shed the request: the session (or the server as
    /// a whole) already had `cap` requests in flight, and bounded-queue
    /// discipline refuses the excess instead of buffering it unboundedly.
    /// Transient — the request was **not** executed; back off and retry.
    Overloaded {
        /// Requests in flight against the cap at refusal time.
        in_flight: u32,
        /// The cap that was hit.
        cap: u32,
    },
    /// The wire protocol was violated: version/handshake refusal, a torn
    /// or corrupt frame, an unexpected or malformed message, or a
    /// connection lost with a request's outcome unknown. Fatal — the
    /// session is closed; blind resubmission could double-apply effects.
    Protocol(
        /// What the peer (or the path to it) did wrong.
        String,
    ),
}

impl HccError {
    /// An application-level rollback request for a `transact` closure:
    /// `return Err(HccError::rollback("insufficient funds"))` aborts the
    /// transaction without retrying.
    pub fn rollback(reason: impl Into<String>) -> HccError {
        HccError::Rollback { reason: reason.into() }
    }

    /// Is this an *expected, transient* outcome of the hybrid scheme —
    /// one a fresh attempt of the same transaction may well survive?
    ///
    /// Transient: a deadlock victim's doom ([`ExecError::Doomed`],
    /// [`CommitError::Doomed`]), a lock-wait timeout
    /// ([`ExecError::Timeout`]), a refused prepare vote
    /// ([`CommitError::PrepareFailed`]), and a request shed by admission
    /// control ([`HccError::Overloaded`] — refused *before* execution).
    /// In every transient case the transaction has already been aborted
    /// at all objects (or never started), so retrying re-applies
    /// nothing.
    ///
    /// Fatal (everything else): storage and recovery failures, replay
    /// divergence, dead handles, facade misuse. Retrying cannot help and
    /// may hide data loss — [`crate::Db::transact`] surfaces these
    /// immediately.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            HccError::Exec(ExecError::Doomed | ExecError::Timeout)
                | HccError::Commit(CommitError::Doomed | CommitError::PrepareFailed { .. })
                | HccError::SnapshotContended { .. }
                | HccError::Overloaded { .. }
        )
    }
}

impl std::fmt::Display for HccError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HccError::Exec(e) => write!(f, "{e}"),
            HccError::Commit(e) => write!(f, "{e}"),
            HccError::Storage(e) => write!(f, "{e}"),
            HccError::Recovery(e) => write!(f, "{e}"),
            HccError::Replay(e) => write!(f, "{e}"),
            HccError::TypeMismatch { object, requested } => {
                write!(f, "object {object:?} is already open as a different type than {requested}")
            }
            HccError::DuplicateObject { object } => {
                write!(f, "an object named {object:?} is already attached to this Db")
            }
            HccError::PoisonedRecovery { object } => {
                write!(
                    f,
                    "recovery of {object:?} previously failed into an attached instance; \
                     reopen the database to retry"
                )
            }
            HccError::SnapshotCompacted { requested, floor } => {
                write!(
                    f,
                    "snapshot at timestamp {requested} is no longer readable: compaction \
                     has folded history up to {floor}"
                )
            }
            HccError::SnapshotContended { requested } => {
                write!(
                    f,
                    "snapshot at timestamp {requested} is not readable right now \
                     (in-flight commits or a concurrent fold); retry at a fresh watermark"
                )
            }
            HccError::Rollback { reason } => {
                write!(f, "transaction rolled back by the application: {reason}")
            }
            HccError::RetriesExhausted { attempts, last } => {
                write!(f, "transaction still failing transiently after {attempts} attempts: {last}")
            }
            HccError::Overloaded { in_flight, cap } => {
                write!(
                    f,
                    "request shed by admission control: {in_flight} requests in flight at \
                     cap {cap}; back off and retry"
                )
            }
            HccError::Protocol(what) => {
                write!(f, "wire protocol violation: {what}")
            }
        }
    }
}

impl std::error::Error for HccError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HccError::Exec(e) => Some(e),
            HccError::Commit(e) => Some(e),
            HccError::Storage(e) => Some(e),
            HccError::Recovery(e) => Some(e),
            HccError::Replay(e) => Some(e),
            HccError::RetriesExhausted { last, .. } => Some(last),
            HccError::TypeMismatch { .. }
            | HccError::DuplicateObject { .. }
            | HccError::PoisonedRecovery { .. }
            | HccError::SnapshotCompacted { .. }
            | HccError::SnapshotContended { .. }
            | HccError::Rollback { .. }
            | HccError::Overloaded { .. }
            | HccError::Protocol(_) => None,
        }
    }
}

impl From<ExecError> for HccError {
    fn from(e: ExecError) -> HccError {
        HccError::Exec(e)
    }
}

impl From<CommitError> for HccError {
    fn from(e: CommitError) -> HccError {
        HccError::Commit(e)
    }
}

impl From<StorageError> for HccError {
    fn from(e: StorageError) -> HccError {
        HccError::Storage(e)
    }
}

impl From<RecoveryError> for HccError {
    fn from(e: RecoveryError) -> HccError {
        HccError::Recovery(e)
    }
}

impl From<ReplayError> for HccError {
    fn from(e: ReplayError) -> HccError {
        HccError::Replay(e)
    }
}

impl From<SnapshotError> for HccError {
    fn from(e: SnapshotError) -> HccError {
        HccError::Recovery(RecoveryError::Snapshot(e))
    }
}

impl From<std::io::Error> for HccError {
    fn from(e: std::io::Error) -> HccError {
        HccError::Storage(StorageError::Io(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_the_taxonomy() {
        assert!(HccError::from(ExecError::Doomed).is_transient());
        assert!(HccError::from(ExecError::Timeout).is_transient());
        assert!(!HccError::from(ExecError::NotActive).is_transient());
        assert!(HccError::from(CommitError::Doomed).is_transient());
        assert!(HccError::from(CommitError::PrepareFailed { object: "a".into() }).is_transient());
        assert!(!HccError::from(CommitError::NotActive).is_transient());
        assert!(!HccError::from(CommitError::Storage("disk on fire".into())).is_transient());
        assert!(!HccError::from(StorageError::Io(std::io::Error::other("x"))).is_transient());
        let exhausted = HccError::RetriesExhausted {
            attempts: 3,
            last: Box::new(HccError::from(CommitError::Doomed)),
        };
        assert!(!exhausted.is_transient(), "an exhausted budget is final");
        assert!(HccError::SnapshotContended { requested: 7 }.is_transient());
        assert!(
            !HccError::SnapshotCompacted { requested: 3, floor: 9 }.is_transient(),
            "a folded-away image never comes back"
        );
        assert!(
            HccError::Overloaded { in_flight: 9, cap: 8 }.is_transient(),
            "a shed request was never executed; backing off and retrying is safe"
        );
        assert!(
            !HccError::Protocol("torn frame".into()).is_transient(),
            "resubmitting over a violated protocol could double-apply"
        );
    }

    #[test]
    fn display_is_honest_prose_not_debug() {
        let e = HccError::from(CommitError::Doomed);
        let msg = format!("{e}");
        assert!(!msg.contains("Doomed"), "no bare Debug variant name: {msg}");
        assert!(msg.contains("deadlock"), "says why: {msg}");
        let e = HccError::from(ExecError::Timeout);
        assert!(format!("{e}").contains("timeout"), "{e}");
        let e = HccError::SnapshotCompacted { requested: 3, floor: 9 };
        let msg = format!("{e}");
        assert!(!msg.contains("SnapshotCompacted"), "no bare Debug variant name: {msg}");
        assert!(msg.contains("compaction"), "says why: {msg}");
        let e = HccError::SnapshotContended { requested: 3 };
        assert!(format!("{e}").contains("retry"), "{e}");
        let e = HccError::Overloaded { in_flight: 9, cap: 8 };
        let msg = format!("{e}");
        assert!(!msg.contains("Overloaded"), "no bare Debug variant name: {msg}");
        assert!(msg.contains("shed") && msg.contains('9') && msg.contains('8'), "{msg}");
        let e = HccError::Protocol("frame CRC mismatch".into());
        assert!(format!("{e}").contains("protocol violation"), "{e}");
    }

    #[test]
    fn source_chains_to_the_lower_layer() {
        use std::error::Error as _;
        let e = HccError::from(StorageError::Io(std::io::Error::other("boom")));
        assert!(e.source().is_some());
        let e = HccError::RetriesExhausted {
            attempts: 2,
            last: Box::new(HccError::from(CommitError::Doomed)),
        };
        assert!(e.source().unwrap().to_string().contains("deadlock"));
    }
}
