//! The scoped transaction handle [`Tx`] and the bounded-backoff
//! [`RetryPolicy`] governing [`crate::Db::transact`].

use hcc_core::runtime::TxnHandle;
use hcc_spec::TxnId;
use std::ops::Deref;
use std::sync::Arc;
use std::time::Duration;

/// The handle a [`crate::Db::transact`] closure runs under.
///
/// `Tx` dereferences to the runtime's `Arc<TxnHandle>`, so every ADT
/// method takes it directly: `acct.credit(&tx, amount)?`. The closure
/// never begins, commits, or aborts — the scope does: `Ok` commits,
/// `Err` aborts, and a transient failure aborts *and retries* with a
/// fresh `Tx`.
pub struct Tx {
    handle: Arc<TxnHandle>,
}

impl Tx {
    pub(crate) fn new(handle: Arc<TxnHandle>) -> Tx {
        Tx { handle }
    }

    /// The underlying runtime handle (for low-level calls that want the
    /// `Arc` itself).
    pub fn handle(&self) -> &Arc<TxnHandle> {
        &self.handle
    }

    /// This attempt's transaction id. Retried attempts run under fresh
    /// ids — each attempt is a new transaction.
    pub fn id(&self) -> TxnId {
        self.handle.id()
    }
}

impl Deref for Tx {
    type Target = Arc<TxnHandle>;

    fn deref(&self) -> &Arc<TxnHandle> {
        &self.handle
    }
}

/// How [`crate::Db::transact`] retries transient failures: bounded
/// attempts with capped exponential backoff. Fatal errors are never
/// retried regardless of policy.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 = try once).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 16,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// Never retry: every failure, transient or not, surfaces at once.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_retries: 0, ..RetryPolicy::default() }
    }

    /// The backoff before retry number `attempt` (0-based): exponential,
    /// capped at [`RetryPolicy::max_backoff`].
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX);
        self.base_backoff.checked_mul(factor).map_or(self.max_backoff, |d| d.min(self.max_backoff))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(1),
        };
        assert_eq!(p.backoff(0), Duration::from_micros(100));
        assert_eq!(p.backoff(1), Duration::from_micros(200));
        assert_eq!(p.backoff(2), Duration::from_micros(400));
        assert_eq!(p.backoff(10), Duration::from_millis(1), "capped");
        assert_eq!(p.backoff(u32::MAX), Duration::from_millis(1), "no overflow");
    }
}
