//! # hcc-db — the `Db` session facade
//!
//! One front door to the hybrid concurrency control stack. Underneath,
//! a transactional system is four cooperating pieces — `TxnManager`
//! (timestamps, two-phase commitment, deadlock doom), `DurableStore`
//! (striped WAL + checkpoints), the recovery `Registry`, and per-object
//! `RuntimeOptions` — and wiring them by hand leaves holes: objects
//! nobody registered silently recover blank, and no correct retry loop
//! can be written against four unrelated error types. This crate closes
//! the API the way self-logging closed the write path:
//!
//! * [`Db::builder`] → [`DbBuilder::open`] constructs the store, scans
//!   the log and readies recovery in one call;
//! * [`Db::object`] hands out **typed handles** that construct,
//!   register, and absorb their durable history automatically —
//!   forget-to-register is unrepresentable, and reopening a name
//!   returns the recovered instance, never a blank twin;
//! * [`Db::transact`] scopes a transaction to a closure — commit on
//!   `Ok`, abort on `Err` — and retries **transient** failures
//!   (deadlock victims, refused prepare votes, lock timeouts) with
//!   bounded backoff, applying effects exactly once;
//! * [`HccError`] unifies every layer's failure with
//!   [`HccError::is_transient`] as the retry contract.
//!
//! The low-level path stays available through [`Db::manager`] as the
//! documented escape hatch (see `docs/API.md`).

mod db;
mod error;
mod handle;
pub mod read;
mod tx;

pub use db::{Db, DbBuilder};
pub use error::HccError;
pub use handle::DbObject;
pub use read::{ReadObject, ReadTx};
pub use tx::{RetryPolicy, Tx};

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_adts::account::AccountObject;
    use hcc_adts::counter::CounterObject;
    use hcc_adts::fifo_queue::QueueObject;
    use hcc_core::runtime::ExecError;
    use hcc_spec::Rational;
    use hcc_txn::manager::CommitError;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hcc-db-{}-{}-{}",
            std::process::id(),
            name,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn transact_commits_on_ok_and_aborts_on_err() {
        let db = Db::in_memory();
        let acct = db.object::<AccountObject>("a").unwrap();
        db.transact(|tx| acct.credit(tx, r(10)).map_err(Into::into)).unwrap();
        assert_eq!(acct.committed_balance(), r(10));

        let res: Result<(), HccError> = db.transact(|tx| {
            acct.credit(tx, r(999))?;
            Err(HccError::Commit(CommitError::NotActive)) // any fatal error
        });
        assert!(res.is_err());
        assert_eq!(acct.committed_balance(), r(10), "Err aborts: no trace of the credit");
        assert_eq!(db.committed_count(), 1);
        assert_eq!(db.aborted_count(), 1);
    }

    #[test]
    fn object_returns_the_same_instance_not_a_twin() {
        use std::sync::Arc;
        let db = Db::in_memory();
        let a = db.object::<AccountObject>("a").unwrap();
        db.transact(|tx| a.credit(tx, r(5)).map_err(Into::into)).unwrap();
        let again = db.object::<AccountObject>("a").unwrap();
        assert_eq!(again.committed_balance(), r(5), "same live object");
        assert!(Arc::ptr_eq(a.inner(), again.inner()));
    }

    #[test]
    fn object_type_mismatch_is_refused() {
        let db = Db::in_memory();
        db.object::<AccountObject>("x").unwrap();
        let err = db.object::<CounterObject>("x").err().expect("type mismatch refused");
        assert!(matches!(err, HccError::TypeMismatch { .. }), "{err}");
        assert!(!err.is_transient());
    }

    #[test]
    fn transient_closure_failures_are_retried_and_apply_once() {
        let db = Db::in_memory();
        let acct = db.object::<AccountObject>("a").unwrap();
        let mut attempts = 0u32;
        db.transact(|tx| {
            attempts += 1;
            acct.credit(tx, r(7))?;
            if attempts < 3 {
                // Simulate a doomed attempt; the scope aborts and retries.
                return Err(HccError::Exec(ExecError::Doomed));
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(attempts, 3);
        assert_eq!(acct.committed_balance(), r(7), "credited exactly once, not three times");
    }

    #[test]
    fn fatal_failures_are_not_retried() {
        let db = Db::in_memory();
        let mut attempts = 0u32;
        let res: Result<(), HccError> = db.transact(|_tx| {
            attempts += 1;
            Err(HccError::Storage(hcc_storage::StorageError::Io(std::io::Error::other("gone"))))
        });
        assert!(matches!(res, Err(HccError::Storage(_))));
        assert_eq!(attempts, 1, "a fatal error must surface immediately");
    }

    #[test]
    fn retries_exhaust_into_a_final_error() {
        let db = Db::builder()
            .retry(RetryPolicy { max_retries: 2, ..RetryPolicy::default() })
            .in_memory();
        let mut attempts = 0u32;
        let res: Result<(), HccError> = db.transact(|_tx| {
            attempts += 1;
            Err(HccError::Exec(ExecError::Timeout))
        });
        match res {
            Err(HccError::RetriesExhausted { attempts: reported, last }) => {
                assert_eq!(reported, 3, "initial try + 2 retries");
                assert!(matches!(*last, HccError::Exec(ExecError::Timeout)));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(attempts, 3);
    }

    #[test]
    fn durable_reopen_recovers_through_object_alone() {
        let dir = tmp("reopen");
        {
            let db = Db::open(&dir).unwrap();
            let acct = db.object::<AccountObject>("checking").unwrap();
            let q = db.object::<QueueObject<i64>>("audit").unwrap();
            db.transact(|tx| {
                acct.credit(tx, r(120))?;
                q.enq(tx, 42)?;
                Ok(())
            })
            .unwrap();
            db.transact(|tx| {
                assert!(acct.debit(tx, r(20))?);
                Ok(())
            })
            .unwrap();
        }
        let db = Db::open(&dir).unwrap();
        assert_eq!(db.recovery_report().replayed, 2);
        assert_eq!(db.unopened_objects(), vec!["audit".to_string(), "checking".to_string()]);
        let acct = db.object::<AccountObject>("checking").unwrap();
        assert_eq!(acct.committed_balance(), r(100), "recovered, not blank");
        let q = db.object::<QueueObject<i64>>("audit").unwrap();
        assert_eq!(q.committed_len(), 1);
        assert!(db.unopened_objects().is_empty());
        // All history absorbed: checkpointing is allowed again.
        db.checkpoint().unwrap().expect("durable db checkpoints");
    }

    #[test]
    fn checkpoint_refused_until_every_logged_name_is_opened() {
        let dir = tmp("absorb");
        {
            let db = Db::open(&dir).unwrap();
            let a = db.object::<AccountObject>("a").unwrap();
            let b = db.object::<AccountObject>("b").unwrap();
            db.transact(|tx| {
                a.credit(tx, r(1))?;
                b.credit(tx, r(2))?;
                Ok(())
            })
            .unwrap();
        }
        let db = Db::open(&dir).unwrap();
        db.object::<AccountObject>("a").unwrap();
        let err = db.checkpoint().unwrap_err();
        assert!(
            matches!(err, HccError::Storage(hcc_storage::StorageError::UnabsorbedHistory { .. })),
            "checkpoint over unopened history must be refused, got {err}"
        );
        db.object::<AccountObject>("b").unwrap();
        db.checkpoint().unwrap().expect("all names open: checkpoint allowed");
    }

    /// A panic unwinding out of a `transact` closure must abort the
    /// attempt — a leaked active transaction would hold its locks at
    /// every touched object forever.
    #[test]
    fn panicking_closure_aborts_and_releases_its_locks() {
        let db = Db::in_memory();
        let acct = db.object::<AccountObject>("a").unwrap();
        db.transact(|tx| acct.credit(tx, r(10)).map_err(Into::into)).unwrap();

        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = db.transact(|tx| {
                // A successful debit takes a DEBIT_LOCK (Table V:
                // Debit-Ok ∥ Debit-Ok conflict) — exactly the lock that
                // would wedge the account if leaked.
                assert!(acct.debit(tx, r(1))?);
                if acct.committed_balance() >= r(0) {
                    panic!("closure invariant fired");
                }
                Ok(())
            });
        }));
        assert!(unwound.is_err(), "the panic propagates");
        assert_eq!(acct.committed_balance(), r(10), "the panicked attempt left no effects");

        // The debit lock was released: a conflicting debit runs at once
        // instead of blocking until timeout (2s default) or forever.
        let before = std::time::Instant::now();
        db.transact(|tx| {
            assert!(acct.debit(tx, r(1))?);
            Ok(())
        })
        .unwrap();
        assert!(before.elapsed() < std::time::Duration::from_millis(500), "no leaked lock wait");
        assert_eq!(acct.committed_balance(), r(9));
    }

    /// A failed materialization (here: the name opened as the wrong
    /// type, so its payloads don't decode) must consume nothing — the
    /// name stays pending, checkpoints stay refused, and the next
    /// correctly-typed open recovers the full state instead of minting
    /// a blank twin.
    #[test]
    fn failed_materialization_leaves_no_blank_twin() {
        let dir = tmp("twin");
        {
            let db = Db::open(&dir).unwrap();
            let acct = db.object::<AccountObject>("acct").unwrap();
            db.transact(|tx| acct.credit(tx, r(55)).map_err(Into::into)).unwrap();
        }
        let db = Db::open(&dir).unwrap();
        assert!(db.object::<CounterObject>("acct").is_err(), "account payloads don't decode");
        assert_eq!(db.unopened_objects(), vec!["acct".to_string()], "name still pending");
        assert!(db.checkpoint().is_err(), "history still unabsorbed");
        let acct = db.object::<AccountObject>("acct").unwrap();
        assert_eq!(acct.committed_balance(), r(55), "recovered in full, not a blank twin");
        db.checkpoint().unwrap().expect("absorbed after the successful open");
    }

    #[test]
    fn checkpointed_state_reopens_from_snapshot_plus_tail() {
        let dir = tmp("ckpt");
        {
            let db = Db::open(&dir).unwrap();
            let acct = db.object::<AccountObject>("acct").unwrap();
            db.transact(|tx| acct.credit(tx, r(50)).map_err(Into::into)).unwrap();
            db.checkpoint().unwrap().expect("checkpoint taken");
            db.transact(|tx| acct.credit(tx, r(8)).map_err(Into::into)).unwrap();
        }
        let db = Db::open(&dir).unwrap();
        let report = db.recovery_report();
        assert!(report.checkpoint_ts > 0, "recovered from a checkpoint");
        assert_eq!(report.replayed, 1, "one commit above the watermark");
        let acct = db.object::<AccountObject>("acct").unwrap();
        assert_eq!(acct.committed_balance(), r(58));
    }

    #[test]
    fn attach_adopts_custom_objects_and_rejects_duplicates() {
        use hcc_adts::account::AccountHybrid;
        use std::sync::Arc;
        let db = Db::in_memory();
        let custom =
            Arc::new(AccountObject::with("vault", Arc::new(AccountHybrid), db.object_options()));
        let vault = db.attach(custom).unwrap();
        db.transact(|tx| vault.credit(tx, r(9)).map_err(Into::into)).unwrap();
        assert_eq!(vault.committed_balance(), r(9));
        let twin = Arc::new(AccountObject::hybrid("vault"));
        assert!(matches!(db.attach(twin), Err(HccError::DuplicateObject { .. })));
        // The attached object is visible to `object` under its type.
        let again = db.object::<AccountObject>("vault").unwrap();
        assert_eq!(again.committed_balance(), r(9));
    }

    /// A failed materialization into an *attached* instance poisons the
    /// name for further attaches: the caller still holds the partially
    /// recovered object, so re-applying the pending state could double
    /// its effects. `Db::object` (always a fresh instance) stays safe.
    #[test]
    fn failed_attach_poisons_the_name_against_double_apply() {
        use std::sync::Arc;
        let dir = tmp("poison");
        {
            let db = Db::open(&dir).unwrap();
            let vault = db.object::<AccountObject>("vault").unwrap();
            db.transact(|tx| vault.credit(tx, r(100)).map_err(Into::into)).unwrap();
        }
        let db = Db::open(&dir).unwrap();
        // Attaching the wrong type fails mid-materialization and leaves
        // the caller's instance in an unknown state...
        let wrong = Arc::new(CounterObject::hybrid("vault"));
        assert!(db.attach(wrong).is_err());
        // ...so another attach is refused rather than risking a double
        // application of the pending state.
        let retry = Arc::new(AccountObject::hybrid("vault"));
        let err = db.attach(retry).err().expect("poisoned name refused");
        assert!(matches!(err, HccError::PoisonedRecovery { .. }), "{err}");
        // A fresh instance through `object` still recovers correctly.
        let vault = db.object::<AccountObject>("vault").unwrap();
        assert_eq!(vault.committed_balance(), r(100));
    }

    #[test]
    fn transact_ts_reports_the_commit_timestamp() {
        let db = Db::in_memory();
        let c = db.object::<CounterObject>("c").unwrap();
        let (_, ts1) = db.transact_ts(|tx| c.inc(tx, 1).map_err(Into::into)).unwrap();
        let (_, ts2) = db.transact_ts(|tx| c.inc(tx, 1).map_err(Into::into)).unwrap();
        assert!(ts2 > ts1, "timestamps advance");
        assert_eq!(c.committed_value(), 2);
    }
}
