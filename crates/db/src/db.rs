//! The [`Db`] session facade: one front door to the transaction manager,
//! the durable store, and the recovery registry.
//!
//! `Db::open` constructs the store, scans the log, and readies recovery
//! in one call; [`Db::object`] hands out typed handles that register
//! themselves and absorb their durable history; [`Db::transact`] scopes
//! transactions to a closure and retries transient failures under a
//! bounded-backoff [`RetryPolicy`]. The low-level `TxnManager` stays
//! reachable through [`Db::manager`] as the documented escape hatch.

use crate::error::HccError;
use crate::handle::DbObject;
use crate::read::ReadInstruments;
use crate::tx::{RetryPolicy, Tx};
use hcc_core::runtime::{Durability, RuntimeOptions};
use hcc_obs::{Counter, Histogram};
use hcc_spec::Timestamp;
use hcc_storage::{Checkpoint, CompactionPolicy, DurableObject, DurableStore, StorageOptions};
use hcc_txn::registry::{self, Decisions, RecoveryReport, Registry};
use hcc_txn::TxnManager;
use parking_lot::{Mutex, RwLock};
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Configures and opens a [`Db`]. Obtained from [`Db::builder`].
#[derive(Clone, Debug, Default)]
pub struct DbBuilder {
    storage: StorageOptions,
    lock_timeout: Option<Option<Duration>>,
    retry: RetryPolicy,
    decisions: Decisions,
}

impl DbBuilder {
    /// Durability of acknowledged commits (default [`Durability::Fsync`]).
    pub fn durability(mut self, durability: Durability) -> Self {
        self.storage.durability = durability;
        self
    }

    /// WAL append stripes (default 1 — the single-stream log).
    pub fn stripes(mut self, stripes: usize) -> Self {
        self.storage.stripes = stripes;
        self
    }

    /// Segment rotation threshold in bytes.
    pub fn segment_max_bytes(mut self, bytes: u64) -> Self {
        self.storage.segment_max_bytes = bytes;
        self
    }

    /// Leader-based group commit (default on).
    pub fn group_commit(mut self, on: bool) -> Self {
        self.storage.group_commit = on;
        self
    }

    /// When to checkpoint and prune dead segments.
    pub fn compaction(mut self, policy: CompactionPolicy) -> Self {
        self.storage.policy = policy;
        self
    }

    /// Replace the whole storage configuration at once.
    pub fn storage_options(mut self, storage: StorageOptions) -> Self {
        self.storage = storage;
        self
    }

    /// Give up on a blocked lock request after `timeout` (the default
    /// keeps the runtime's own policy; the deadlock detector dooms
    /// victims regardless).
    pub fn lock_timeout(mut self, timeout: Duration) -> Self {
        self.lock_timeout = Some(Some(timeout));
        self
    }

    /// Wait forever on blocked lock requests (deadlock victims still get
    /// doomed and retried by `transact`).
    pub fn no_lock_timeout(mut self) -> Self {
        self.lock_timeout = Some(None);
        self
    }

    /// The transient-failure retry policy for [`Db::transact`].
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Coordinator commit decisions (`txn → ts`) for recovering a 2PC
    /// *participant* site: in-doubt transactions with a decision replay
    /// as committed; undecided ones stay dropped (no decision means
    /// abort).
    pub fn decisions(mut self, decisions: Decisions) -> Self {
        self.decisions = decisions;
        self
    }

    /// Apply the CI environment overrides (`HCC_DURABILITY`,
    /// `HCC_WAL_STRIPES`) on top of the configured options.
    pub fn env_overrides(mut self) -> Self {
        self.storage = self.storage.env_overrides();
        self
    }

    /// Open (creating if absent) the durable database rooted at `dir`:
    /// store constructed, log scanned, recovery readied — handles from
    /// [`Db::object`] come back holding their recovered state.
    pub fn open(self, dir: impl AsRef<Path>) -> Result<Db, HccError> {
        let mgr = TxnManager::with_storage(dir, self.storage)?;
        let store = mgr.storage().expect("with_storage attaches a store").clone();
        // One pass over the log serves both the store's clock/id seeding
        // and this materialization: the open above already decoded every
        // surviving record and retained the image; claim it instead of
        // re-scanning the directory (static re-read only as fallback).
        let mut recovered = match store.take_recovered()? {
            Some(recovered) => recovered,
            None => store.reread_recovered()?,
        };

        // Merge decided in-doubt transactions (2PC participant recovery)
        // into the committed tail — the same `resolve_committed` rule the
        // registry path uses, including the DecisionBelowCheckpoint
        // refusal — and slice the image by object name once, so each
        // handle materializes from (and frees) exactly its own share.
        // The owned resolve *moves* every payload into its name's slice;
        // nothing is copied.
        let checkpoint_ts = recovered.checkpoint.as_ref().map_or(0, |c| c.last_ts);
        let resolved = registry::resolve_committed_owned(&mut recovered, &self.decisions)?;
        let replayed = resolved.len();
        let mut tail: HashMap<String, Vec<TailTxn>> = HashMap::new();
        for c in resolved {
            // `c.ops` is in execution (ticket) order and the resolved
            // list in timestamp order, so each per-name slice stays in
            // replay order.
            for (name, bytes) in c.ops {
                let slot = tail.entry(name).or_default();
                match slot.last_mut() {
                    Some((txn, _, ops)) if *txn == c.txn => ops.push(bytes),
                    _ => slot.push((c.txn, c.ts, vec![bytes])),
                }
            }
        }
        let report = RecoveryReport { checkpoint_ts, replayed, torn_tail: recovered.torn_tail };

        let mut snapshots: HashMap<String, Vec<u8>> = HashMap::new();
        if let Some(ckpt) = recovered.checkpoint {
            snapshots.extend(ckpt.objects);
        }
        let unmaterialized: HashSet<String> =
            snapshots.keys().chain(tail.keys()).cloned().collect();
        if unmaterialized.is_empty() {
            store.mark_state_absorbed();
        }

        let transact_attempts = mgr.metrics().histogram("db.transact.attempts");
        let transact_backoff_nanos = mgr.metrics().counter("db.transact.backoff_nanos");
        let read_instruments = ReadInstruments::resolve(mgr.metrics());
        Ok(Db {
            mgr,
            retry: self.retry,
            lock_timeout: self.lock_timeout,
            registry: RwLock::new(Registry::new()),
            handles: Mutex::new(HashMap::new()),
            pending: Mutex::new(PendingRecovery {
                checkpoint_ts,
                snapshots,
                tail,
                unmaterialized,
                poisoned: HashSet::new(),
            }),
            report,
            transact_attempts,
            transact_backoff_nanos,
            read_instruments,
        })
    }

    /// A purely in-memory database (no durable store, as in the paper's
    /// model): same typed handles and scoped transactions, nothing
    /// written to disk.
    pub fn in_memory(self) -> Db {
        let mgr = TxnManager::new();
        let transact_attempts = mgr.metrics().histogram("db.transact.attempts");
        let transact_backoff_nanos = mgr.metrics().counter("db.transact.backoff_nanos");
        let read_instruments = ReadInstruments::resolve(mgr.metrics());
        Db {
            mgr,
            retry: self.retry,
            lock_timeout: self.lock_timeout,
            registry: RwLock::new(Registry::new()),
            handles: Mutex::new(HashMap::new()),
            pending: Mutex::new(PendingRecovery {
                checkpoint_ts: 0,
                snapshots: HashMap::new(),
                tail: HashMap::new(),
                unmaterialized: HashSet::new(),
                poisoned: HashSet::new(),
            }),
            report: RecoveryReport::default(),
            transact_attempts,
            transact_backoff_nanos,
            read_instruments,
        }
    }
}

/// One object's slice of one recovered transaction: `(txn, ts, op
/// payloads in execution order)`.
type TailTxn = (u64, u64, Vec<Vec<u8>>);

/// Aborts one `transact` attempt's transaction when dropped — the
/// scope's abort path, covering both `Err` returns and panics
/// unwinding out of the closure (a leaked active transaction would
/// hold its locks at every touched object forever). A no-op once the
/// transaction committed or was already aborted.
struct AbortOnDrop<'a> {
    mgr: &'a Arc<TxnManager>,
    txn: Arc<hcc_core::runtime::TxnHandle>,
}

impl Drop for AbortOnDrop<'_> {
    fn drop(&mut self) {
        self.mgr.abort(self.txn.clone());
    }
}

/// Durable state recovered from the log but not yet installed into a
/// live object — already sliced per object name, consumed (and freed)
/// name by name as [`Db::object`] / [`Db::attach`] materialize handles.
struct PendingRecovery {
    /// The restored checkpoint's watermark (0 = none).
    checkpoint_ts: u64,
    /// Per-name checkpoint snapshot bytes.
    snapshots: HashMap<String, Vec<u8>>,
    /// Per-name slices of the committed tail in replay order:
    /// `name → [(txn, ts, op payloads)]`.
    tail: HashMap<String, Vec<TailTxn>>,
    /// Names the log knows that no live handle has absorbed yet. The
    /// store refuses checkpoints until this drains — a checkpoint taken
    /// earlier would claim coverage of history its snapshots lack, then
    /// prune it.
    unmaterialized: HashSet<String>,
    /// Names whose materialization failed *into an attached instance*:
    /// the caller still holds that partially-recovered object, so
    /// re-applying the pending state through another `attach` could
    /// double its effects. Further attaches are refused; `Db::object`
    /// (always a fresh instance) and a database reopen stay safe.
    poisoned: HashSet<String>,
}

/// The session facade: typed durable handles and scoped, retrying
/// transactions over one transaction manager.
///
/// ```
/// use hcc_db::Db;
/// use hcc_adts::account::AccountObject;
///
/// let db = Db::in_memory();
/// let acct = db.object::<AccountObject>("checking").unwrap();
/// db.transact(|tx| {
///     acct.credit(tx, 100.into())?;
///     Ok(())
/// })
/// .unwrap();
/// assert_eq!(acct.committed_balance(), 100.into());
/// ```
pub struct Db {
    mgr: Arc<TxnManager>,
    retry: RetryPolicy,
    lock_timeout: Option<Option<Duration>>,
    registry: RwLock<Registry>,
    handles: Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>>,
    pending: Mutex<PendingRecovery>,
    report: RecoveryReport,
    /// `db.transact.attempts` — attempts each `transact` call took (1 =
    /// first try committed). Resolved once at construction.
    transact_attempts: Arc<Histogram>,
    /// `db.transact.backoff_nanos` — total backoff slept between retries.
    transact_backoff_nanos: Arc<Counter>,
    /// `txn.read_only.*` — the read-path counters and latency histogram
    /// (resolved once; `begin_read` never touches the registry's name
    /// map).
    read_instruments: ReadInstruments,
}

impl Db {
    /// Configure a database.
    pub fn builder() -> DbBuilder {
        DbBuilder::default()
    }

    /// [`DbBuilder::open`] with default options: fsync durability, one
    /// stripe, default compaction, default retry policy.
    pub fn open(dir: impl AsRef<Path>) -> Result<Db, HccError> {
        Db::builder().open(dir)
    }

    /// [`DbBuilder::in_memory`] with default options.
    pub fn in_memory() -> Db {
        Db::builder().in_memory()
    }

    /// The typed handle named `name`.
    ///
    /// First call constructs the object (hybrid conflict relation, the
    /// database's runtime options), installs whatever state the log
    /// holds under that name (checkpoint snapshot + committed tail, in
    /// timestamp order), and registers it with the recovery registry and
    /// redo sink. Later calls return the *same* instance — never a blank
    /// twin — or [`HccError::TypeMismatch`] if asked for it as a
    /// different type.
    pub fn object<T: DbObject>(&self, name: &str) -> Result<Arc<T>, HccError> {
        let mut handles = self.handles.lock();
        if let Some(existing) = handles.get(name) {
            return existing.clone().downcast::<T>().map_err(|_| HccError::TypeMismatch {
                object: name.to_string(),
                requested: std::any::type_name::<T>(),
            });
        }
        let obj = T::fresh(name, self.object_options());
        debug_assert_eq!(obj.object_name(), name, "DbObject::fresh must honor the name");
        self.materialize(obj.as_ref())?;
        self.registry.write().register(obj.clone());
        handles.insert(name.to_string(), obj.clone());
        self.mark_absorbed_if_drained();
        Ok(obj)
    }

    /// Adopt a caller-built durable object (e.g. one constructed with a
    /// non-default conflict relation over [`Db::object_options`]):
    /// recovered state is installed and the object registered, exactly
    /// as [`Db::object`] does for canonical handles.
    ///
    /// If materialization fails, the caller's instance is left partially
    /// recovered (restore/replay mutate as they go); because a re-attach
    /// cannot prove it was handed a *fresh* instance, further `attach`
    /// calls for that name are refused ([`HccError::PoisonedRecovery`])
    /// — re-applying the pending state to a dirtied object would double
    /// its effects. Reopen the database (or use [`Db::object`], which
    /// always builds fresh) to retry the recovery.
    pub fn attach<T: DbObject>(&self, obj: Arc<T>) -> Result<Arc<T>, HccError> {
        let name = obj.object_name().to_string();
        let mut handles = self.handles.lock();
        if handles.contains_key(&name) {
            return Err(HccError::DuplicateObject { object: name });
        }
        if self.pending.lock().poisoned.contains(&name) {
            return Err(HccError::PoisonedRecovery { object: name });
        }
        if let Err(e) = self.materialize(obj.as_ref()) {
            self.pending.lock().poisoned.insert(name);
            return Err(e);
        }
        self.registry.write().register(obj.clone());
        handles.insert(name, obj.clone());
        self.mark_absorbed_if_drained();
        Ok(obj)
    }

    /// Install the log's state for one object: checkpoint snapshot
    /// first, then its slice of the committed tail in replay order, each
    /// replayed operation pinned to its logged response
    /// ([`registry::replay_object_ops`]). The name's share of the
    /// pending image is consumed — freed — only on success: a failed
    /// materialization (wrong type asked for the name, replay
    /// divergence) leaves it pending, so a later open retries the
    /// recovery instead of minting a blank twin. (The retry is sound
    /// because [`Db::object`] discards the partially-mutated instance
    /// and builds a fresh one; [`Db::attach`] cannot, and poisons the
    /// name instead.)
    fn materialize(&self, obj: &dyn DurableObject) -> Result<(), HccError> {
        let name = obj.object_name();
        let mut pending = self.pending.lock();
        if !pending.unmaterialized.contains(name) {
            return Ok(()); // nothing durable under this name
        }
        if let Some(data) = pending.snapshots.get(name) {
            obj.restore(data, pending.checkpoint_ts)?;
        }
        for (txn, ts, ops) in pending.tail.get(name).into_iter().flatten() {
            registry::replay_object_ops(obj, *txn, *ts, ops)?;
        }
        pending.snapshots.remove(name);
        pending.tail.remove(name);
        pending.unmaterialized.remove(name);
        Ok(())
    }

    /// Once every logged name has a **registered** live handle, attest
    /// absorption to the store (checkpointing becomes legal again).
    /// Called only after `registry.register` — marking earlier would let
    /// a concurrent checkpoint pass the `UnabsorbedHistory` guard while
    /// the registry still misses the just-recovered object, and then
    /// prune the only copy of its history.
    fn mark_absorbed_if_drained(&self) {
        if self.pending.lock().unmaterialized.is_empty() {
            if let Some(store) = self.mgr.storage() {
                store.mark_state_absorbed();
            }
        }
    }

    /// Run `f` as one transaction: commit on `Ok`, abort on `Err`, and
    /// transparently abort-and-retry (fresh transaction, bounded
    /// backoff) when the failure is transient per
    /// [`HccError::is_transient`] — a deadlock doom, a lock timeout, a
    /// refused prepare vote. Fatal errors surface immediately; a
    /// transient failure that outlives the retry budget surfaces as
    /// [`HccError::RetriesExhausted`].
    ///
    /// Effects apply **exactly once**: they become visible only through
    /// the single successful commit; every failed attempt was aborted at
    /// all objects before the next began. The closure may run several
    /// times and must not carry side effects outside its transaction.
    pub fn transact<T>(
        &self,
        mut f: impl FnMut(&Tx) -> Result<T, HccError>,
    ) -> Result<T, HccError> {
        self.transact_ts(&mut f).map(|(v, _)| v)
    }

    /// [`Db::transact`], also returning the commit timestamp.
    pub fn transact_ts<T>(
        &self,
        mut f: impl FnMut(&Tx) -> Result<T, HccError>,
    ) -> Result<(T, Timestamp), HccError> {
        let mut attempt: u32 = 0;
        loop {
            let err = {
                let tx = Tx::new(self.mgr.begin());
                // The guard is the abort path for this attempt: it fires
                // when the scope ends — on an `Err` return, and on a
                // panic unwinding out of the closure, which must not
                // leak the attempt's held locks. Once the transaction
                // committed (or `commit` aborted it), the abort is a
                // no-op.
                let _guard = AbortOnDrop { mgr: &self.mgr, txn: tx.handle().clone() };
                match f(&tx) {
                    Ok(v) => match self.mgr.commit(tx.handle().clone()) {
                        Ok(ts) => {
                            self.transact_attempts.observe(u64::from(attempt) + 1);
                            return Ok((v, ts));
                        }
                        Err(e) => HccError::from(e), // already aborted everywhere
                    },
                    Err(e) => e, // the guard aborts on scope exit
                }
            };
            if !err.is_transient() {
                self.transact_attempts.observe(u64::from(attempt) + 1);
                return Err(err);
            }
            if attempt >= self.retry.max_retries {
                self.transact_attempts.observe(u64::from(attempt) + 1);
                return Err(HccError::RetriesExhausted {
                    attempts: attempt + 1,
                    last: Box::new(err),
                });
            }
            let backoff = self.retry.backoff(attempt);
            self.transact_backoff_nanos.add(backoff.as_nanos() as u64);
            std::thread::sleep(backoff);
            attempt += 1;
        }
    }

    /// Take a fuzzy checkpoint of every object this `Db` has handed out.
    /// `Ok(None)` for an in-memory database. Refused with
    /// `StorageError::UnabsorbedHistory` while logged names remain
    /// unopened — a checkpoint then would claim coverage of state no
    /// live object holds.
    pub fn checkpoint(&self) -> Result<Option<Checkpoint>, HccError> {
        self.mgr.checkpoint_registry(&self.registry.read()).map_err(Into::into)
    }

    /// [`Db::checkpoint`] iff the store's compaction policy asks for it.
    pub fn maybe_checkpoint(&self) -> Result<Option<Checkpoint>, HccError> {
        self.mgr.maybe_checkpoint_registry(&self.registry.read()).map_err(Into::into)
    }

    /// What opening this database recovered: checkpoint watermark,
    /// committed tail size, torn-tail flag.
    pub fn recovery_report(&self) -> RecoveryReport {
        self.report
    }

    /// Durable names recovered from the log that no [`Db::object`] /
    /// [`Db::attach`] call has opened yet. Until this is empty,
    /// checkpoints are refused.
    pub fn unopened_objects(&self) -> Vec<String> {
        let mut names: Vec<String> = self.pending.lock().unmaterialized.iter().cloned().collect();
        names.sort();
        names
    }

    /// The runtime options this database builds objects with: deadlock
    /// observer, the store's durability, the redo sink, and the
    /// configured lock timeout. For constructing custom objects to
    /// [`Db::attach`].
    pub fn object_options(&self) -> RuntimeOptions {
        let mut opts = self.mgr.object_options();
        if let Some(timeout) = self.lock_timeout {
            opts.block.timeout = timeout;
        }
        opts
    }

    /// **Escape hatch**: the underlying transaction manager, for callers
    /// that need manual `begin`/`commit` (interleaving several open
    /// transactions in one thread, scheme-comparison harnesses, the 2PC
    /// simulation). See `docs/API.md` — everything routed through it
    /// still self-logs and recovers through this `Db`.
    pub fn manager(&self) -> &Arc<TxnManager> {
        &self.mgr
    }

    /// The durable store, when this database has one.
    pub fn storage(&self) -> Option<&Arc<DurableStore>> {
        self.mgr.storage()
    }

    /// The current stable watermark: the highest timestamp `W` such that
    /// every commit with `ts ≤ W` is fully applied at every object it
    /// touched. [`Db::read`] and [`Db::begin_read`] serve snapshots at
    /// this mark; on a replication follower it is the replicated
    /// watermark the primary proved safe. Served over the wire by the
    /// `Stats` request, so clients can watch a replica's lag.
    pub fn stable_watermark(&self) -> u64 {
        self.mgr.stable_watermark()
    }

    /// Transactions committed through this database.
    pub fn committed_count(&self) -> u64 {
        self.mgr.committed_count()
    }

    /// Transactions aborted through this database (including retried
    /// `transact` attempts).
    pub fn aborted_count(&self) -> u64 {
        self.mgr.aborted_count()
    }

    /// A point-in-time snapshot of every metric this database's layers
    /// recorded: lock grants/refusals/waits per ADT type and conflict
    /// class (the paper's conflict tables, live), transaction counts and
    /// latency histograms, `transact` retry attempts, WAL appends /
    /// group-commit batches / fsync latency, checkpoint and recovery
    /// totals. Diff two snapshots with [`hcc_obs::Snapshot::delta`].
    pub fn stats(&self) -> hcc_obs::Snapshot {
        self.mgr.metrics().snapshot()
    }

    /// The live metric registry, shared by the store, the WAL, the
    /// manager, and every object this database built.
    pub fn metrics(&self) -> &Arc<hcc_obs::Registry> {
        self.mgr.metrics()
    }

    /// The read-path instruments (`crate::read` is a sibling module).
    pub(crate) fn read_instruments(&self) -> &ReadInstruments {
        &self.read_instruments
    }

    /// The transient-failure retry policy (shared by `transact` and
    /// `transact_read`).
    pub(crate) fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }
}

impl Drop for Db {
    /// Honor `HCC_METRICS=dump|json`: print a final metrics snapshot to
    /// stderr when the session ends — the zero-code observability hook
    /// (`dump` renders the aligned table; `json` one machine-readable
    /// line for CI schema checks).
    fn drop(&mut self) {
        if let Some(mode) = hcc_obs::dump_mode_from_env() {
            let snap = self.mgr.metrics().snapshot();
            match mode {
                hcc_obs::DumpMode::Table => eprintln!("{}", snap.render_table()),
                hcc_obs::DumpMode::Json => eprintln!("{}", snap.render_json()),
            }
        }
    }
}
