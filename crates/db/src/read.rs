//! Wait-free snapshot reads: read-only transactions with **zero lock
//! acquisitions**.
//!
//! A [`ReadTx`] never touches the lock manager. [`crate::Db::begin_read`]
//! picks the manager's *stable watermark* `W` — the highest commit
//! timestamp below which every commit is fully applied at every object —
//! and pins the fold horizon there ([`hcc_core::runtime::HorizonPins`]),
//! all under one short mutex, with no I/O and no transactional lock.
//! Every view the transaction then takes is
//! `committed_snapshot_at(W)`: the object's base version plus its
//! committed-but-unfolded intents up to `W`, cloned under the object's
//! internal latch. Writers are never blocked, never conflicted with, and
//! never observe the reader; the pin's only effect is to delay folding
//! of commits *above* `W` until the reader drops.
//!
//! Consistency: because every commit `≤ W` is applied everywhere and
//! every commit `> W` is excluded everywhere, the views across any set
//! of objects form a **consistent prefix** of the commit order — the
//! hybrid-atomicity oracle in `hcc-verify` accepts any read-only
//! transaction serialized at `W` (see `crates/db/tests/read_path.rs`).
//!
//! The pin is RAII: dropping the [`ReadTx`] (including a panic unwind)
//! unpins the horizon, so an abandoned reader can never wedge compaction
//! or checkpointing. Long-running readers only delay folding; fuzzy
//! checkpoints proceed at their own watermark regardless.

use crate::db::Db;
use crate::error::HccError;
use crate::handle::DbObject;
use hcc_adts::account::AccountObject;
use hcc_adts::counter::CounterObject;
use hcc_adts::define::SpecObject;
use hcc_adts::directory::{DirectoryObject, Key, Val};
use hcc_adts::fifo_queue::{Item, QueueObject};
use hcc_adts::file::{Content, FileObject};
use hcc_adts::semiqueue::{self, Multiset, SemiqueueObject};
use hcc_adts::set::{Elem, SetObject};
use hcc_core::runtime::{AdtDef, PinGuard, SnapshotStale};
use hcc_obs::{Counter, Histogram};
use hcc_spec::Rational;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// A type readable through a [`ReadTx`]: it can produce a typed view of
/// its committed state as of a watermark, without any lock acquisition.
///
/// Implemented by every ADT wrapper in `hcc-adts` (and by every
/// declaratively defined [`SpecObject`]), so
/// `rtx.view::<AccountObject>("checking")` is as type-safe as the write
/// path — asking for a name under the wrong type is refused with
/// [`HccError::TypeMismatch`], never answered with another type's bytes.
pub trait ReadObject: DbObject {
    /// The typed snapshot this object yields (balance, deque, map, …).
    type View;

    /// The view as of commit timestamp `watermark`. Errs when compaction
    /// has already folded a later commit into the base version.
    fn view_at(&self, watermark: u64) -> Result<Self::View, SnapshotStale>;
}

impl ReadObject for AccountObject {
    type View = Rational;
    fn view_at(&self, watermark: u64) -> Result<Rational, SnapshotStale> {
        self.balance_at(watermark)
    }
}

impl ReadObject for CounterObject {
    type View = i64;
    fn view_at(&self, watermark: u64) -> Result<i64, SnapshotStale> {
        self.value_at(watermark)
    }
}

impl<T: Item + 'static> ReadObject for QueueObject<T> {
    type View = VecDeque<T>;
    fn view_at(&self, watermark: u64) -> Result<VecDeque<T>, SnapshotStale> {
        self.items_at(watermark)
    }
}

impl<T: semiqueue::Item + 'static> ReadObject for SemiqueueObject<T> {
    type View = Multiset<T>;
    fn view_at(&self, watermark: u64) -> Result<Multiset<T>, SnapshotStale> {
        self.items_at(watermark)
    }
}

impl<T: Content + 'static> ReadObject for FileObject<T> {
    type View = T;
    fn view_at(&self, watermark: u64) -> Result<T, SnapshotStale> {
        self.value_at(watermark)
    }
}

impl<T: Elem + 'static> ReadObject for SetObject<T> {
    type View = BTreeSet<T>;
    fn view_at(&self, watermark: u64) -> Result<BTreeSet<T>, SnapshotStale> {
        self.members_at(watermark)
    }
}

impl<K: Key + 'static, V: Val + 'static> ReadObject for DirectoryObject<K, V> {
    type View = BTreeMap<K, V>;
    fn view_at(&self, watermark: u64) -> Result<BTreeMap<K, V>, SnapshotStale> {
        self.entries_at(watermark)
    }
}

impl<D: AdtDef> ReadObject for SpecObject<D> {
    type View = D::State;
    fn view_at(&self, watermark: u64) -> Result<D::State, SnapshotStale> {
        self.state_at(watermark)
    }
}

/// How this read transaction's watermark was chosen — governs what a
/// stale view means.
#[derive(Clone, Copy)]
enum Anchor {
    /// The manager's stable watermark at begin: a stale view can only be
    /// a fold that raced the pin, and a fresh watermark fixes it
    /// (transient).
    Fresh,
    /// A caller-chosen timestamp: a stale view means compaction already
    /// folded past it — the image is gone for good (fatal).
    At,
}

/// The per-`Db` read-path instruments, resolved once at construction.
pub(crate) struct ReadInstruments {
    begun: Arc<Counter>,
    completed: Arc<Counter>,
    duration_nanos: Arc<Histogram>,
}

impl ReadInstruments {
    pub(crate) fn resolve(metrics: &hcc_obs::Registry) -> ReadInstruments {
        ReadInstruments {
            begun: metrics.counter("txn.read_only.begun"),
            completed: metrics.counter("txn.read_only.completed"),
            duration_nanos: metrics.histogram("txn.read_only.duration_nanos"),
        }
    }
}

/// One read-only transaction: a pinned watermark and typed, lock-free
/// views of any object at it.
///
/// ```
/// use hcc_db::Db;
/// use hcc_adts::account::AccountObject;
///
/// let db = Db::in_memory();
/// let acct = db.object::<AccountObject>("checking").unwrap();
/// db.transact(|tx| acct.credit(tx, 100.into()).map_err(Into::into)).unwrap();
/// let total = db
///     .transact_read(|rtx| rtx.view::<AccountObject>("checking"))
///     .unwrap();
/// assert_eq!(total, 100.into());
/// ```
///
/// Dropping the `ReadTx` — normally or during a panic unwind — releases
/// its horizon pin and records the read-path metrics; there is no
/// commit/abort step and nothing to leak.
pub struct ReadTx<'db> {
    db: &'db Db,
    pin: PinGuard,
    anchor: Anchor,
    started: Instant,
}

impl<'db> ReadTx<'db> {
    fn new(db: &'db Db, pin: PinGuard, anchor: Anchor) -> ReadTx<'db> {
        db.read_instruments().begun.inc();
        ReadTx { db, pin, anchor, started: Instant::now() }
    }

    /// The commit timestamp every view of this transaction reads at.
    pub fn watermark(&self) -> u64 {
        self.pin.watermark()
    }

    /// The typed view of the object named `name` at this transaction's
    /// watermark. Opens (and recovers) the handle if this `Db` hasn't
    /// yet; [`HccError::TypeMismatch`] if the name is already open as a
    /// different type.
    pub fn view<T: ReadObject>(&self, name: &str) -> Result<T::View, HccError> {
        self.view_of(&*self.db.object::<T>(name)?)
    }

    /// [`ReadTx::view`] over a handle the caller already holds (skips
    /// the name lookup).
    pub fn view_of<T: ReadObject>(&self, obj: &T) -> Result<T::View, HccError> {
        obj.view_at(self.pin.watermark()).map_err(|stale| match self.anchor {
            Anchor::Fresh => HccError::SnapshotContended { requested: self.pin.watermark() },
            Anchor::At => {
                HccError::SnapshotCompacted { requested: self.pin.watermark(), floor: stale.folded }
            }
        })
    }
}

impl std::fmt::Debug for ReadTx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadTx").field("watermark", &self.pin.watermark()).finish()
    }
}

impl Drop for ReadTx<'_> {
    fn drop(&mut self) {
        let instruments = self.db.read_instruments();
        instruments.completed.inc();
        instruments.duration_nanos.observe_duration(self.started.elapsed());
    }
}

impl Db {
    /// Begin a read-only transaction at the current stable watermark:
    /// zero lock acquisitions now and later, writers entirely
    /// unaffected. See the module docs ([`crate::read`]) for the
    /// consistency argument.
    pub fn begin_read(&self) -> ReadTx<'_> {
        ReadTx::new(self, self.manager().pin_read_watermark(), Anchor::Fresh)
    }

    /// Begin a read-only transaction at a caller-chosen commit timestamp
    /// (time-travel reads). Refused with [`HccError::SnapshotCompacted`]
    /// when `ts` lies below the restored checkpoint's watermark (that
    /// history was folded into the checkpoint image), and with the
    /// transient [`HccError::SnapshotContended`] when `ts` is above the
    /// stable watermark (commits at or below it are still in flight —
    /// retry once they land).
    pub fn read_at(&self, ts: u64) -> Result<ReadTx<'_>, HccError> {
        let floor = self.recovery_report().checkpoint_ts;
        if ts < floor {
            return Err(HccError::SnapshotCompacted { requested: ts, floor });
        }
        if ts > self.manager().stable_watermark() {
            return Err(HccError::SnapshotContended { requested: ts });
        }
        Ok(ReadTx::new(self, self.manager().pin_read_at(ts), Anchor::At))
    }

    /// Run `f` as one read-only transaction at the stable watermark,
    /// retrying transient refusals (a fold racing the pin) at a fresh
    /// watermark under the database's [`crate::RetryPolicy`] — the
    /// read-side mirror of [`Db::transact`], with no commit step and no
    /// effect on writers.
    pub fn transact_read<T>(
        &self,
        mut f: impl FnMut(&ReadTx) -> Result<T, HccError>,
    ) -> Result<T, HccError> {
        let retry = self.retry_policy();
        let mut attempt: u32 = 0;
        loop {
            let err = {
                let rtx = self.begin_read();
                match f(&rtx) {
                    Ok(v) => return Ok(v),
                    Err(e) => e,
                }
            };
            if !err.is_transient() {
                return Err(err);
            }
            if attempt >= retry.max_retries {
                return Err(HccError::RetriesExhausted {
                    attempts: attempt + 1,
                    last: Box::new(err),
                });
            }
            std::thread::sleep(retry.backoff(attempt));
            attempt += 1;
        }
    }
}
